"""DPS+ — DPS extended with model-free demand estimation (paper §7).

DPS's cap-readjusting module must *assume* every high-priority unit demands
maximum power, because demand is unobservable (§4.4).  DPS+ replaces that
assumption with the :class:`~repro.core.demand.DemandEstimator`: the same
Kalman-filtered power stream feeds a per-unit demand estimate, and the caps
come from equal-satisfaction water-filling over those estimates — the
oracle's allocation rule applied to *estimated* rather than true demand.
Everything stays model-free and power-only (design principles of §4.1).

A floor of half the constant cap on every estimate preserves the restore
module's motivation: an idle unit keeps headroom for incoming work instead
of being squeezed to its idle draw.

With ``guarantee_floor=True`` (the default), DPS+ additionally restores
DPS's constant-allocation lower bound for *demanding* units: any unit
whose estimated demand reaches the constant cap is raised to at least the
constant cap after water-filling, funded proportionally from the other
units' surplus — combining the §4.4 guarantee with demand-proportional
allocation.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DPSConfig
from repro.core.demand import DemandEstimator, DemandEstimatorConfig
from repro.core.kalman import KalmanBank
from repro.core.managers import PowerManager, register_manager

__all__ = ["DPSPlusManager"]


@register_manager
class DPSPlusManager(PowerManager):
    """Demand-estimating variant of DPS (registered as ``"dps+"``).

    Args:
        config: reuses :class:`DPSConfig` for the Kalman settings.
        estimator: demand-estimator tuning.
        headroom: multiplicative margin granted above the estimated demand
            when the budget allows (like the oracle's).
        guarantee_floor: raise demanding units (estimate >= constant cap)
            to at least the constant cap after water-filling, restoring
            DPS's §4.4 lower bound on top of demand estimation.
    """

    name = "dps+"

    def __init__(
        self,
        config: DPSConfig | None = None,
        estimator: DemandEstimatorConfig | None = None,
        headroom: float = 1.05,
        guarantee_floor: bool = True,
    ) -> None:
        super().__init__()
        if headroom < 1.0:
            raise ValueError(f"headroom must be >= 1, got {headroom}")
        self.config = config or DPSConfig()
        self.estimator_config = estimator or DemandEstimatorConfig()
        self.headroom = headroom
        self.guarantee_floor = guarantee_floor
        self._kalman: KalmanBank | None = None
        self._estimator: DemandEstimator | None = None

    def _on_bind(self) -> None:
        self._kalman = KalmanBank(self.n_units, self.config.kalman)
        self._estimator = DemandEstimator(
            self.n_units, self.max_cap_w, self.estimator_config
        )

    @property
    def demand_estimate(self) -> np.ndarray:
        """Current demand estimates (W) — for telemetry and tests."""
        self._check_bound()
        assert self._estimator is not None
        return self._estimator.estimate

    def _snapshot_state(self) -> dict:
        assert self._kalman is not None and self._estimator is not None
        return {
            "kalman": self._kalman.snapshot(),
            "estimator": self._estimator.snapshot(),
        }

    def _restore_state(self, state: dict) -> None:
        assert self._kalman is not None and self._estimator is not None
        self._kalman.restore(state["kalman"])
        self._estimator.restore(state["estimator"])

    def _decide(
        self, power_w: np.ndarray, demand_w: np.ndarray | None
    ) -> np.ndarray:
        del demand_w
        assert self._kalman is not None and self._estimator is not None

        filtered = (
            # step() validated the reading already; skip the bank's re-scan.
            self._kalman.update(power_w, validate=False)
            if self.config.use_kalman
            else np.asarray(power_w, dtype=np.float64)
        )
        estimate = self._estimator.update(filtered, self._caps)

        # Floor: every unit keeps headroom for incoming work (the restore
        # module's job in plain DPS).
        floored = np.maximum(estimate, 0.5 * self.initial_cap_w)
        wanted = np.minimum(floored * self.headroom, self.max_cap_w)

        total_wanted = float(wanted.sum())
        if total_wanted <= self.budget_w:
            # Demand fits: grant it and spread the slack proportionally.
            slack = self.budget_w - total_wanted
            caps = wanted + slack * wanted / max(total_wanted, 1e-9)
            return np.minimum(caps, self.max_cap_w)

        # Contention: equal-satisfaction scaling with a min-cap water-fill.
        caps = wanted * (self.budget_w / total_wanted)
        for _ in range(4):
            low = caps < self.min_cap_w
            if not np.any(low):
                break
            deficit = float((self.min_cap_w - caps[low]).sum())
            caps[low] = self.min_cap_w
            free = ~low
            reducible = caps[free] - self.min_cap_w
            total_reducible = float(reducible.sum())
            if total_reducible <= 0:
                break
            caps[free] -= reducible * min(1.0, deficit / total_reducible)

        if self.guarantee_floor:
            caps = self._apply_floor(caps, wanted)
        return caps

    def _apply_floor(self, caps: np.ndarray, wanted: np.ndarray) -> np.ndarray:
        """Raise demanding units to the constant cap, funded from surplus.

        A unit is *demanding* when its (headroom-adjusted) estimate reaches
        the constant cap; under equal-satisfaction scaling such units can
        land below it, violating the §4.4 guarantee.  The shortfall is
        taken proportionally from every unit's surplus above its own floor
        (the constant cap for demanding units, the minimum cap otherwise).
        """
        floor_cap = min(self.initial_cap_w, self.max_cap_w)
        demanding = wanted >= floor_cap
        deficit = np.where(demanding, np.maximum(floor_cap - caps, 0.0), 0.0)
        need = float(deficit.sum())
        if need <= 0:
            return caps
        caps = caps + deficit
        own_floor = np.where(demanding, floor_cap, self.min_cap_w)
        surplus = np.maximum(caps - own_floor, 0.0)
        total_surplus = float(surplus.sum())
        if total_surplus > 0:
            caps = caps - surplus * min(1.0, need / total_surplus)
        return caps

"""On-demand compiled kernel behind the vectorized decision core.

The batched prominent-peak counter is the one part of the DPS decision
whose work per unit is a data-dependent scalar walk — the shape NumPy is
worst at.  This module compiles ``_peaks_kernel.c`` (a literal C
transcription of the Python walk, bit-exact by construction) with the
system C compiler the first time the kernel is requested, caches the
shared object under a content hash, and exposes it through ctypes.

Everything degrades gracefully: no compiler, a failed build, or the
``REPRO_NO_NATIVE`` environment variable all make :func:`peak_features`
return ``None``, and callers fall back to the pure-NumPy batch path.

Environment:
    ``REPRO_NO_NATIVE``: set to any non-empty value to disable the kernel
        (forces the NumPy fallback; used to test both paths).
    ``REPRO_NATIVE_CACHE``: directory the compiled ``.so`` is cached in
        (default: ``<tempdir>/repro-native``).
    ``CC``: C compiler to use (default: first of ``cc``/``gcc``/``clang``
        on PATH).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Callable

import numpy as np

__all__ = ["MAX_HISTORY", "peak_features"]

#: Longest history the kernel's stack buffer accepts; longer histories
#: fall back to the NumPy path (must match REPRO_MAX_H in the C source).
MAX_HISTORY = 64

_SOURCE = Path(__file__).with_name("_peaks_kernel.c")
_C_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_C_LONG_P = ctypes.POINTER(ctypes.c_long)

_lock = threading.Lock()
_cache: dict = {"resolved": False, "fn": None}


def _find_compiler() -> str | None:
    cc = os.environ.get("CC")
    if cc:
        return shutil.which(cc)
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_library() -> Path | None:
    """Compile the kernel into the cache directory, or return None."""
    cc = _find_compiler()
    if cc is None:
        return None
    try:
        source = _SOURCE.read_bytes()
    except OSError:
        return None
    tag = hashlib.sha256(source).hexdigest()[:16]
    cache_root = Path(
        os.environ.get("REPRO_NATIVE_CACHE")
        or os.path.join(tempfile.gettempdir(), "repro-native")
    )
    lib_path = cache_root / f"peaks-{tag}.so"
    if lib_path.exists():
        return lib_path
    tmp_name = None
    try:
        cache_root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=cache_root, suffix=".so")
        os.close(fd)
        # -ffp-contract=off: no FMA contraction, so the kernel's arithmetic
        # is the same plain IEEE double sequence as the Python oracle.
        # -march=native is attempted first: the .so cache is per host, so
        # host-specific codegen is safe, and cmov emission for the walks
        # is worth ~4x here; some compilers reject the flag, hence the
        # plain retry.
        base = [cc, "-O3", "-fPIC", "-shared", "-ffp-contract=off"]
        tail = [str(_SOURCE), "-o", tmp_name, "-lm"]
        try:
            subprocess.run(
                base + ["-march=native"] + tail,
                check=True,
                capture_output=True,
                timeout=120,
            )
        except subprocess.SubprocessError:
            subprocess.run(
                base + tail,
                check=True,
                capture_output=True,
                timeout=120,
            )
        os.replace(tmp_name, lib_path)  # atomic publish for parallel runs
        tmp_name = None
        return lib_path
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass


def _load() -> Callable | None:
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    # The kernel writes peak counts through C long; bail out on platforms
    # where that is not np.intp (e.g. LLP64) rather than corrupt memory.
    if ctypes.sizeof(ctypes.c_long) != np.dtype(np.intp).itemsize:
        return None
    lib_path = _build_library()
    if lib_path is None:
        return None
    try:
        lib = ctypes.CDLL(str(lib_path))
        raw = lib.repro_peak_features
    except (OSError, AttributeError):
        return None
    raw.restype = None
    raw.argtypes = [
        _C_DOUBLE_P,
        ctypes.c_long,
        ctypes.c_long,
        ctypes.c_double,
        _C_LONG_P,
        _C_DOUBLE_P,
    ]

    def call(
        history: np.ndarray,
        min_prominence: float,
        pp_out: np.ndarray | None,
        std_out: np.ndarray | None,
    ) -> None:
        """Fill ``pp_out`` (np.intp) / ``std_out`` (float64) per column.

        Either output may be None to skip that feature.  ``history`` must
        be a C-contiguous float64 (h, n) array with h <= MAX_HISTORY.
        """
        h, n = history.shape
        if h > MAX_HISTORY:
            raise ValueError(f"history_len {h} exceeds kernel max {MAX_HISTORY}")
        if not (history.flags.c_contiguous and history.dtype == np.float64):
            history = np.ascontiguousarray(history, dtype=np.float64)
        pp_ptr = None
        if pp_out is not None:
            assert pp_out.dtype == np.intp and pp_out.flags.c_contiguous
            pp_ptr = pp_out.ctypes.data_as(_C_LONG_P)
        std_ptr = None
        if std_out is not None:
            assert (
                std_out.dtype == np.float64 and std_out.flags.c_contiguous
            )
            std_ptr = std_out.ctypes.data_as(_C_DOUBLE_P)
        raw(
            history.ctypes.data_as(_C_DOUBLE_P),
            h,
            n,
            float(min_prominence),
            pp_ptr,
            std_ptr,
        )

    return call


def peak_features() -> Callable | None:
    """The compiled feature kernel, or None when unavailable.

    Thread-safe and memoized: the build runs at most once per process.
    """
    with _lock:
        if not _cache["resolved"]:
            _cache["fn"] = _load()
            _cache["resolved"] = True
        return _cache["fn"]

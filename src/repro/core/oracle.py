"""Oracle power manager (paper §5.2, Figure 1 row 3).

The oracle stands in for a *perfect model-based* system: at every step it is
told each unit's true uncapped power demand (which no real manager can
measure — the whole point of DPS) and allocates the budget to maximize
performance under the paper's demand-proportional fairness definition:

* if total demand fits in the budget, every unit's cap covers its demand,
  with a small multiplicative headroom so RAPL never throttles at the
  boundary, and the remaining slack is spread demand-proportionally;
* otherwise caps are set for *equal satisfaction* — each unit receives the
  same fraction of its demand (Eq. 1/2 fairness = 1) — via a water-filling
  pass that recycles budget clipped at the per-unit bounds.

The paper only evaluates the oracle in the low-utility group (implementing
one under contention with variable Spark workloads "is extremely difficult"
on real hardware); here it works for any scenario, which the ablation
benches exploit.
"""

from __future__ import annotations

import numpy as np

from repro.core.managers import PowerManager, register_manager

__all__ = ["OracleManager"]


@register_manager
class OracleManager(PowerManager):
    """Demand-clairvoyant allocator with equal-satisfaction water-filling.

    Args:
        headroom: multiplicative margin above demand granted when the budget
            allows (keeps RAPL from shaving the top off every phase).
    """

    name = "oracle"
    requires_demand = True

    def __init__(self, headroom: float = 1.05) -> None:
        super().__init__()
        if headroom < 1.0:
            raise ValueError(f"headroom must be >= 1, got {headroom}")
        self.headroom = headroom

    def _decide(
        self, power_w: np.ndarray, demand_w: np.ndarray | None
    ) -> np.ndarray:
        del power_w
        assert demand_w is not None  # Guaranteed by requires_demand.
        demand = np.clip(demand_w, self.min_cap_w, self.max_cap_w)

        wanted = np.minimum(demand * self.headroom, self.max_cap_w)
        total_wanted = float(wanted.sum())
        if total_wanted <= self.budget_w:
            # Demand fits: grant it, then spread the slack proportionally.
            slack = self.budget_w - total_wanted
            caps = wanted + slack * demand / max(float(demand.sum()), 1e-9)
            return np.minimum(caps, self.max_cap_w)

        # Contention: equal-satisfaction scaling with water-filling around
        # the per-unit minimum cap (units pushed below min_cap_w keep it;
        # the excess is recovered from the rest).
        caps = demand * (self.budget_w / max(float(demand.sum()), 1e-9))
        for _ in range(4):  # Converges in <= #distinct-clip-levels passes.
            clipped_low = caps < self.min_cap_w
            if not np.any(clipped_low):
                break
            deficit = float((self.min_cap_w - caps[clipped_low]).sum())
            caps[clipped_low] = self.min_cap_w
            free = ~clipped_low
            reducible = caps[free] - self.min_cap_w
            total_reducible = float(reducible.sum())
            if total_reducible <= 0:
                break
            caps[free] -= reducible * min(1.0, deficit / total_reducible)
        return caps

"""Prominent-peak detection for power histories (paper Algorithm 2, [32]).

The priority module counts *prominent peaks* in each unit's recent power
history to detect high-frequency power phases.  The paper cites Palshikar's
simple time-series peak detectors; we implement the topographic-prominence
variant from scratch (no SciPy dependency in the hot path): a local maximum's
prominence is its height above the higher of the two valley floors separating
it from the nearest higher samples on each side.

This runs once per unit per control step.  Histories are short (20 steps by
default), and at that size NumPy's per-call overhead dwarfs the work, so the
hot counting path converts each history to native floats once and walks it
in plain Python — measured ~12x faster than slice-based NumPy on 20-sample
histories (see DESIGN.md §6; "profile before optimizing").  The full
prominence computation keeps a NumPy implementation as the readable
reference, cross-checked against the fast walk by the test suite.
"""

from __future__ import annotations

import numpy as np

__all__ = ["peak_prominences", "count_prominent_peaks", "count_prominent_peaks_multi"]


def _candidate_maxima(x: np.ndarray) -> np.ndarray:
    """Indices of local maxima: strictly above the left neighbour, not below
    the right one (a flat-topped plateau counts once, at its left edge;
    plateaus that then rise are eliminated later by zero prominence)."""
    if x.shape[0] < 3:
        return np.empty(0, dtype=np.intp)
    interior = x[1:-1]
    mask = (interior > x[:-2]) & (interior >= x[2:])
    return np.flatnonzero(mask) + 1


def _base(height: float, side: np.ndarray) -> float:
    """Valley floor between a peak and the nearest strictly-higher sample.

    Args:
        height: the peak's value.
        side: samples walking away from the peak (nearest first).

    Returns:
        The minimum over the walked range, or ``height`` if the walk is
        empty (peak at the array edge).
    """
    if side.size == 0:
        return height
    higher = side > height
    if higher.any():
        stop = int(np.argmax(higher))
        if stop == 0:
            return height
        return float(side[:stop].min())
    return float(side.min())


def peak_prominences(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Find local maxima of ``x`` and their topographic prominences.

    Args:
        x: 1-D series (power history of one unit).

    Returns:
        ``(indices, prominences)`` — both 1-D arrays of equal length.
        Prominence of a peak is ``height - max(left_base, right_base)`` where
        each base is the minimum of the series between the peak and the
        nearest strictly higher sample on that side (or the series edge).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"expected 1-D series, got shape {x.shape}")
    idx = _candidate_maxima(x)
    if idx.size == 0:
        return idx, np.empty(0, dtype=np.float64)

    prominences = np.empty(idx.size, dtype=np.float64)
    for k, i in enumerate(idx):
        height = float(x[i])
        left_base = _base(height, x[i - 1 :: -1])
        right_base = _base(height, x[i + 1 :])
        prominences[k] = height - max(left_base, right_base)
    keep = prominences > 0.0
    return idx[keep], prominences[keep]


def _count_walk(xs: list[float], min_prominence: float) -> int:
    """Count prominent peaks of a native-float list (the hot path).

    Semantics match :func:`peak_prominences`: a candidate is strictly above
    its left neighbour and not below its right one; each side's valley floor
    is the minimum up to (excluding) the nearest strictly-higher sample.
    """
    n = len(xs)
    count = 0
    for i in range(1, n - 1):
        h = xs[i]
        if not (h > xs[i - 1] and h >= xs[i + 1]):
            continue
        left_base = h
        j = i - 1
        while j >= 0 and xs[j] <= h:
            if xs[j] < left_base:
                left_base = xs[j]
            j -= 1
        if h - left_base < min_prominence:
            continue
        right_base = h
        j = i + 1
        while j < n and xs[j] <= h:
            if xs[j] < right_base:
                right_base = xs[j]
            j += 1
        if h - (left_base if left_base > right_base else right_base) >= (
            min_prominence
        ):
            count += 1
    return count


def count_prominent_peaks(x: np.ndarray, min_prominence: float) -> int:
    """Number of local maxima of ``x`` with prominence >= ``min_prominence``.

    This is ``count_prominent_peaks`` from paper Algorithm 2.
    """
    if min_prominence <= 0:
        raise ValueError(f"min_prominence must be > 0, got {min_prominence}")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"expected 1-D series, got shape {x.shape}")
    return _count_walk(x.tolist(), float(min_prominence))


def count_prominent_peaks_multi(
    history: np.ndarray,
    min_prominence: float,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Prominent-peak counts for a bank of unit histories.

    Args:
        history: shape ``(history_len, n_units)``; column ``u`` is unit
            ``u``'s power history, oldest sample first.
        min_prominence: prominence threshold in watts.
        out: optional preallocated integer array of shape ``(n_units,)``
            the counts are written into (per-step scratch reuse on the
            control path).

    Returns:
        Integer array of shape ``(n_units,)`` (``out`` when provided).
    """
    if min_prominence <= 0:
        raise ValueError(f"min_prominence must be > 0, got {min_prominence}")
    history = np.asarray(history, dtype=np.float64)
    if history.ndim != 2:
        raise ValueError(f"expected 2-D history, got shape {history.shape}")
    n_units = history.shape[1]
    if out is None:
        out = np.empty(n_units, dtype=np.intp)
    elif out.shape != (n_units,):
        raise ValueError(f"out shape {out.shape} != ({n_units},)")
    prominence = float(min_prominence)
    for u, col in enumerate(history.T.tolist()):
        out[u] = _count_walk(col, prominence)
    return out

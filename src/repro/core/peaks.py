"""Prominent-peak detection for power histories (paper Algorithm 2, [32]).

The priority module counts *prominent peaks* in each unit's recent power
history to detect high-frequency power phases.  The paper cites Palshikar's
simple time-series peak detectors; we implement the topographic-prominence
variant from scratch (no SciPy dependency in the hot path): a local maximum's
prominence is its height above the higher of the two valley floors separating
it from the nearest higher samples on each side.

This runs once per unit per control step.  For a *single* short history
(20 steps by default) NumPy's per-call overhead dwarfs the work, so the
1-D entry point converts the history to native floats once and walks it in
plain Python — measured ~12x faster than slice-based NumPy on 20-sample
histories (see DESIGN.md §8).  That argument is per-call only: batched
across a cluster, the unit axis is the long one, so the multi-unit entry
point defaults to a column-parallel core (``core="vectorized"``) that walks
the short history axis in Python but does every comparison and
valley-floor minimum as one vector operation across all units — no
``.tolist()`` boxing of the ``(h, n_units)`` history.  The per-column walk
is kept as the ``core="loop"`` oracle, and the full prominence computation
keeps a NumPy implementation as the readable reference; the test suite
cross-checks all three.
"""

from __future__ import annotations

import numpy as np

from repro.core import _native

__all__ = [
    "peak_prominences",
    "count_prominent_peaks",
    "count_prominent_peaks_multi",
    "history_std",
]


def _candidate_maxima(x: np.ndarray) -> np.ndarray:
    """Indices of local maxima: strictly above the left neighbour, not below
    the right one (a flat-topped plateau counts once, at its left edge;
    plateaus that then rise are eliminated later by zero prominence)."""
    if x.shape[0] < 3:
        return np.empty(0, dtype=np.intp)
    interior = x[1:-1]
    mask = (interior > x[:-2]) & (interior >= x[2:])
    return np.flatnonzero(mask) + 1


def _base(height: float, side: np.ndarray) -> float:
    """Valley floor between a peak and the nearest strictly-higher sample.

    Args:
        height: the peak's value.
        side: samples walking away from the peak (nearest first).

    Returns:
        The minimum over the walked range, or ``height`` if the walk is
        empty (peak at the array edge).
    """
    if side.size == 0:
        return height
    higher = side > height
    if higher.any():
        stop = int(np.argmax(higher))
        if stop == 0:
            return height
        return float(side[:stop].min())
    return float(side.min())


def peak_prominences(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Find local maxima of ``x`` and their topographic prominences.

    Args:
        x: 1-D series (power history of one unit).

    Returns:
        ``(indices, prominences)`` — both 1-D arrays of equal length.
        Prominence of a peak is ``height - max(left_base, right_base)`` where
        each base is the minimum of the series between the peak and the
        nearest strictly higher sample on that side (or the series edge).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"expected 1-D series, got shape {x.shape}")
    idx = _candidate_maxima(x)
    if idx.size == 0:
        return idx, np.empty(0, dtype=np.float64)

    prominences = np.empty(idx.size, dtype=np.float64)
    for k, i in enumerate(idx):
        height = float(x[i])
        left_base = _base(height, x[i - 1 :: -1])
        right_base = _base(height, x[i + 1 :])
        prominences[k] = height - max(left_base, right_base)
    keep = prominences > 0.0
    return idx[keep], prominences[keep]


def _count_walk(xs: list[float], min_prominence: float) -> int:
    """Count prominent peaks of a native-float list (the hot path).

    Semantics match :func:`peak_prominences`: a candidate is strictly above
    its left neighbour and not below its right one; each side's valley floor
    is the minimum up to (excluding) the nearest strictly-higher sample.
    """
    n = len(xs)
    count = 0
    for i in range(1, n - 1):
        h = xs[i]
        if not (h > xs[i - 1] and h >= xs[i + 1]):
            continue
        left_base = h
        j = i - 1
        while j >= 0 and xs[j] <= h:
            if xs[j] < left_base:
                left_base = xs[j]
            j -= 1
        if h - left_base < min_prominence:
            continue
        right_base = h
        j = i + 1
        while j < n and xs[j] <= h:
            if xs[j] < right_base:
                right_base = xs[j]
            j += 1
        if h - (left_base if left_base > right_base else right_base) >= (
            min_prominence
        ):
            count += 1
    return count


def count_prominent_peaks(x: np.ndarray, min_prominence: float) -> int:
    """Number of local maxima of ``x`` with prominence >= ``min_prominence``.

    This is ``count_prominent_peaks`` from paper Algorithm 2.
    """
    if min_prominence <= 0:
        raise ValueError(f"min_prominence must be > 0, got {min_prominence}")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"expected 1-D series, got shape {x.shape}")
    return _count_walk(x.tolist(), float(min_prominence))


def _count_batch(
    x: np.ndarray,
    min_prominence: float,
    out: np.ndarray,
    scratch: dict | None = None,
) -> np.ndarray:
    """Column-parallel prominent-peak counts (the multi-unit hot path).

    Semantics are identical to running :func:`_count_walk` on every column.
    The walks of *all* candidate rows advance together, one valley-floor
    step per iteration of the walked distance ``k``: comparing every row
    ``i`` against row ``i - k`` is one shifted whole-array operation, so
    the pass costs O(history_len) vector operations per side instead of a
    Python walk per (candidate, unit) pair.  The count condition
    ``height - max(left_base, right_base) >= T`` is evaluated as
    ``(height - left_base >= T) & (height - right_base >= T)`` — identical
    to the last bit, since float subtraction is monotone in the subtrahend.

    Args:
        scratch: optional dict the (history_len, n_units) work arrays are
            cached in across calls (per-step scratch reuse on the control
            path); pass the same dict every call.
    """
    h, n = x.shape
    out[:] = 0
    if h < 3:
        return out
    if scratch is None:
        scratch = {}
    if scratch.get("shape") != (h, n):
        scratch["shape"] = (h, n)
        scratch["ok"] = np.empty((h, n), dtype=bool)
        scratch["alive"] = np.empty((h, n), dtype=bool)
        scratch["take"] = np.empty((h, n), dtype=bool)
        scratch["base"] = np.empty((h, n), dtype=np.float64)
        scratch["diff"] = np.empty((h, n), dtype=np.float64)
    ok = scratch["ok"]
    alive = scratch["alive"]
    take = scratch["take"]
    base = scratch["base"]
    diff = scratch["diff"]

    # Candidate maxima: strictly above the left neighbour, not below the
    # right one (rows 0 and h-1 can never be candidates).
    ok[0] = False
    ok[-1] = False
    np.greater(x[1:-1], x[:-2], out=ok[1:-1])
    np.greater_equal(x[1:-1], x[2:], out=take[1:-1])
    ok[1:-1] &= take[1:-1]
    if not ok.any():
        return out

    for left in (True, False):
        # Valley-floor walk away from every candidate row at once.  A row's
        # lane stays alive while the walked sample is <= its height; the
        # first strictly higher sample kills the lane, exactly like the
        # scalar walk.  Lanes that already failed the other side start dead
        # (their base cannot change the AND-ed count condition).
        np.copyto(base, x)
        np.copyto(alive, ok)
        for k in range(1, h):
            if left:
                rows, walked = slice(k, None), x[:-k]
            else:
                rows, walked = slice(None, -k), x[k:]
            t = take[rows]
            np.less_equal(walked, x[rows], out=t)
            t &= alive[rows]
            if not t.any():
                break
            np.minimum(base[rows], walked, out=base[rows], where=t)
            np.copyto(alive[rows], t)
        np.subtract(x, base, out=diff)
        np.greater_equal(diff, min_prominence, out=take)
        ok &= take
        if not ok.any():
            return out

    np.sum(ok, axis=0, dtype=np.intp, out=out)
    return out


def count_prominent_peaks_multi(
    history: np.ndarray,
    min_prominence: float,
    out: np.ndarray | None = None,
    core: str = "vectorized",
    scratch: dict | None = None,
) -> np.ndarray:
    """Prominent-peak counts for a bank of unit histories.

    Args:
        history: shape ``(history_len, n_units)``; column ``u`` is unit
            ``u``'s power history, oldest sample first.
        min_prominence: prominence threshold in watts.
        out: optional preallocated integer array of shape ``(n_units,)``
            the counts are written into (per-step scratch reuse on the
            control path).
        core: ``"vectorized"`` counts column-parallel across units;
            ``"loop"`` runs the per-column native-float walk (the oracle).
            Both return identical counts.
        scratch: optional dict the vectorized core caches its work arrays
            in across calls; pass the same dict every call.

    Returns:
        Integer array of shape ``(n_units,)`` (``out`` when provided).
    """
    if min_prominence <= 0:
        raise ValueError(f"min_prominence must be > 0, got {min_prominence}")
    if core not in ("loop", "vectorized"):
        raise ValueError(
            f"core must be 'loop' or 'vectorized', got {core!r}"
        )
    history = np.asarray(history, dtype=np.float64)
    if history.ndim != 2:
        raise ValueError(f"expected 2-D history, got shape {history.shape}")
    n_units = history.shape[1]
    if out is None:
        out = np.empty(n_units, dtype=np.intp)
    elif out.shape != (n_units,):
        raise ValueError(f"out shape {out.shape} != ({n_units},)")
    prominence = float(min_prominence)
    if core == "vectorized":
        kernel = _native.peak_features()
        if kernel is not None and history.shape[0] <= _native.MAX_HISTORY:
            kernel(history, prominence, out, None)
            return out
        return _count_batch(history, prominence, out, scratch)
    for u, col in enumerate(history.T.tolist()):
        out[u] = _count_walk(col, prominence)
    return out


def history_std(history: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Per-column population standard deviation of a history bank.

    This is the priority module's second frequency feature, computed once
    per control step and shared by *both* decision cores (it is a numeric
    feature, not part of the per-unit flag logic the cores reimplement),
    so loop/vectorized equivalence holds whichever implementation runs.

    Uses the native kernel when available — one cache-blocked pass fused
    with the peak counter's transpose — otherwise ``np.std``.  The two
    differ in summation order (sequential vs. pairwise), so stds can
    differ in the last few ulps between hosts with and without a C
    compiler; set ``REPRO_NO_NATIVE=1`` for cross-host bit-reproducibility
    of full simulations.
    """
    history = np.asarray(history, dtype=np.float64)
    if history.ndim != 2:
        raise ValueError(f"expected 2-D history, got shape {history.shape}")
    n_units = history.shape[1]
    if out is None:
        out = np.empty(n_units, dtype=np.float64)
    elif out.shape != (n_units,):
        raise ValueError(f"out shape {out.shape} != ({n_units},)")
    kernel = _native.peak_features()
    if kernel is not None and history.shape[0] <= _native.MAX_HISTORY:
        kernel(history, 1.0, None, out)
        return out
    np.std(history, axis=0, out=out)
    return out

"""The Dynamic Power Scheduler — the paper's primary contribution (§4).

DPS is a *model-free stateful* power manager: it keeps no workload model,
only the recent power dynamics of each unit, and composes four modules per
decision loop (paper Figure 3):

1. a Kalman filter turns the noisy power readings into estimated power and
   pushes it into the per-unit power history;
2. the stateless MIMD module produces a temporary cap allocation from the
   current (estimated) power alone;
3. the priority module classifies each unit high/low priority from the
   history's prominent-peak frequency and first derivative;
4. the cap-readjusting module restores all caps to the constant cap when the
   whole system is quiet, otherwise hands leftover budget to high-priority
   units or equalizes their caps when the budget is exhausted.

The equalize path is what gives DPS the constant-allocation lower bound the
paper proves informally in §4.4 and verifies in §6.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.core.config import DPSConfig
from repro.core.history import HistoryBuffer
from repro.core.kalman import KalmanBank
from repro.core.managers import PowerManager, register_manager
from repro.core.priority import PriorityModule
from repro.core.readjust import readjust, restore
from repro.core.stateless import mimd_step

__all__ = ["DPSManager", "DPSStepInfo"]


class DPSStepInfo(NamedTuple):
    """Introspection record of one DPS decision (for telemetry and tests).

    Attributes:
        estimate_w: Kalman power estimates used this step.
        stateless_caps_w: temporary caps produced by the stateless module.
        priority: high-priority mask after the priority module.
        high_freq: high-frequency flags after the priority module.
        restored: True if the restore pass reset all caps.
        caps_w: final caps sent to the units.
        grants_w: per-unit watts the readjusting module granted on top of
            the restore-pass caps this step (what the budget-safety
            guard's first degradation rung may shave back).
    """

    estimate_w: np.ndarray
    stateless_caps_w: np.ndarray
    priority: np.ndarray
    high_freq: np.ndarray
    restored: bool
    caps_w: np.ndarray
    grants_w: np.ndarray


@register_manager
class DPSManager(PowerManager):
    """Model-free stateful power manager (the paper's DPS).

    Args:
        config: full DPS configuration; see
            :class:`~repro.core.config.DPSConfig` for the ablation switches.
    """

    name = "dps"

    def __init__(self, config: DPSConfig | None = None) -> None:
        super().__init__()
        self.config = config or DPSConfig()
        self._kalman: KalmanBank | None = None
        self._priority_mod: PriorityModule | None = None
        self._history: HistoryBuffer | None = None
        self._last_info: DPSStepInfo | None = None
        self._mimd_scratch: dict = {}

    def _on_bind(self) -> None:
        cfg = self.config
        self._kalman = KalmanBank(self.n_units, cfg.kalman)
        self._priority_mod = PriorityModule(
            self.n_units,
            cfg.priority,
            use_frequency=cfg.use_frequency,
            core=cfg.decision_core,
        )
        self._history = HistoryBuffer(cfg.priority.history_len, self.n_units)
        self._last_info = None

    @property
    def last_info(self) -> DPSStepInfo | None:
        """Full breakdown of the most recent decision, or None before any."""
        return self._last_info

    @property
    def last_grants_w(self) -> np.ndarray | None:
        """Watts the readjusting module granted per unit on the most
        recent step, or None before any step."""
        if self._last_info is None:
            return None
        return self._last_info.grants_w

    @property
    def priority(self) -> np.ndarray:
        """Current high-priority mask (False for all units before binding-warmup)."""
        self._check_bound()
        assert self._priority_mod is not None
        return self._priority_mod.priority

    def _snapshot_state(self) -> dict:
        assert (
            self._kalman is not None
            and self._priority_mod is not None
            and self._history is not None
        )
        return {
            "kalman": self._kalman.snapshot(),
            "priority": self._priority_mod.snapshot(),
            "history": self._history.snapshot(),
        }

    def _restore_state(self, state: dict) -> None:
        assert (
            self._kalman is not None
            and self._priority_mod is not None
            and self._history is not None
        )
        self._kalman.restore(state["kalman"])
        self._priority_mod.restore(state["priority"])
        self._history.restore(state["history"])

    def _decide(
        self, power_w: np.ndarray, demand_w: np.ndarray | None
    ) -> np.ndarray:
        del demand_w
        assert (
            self._kalman is not None
            and self._priority_mod is not None
            and self._history is not None
        )
        cfg = self.config

        # 1. Filter the noisy reading and extend the power history.  The
        # base-class step() already validated shape and finiteness, so the
        # bank skips its own re-scan of the same vector.
        estimate = self._kalman.update(power_w, validate=False)
        signal = estimate if cfg.use_kalman else np.asarray(
            power_w, dtype=np.float64
        )
        self._history.push(signal)

        # 2. Temporary allocation from the stateless module.
        mimd = mimd_step(
            signal,
            self._caps,
            self.budget_w,
            self.max_cap_w,
            self.min_cap_w,
            cfg.stateless,
            self._rng,
            core=cfg.decision_core,
            scratch=self._mimd_scratch,
        )

        # 3. Priorities from the power dynamics.
        priority = self._priority_mod.update(
            self._history.chronological(), self.dt_s
        )

        # 4. Restore when quiet, else steer budget by priority.
        restored_result = restore(
            signal, mimd.caps, self.initial_cap_w, cfg.readjust
        )
        caps = readjust(
            restored_result.caps,
            priority,
            self.budget_w,
            self.max_cap_w,
            restored_result.restored,
            cfg.readjust,
        )

        self._last_info = DPSStepInfo(
            estimate_w=estimate,
            stateless_caps_w=mimd.caps,
            priority=priority,
            high_freq=self._priority_mod.high_freq.copy(),
            restored=restored_result.restored,
            caps_w=caps.copy(),
            grants_w=np.maximum(caps - restored_result.caps, 0.0),
        )
        return caps

"""Cap-readjusting module: restore and readjust (paper Algorithms 3 and 4).

The readjusting module runs after the stateless module and turns the
priorities produced by :class:`~repro.core.priority.PriorityModule` into the
final cap decision:

* **Restore** (Algorithm 3): if *no* unit is drawing meaningful power
  (every reading is below ``restore_threshold`` of the constant cap), all
  caps snap back to the constant cap so any unit's incoming work immediately
  has headroom.
* **Readjust** (Algorithm 4): otherwise, leftover budget is handed to the
  high-priority units, weighted *inversely* to their current caps (lower-
  capped rising units need more budget to reach peak power and would
  otherwise be penalized hardest); when the budget is exhausted the caps of
  all high-priority units are equalized, which both repairs any unfairness
  introduced by the stateless module's random increase order and gives the
  constant-allocation lower bound.

Faithfulness note: Algorithm 4's first branch computes
``ratio[u] = budget_high / cap[u]`` and then ``cap[u] <- min(max,
avail * ratio[u] / total)`` — *replacing* the cap with a share of the
leftover, which would shrink caps whenever the leftover is small.  Matching
the paper's prose ("allocates this unassigned budget to all the
high-priority units"), we *add* the inverse-cap-weighted share instead, with
a short water-fill loop so budget clipped off at the per-unit maximum is
recycled to the remaining high-priority units.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.core.config import ReadjustConfig

__all__ = ["RestoreResult", "restore", "readjust"]

#: Caps within this many watts of the per-unit maximum count as saturated
#: for the water-fill: any grant they could still absorb is numerical
#: noise, so they are excluded from the active set up front (the same
#: tolerance the in-loop refilter applies — a unit 1e-13 below TDP must
#: not cost a full pass for a ~0 W grant).
SATURATION_EPS_W = 1e-12


class RestoreResult(NamedTuple):
    """Outcome of the restore pass.

    Attributes:
        caps: per-unit caps after the pass (fresh array).
        restored: True if all caps were reset to the constant cap.
    """

    caps: np.ndarray
    restored: bool


def restore(
    power_w: np.ndarray,
    caps_w: np.ndarray,
    initial_cap_w: float,
    config: ReadjustConfig,
) -> RestoreResult:
    """Snap all caps back to the constant cap when the system is quiet.

    Args:
        power_w: per-unit power readings (W).
        caps_w: per-unit caps after the stateless module (not modified).
        initial_cap_w: the constant cap (budget / n_units).
        config: holds ``restore_threshold``.

    Returns:
        :class:`RestoreResult`; when not restored, ``caps`` is an unmodified
        copy of the input.
    """
    power = np.asarray(power_w, dtype=np.float64)
    caps = np.asarray(caps_w, dtype=np.float64).copy()
    if power.shape != caps.shape or power.ndim != 1:
        raise ValueError(
            f"power shape {power.shape} and caps shape {caps.shape} must be "
            "equal 1-D shapes"
        )
    if initial_cap_w <= 0:
        raise ValueError(f"initial_cap_w must be > 0, got {initial_cap_w}")

    if np.any(power > initial_cap_w * config.restore_threshold):
        return RestoreResult(caps=caps, restored=False)
    caps.fill(initial_cap_w)
    return RestoreResult(caps=caps, restored=True)


def readjust(
    caps_w: np.ndarray,
    priority: np.ndarray,
    budget_w: float,
    max_cap_w: float,
    restored: bool,
    config: ReadjustConfig,
) -> np.ndarray:
    """Hand leftover budget to high-priority units, or equalize their caps.

    Args:
        caps_w: per-unit caps after the stateless and restore passes.
        priority: boolean high-priority mask, shape ``(n_units,)``.
        budget_w: cluster-wide budget (W).
        max_cap_w: per-unit maximum cap (TDP).
        restored: flag from :func:`restore`; when True this pass is a no-op
            (Algorithm 4 line 3).
        config: holds ``budget_epsilon``.

    Returns:
        Final per-unit caps (fresh array).
    """
    caps = np.asarray(caps_w, dtype=np.float64).copy()
    prio = np.asarray(priority, dtype=bool)
    if caps.shape != prio.shape or caps.ndim != 1:
        raise ValueError(
            f"caps shape {caps.shape} and priority shape {prio.shape} must "
            "be equal 1-D shapes"
        )
    if restored:
        return caps

    high = np.flatnonzero(prio)
    if high.size == 0:
        return caps

    avail = budget_w - float(caps.sum())
    if avail > config.budget_epsilon:
        # Distribute the leftover to high-priority units, inverse-cap
        # weighted; recycle anything clipped at the per-unit maximum.
        # The water-fill iterates on a compact copy of the active caps —
        # one gather up front, one scatter per retired unit batch — instead
        # of re-gathering ``caps[active]`` several times per pass; the
        # element order and arithmetic are unchanged, so the grants are
        # identical to filling in place.
        gathered = caps[high]
        keep = gathered < max_cap_w - SATURATION_EPS_W
        active = high[keep]
        c = gathered[keep]
        remaining = avail
        # Each pass either exhausts the budget or saturates at least one
        # unit, so this terminates in at most len(active) passes.
        while remaining > config.budget_epsilon and active.size > 0:
            weights = 1.0 / np.maximum(c, 1e-9)
            weights /= weights.sum()
            grant = np.minimum(remaining * weights, max_cap_w - c)
            c += grant
            remaining -= float(grant.sum())
            keep = c < max_cap_w - SATURATION_EPS_W
            if not keep.all():
                done = ~keep
                caps[active[done]] = c[done]
                active = active[keep]
                c = c[keep]
        caps[active] = c
    else:
        # Budget exhausted: equalize the caps of all high-priority units.
        equal_cap = min(float(caps[high].mean()), max_cap_w)
        caps[high] = equal_cap

    return caps

"""Fixed-length power-history buffer shared by the DPS modules.

The paper's server keeps "a short range of estimated power history of each
socket, default 20 time steps" (§6.5) — small enough to live in cache at any
cluster scale.  This ring buffer stores the estimates column-per-unit in one
contiguous ``(history_len, n_units)`` array and hands out chronological
views without reallocating in the steady state.
"""

from __future__ import annotations

import numpy as np

from repro.recovery.state import decode_array, encode_array

__all__ = ["HistoryBuffer"]


class HistoryBuffer:
    """Ring buffer of per-unit power samples.

    Args:
        history_len: maximum number of samples retained.
        n_units: number of units (columns).
    """

    def __init__(self, history_len: int, n_units: int) -> None:
        if history_len < 1:
            raise ValueError(f"history_len must be >= 1, got {history_len}")
        if n_units < 1:
            raise ValueError(f"n_units must be >= 1, got {n_units}")
        self.history_len = history_len
        self.n_units = n_units
        self._data = np.zeros((history_len, n_units), dtype=np.float64)
        self._count = 0
        self._head = 0  # Index the next sample is written to.
        # Scratch for the wrapped chronological() path: unrolling the ring
        # happens once per control step, so a fresh (history_len, n_units)
        # allocation there is per-step garbage at any cluster scale.
        self._chron = np.empty_like(self._data)

    def __len__(self) -> int:
        """Number of samples currently stored (<= history_len)."""
        return self._count

    @property
    def full(self) -> bool:
        """True once `history_len` samples have been pushed."""
        return self._count == self.history_len

    def reset(self) -> None:
        """Drop all samples."""
        self._data.fill(0.0)
        self._count = 0
        self._head = 0

    def snapshot(self) -> dict:
        """JSON-able document of the ring contents and cursor."""
        return {
            "data": encode_array(self._data),
            "count": self._count,
            "head": self._head,
        }

    def restore(self, state: dict) -> None:
        """Overwrite the ring with a snapshot's content."""
        data = decode_array(state["data"])
        if data.shape != self._data.shape:
            raise ValueError(
                f"snapshot shape {data.shape} != {self._data.shape}"
            )
        count = int(state["count"])
        head = int(state["head"])
        if not 0 <= count <= self.history_len or not 0 <= head < self.history_len:
            raise ValueError(
                f"snapshot cursor count={count} head={head} out of range"
            )
        self._data[:] = data
        self._count = count
        self._head = head

    def push(self, sample: np.ndarray) -> None:
        """Append one per-unit sample, evicting the oldest when full.

        Args:
            sample: shape ``(n_units,)``.
        """
        s = np.asarray(sample, dtype=np.float64)
        if s.shape != (self.n_units,):
            raise ValueError(f"sample shape {s.shape} != ({self.n_units},)")
        self._data[self._head] = s
        self._head = (self._head + 1) % self.history_len
        if self._count < self.history_len:
            self._count += 1

    def chronological(self) -> np.ndarray:
        """Stored samples in order, oldest first, shape ``(len, n_units)``.

        Returns a read-only view: of the underlying storage when the ring
        has not wrapped, otherwise of a preallocated scratch buffer the
        ring is unrolled into — no allocation per call either way.  The
        view is only valid until the next :meth:`push` or
        :meth:`chronological` call; copy it to retain.
        """
        if self._count < self.history_len:
            view = self._data[: self._count].view()
            view.flags.writeable = False
            return view
        if self._head == 0:
            view = self._data.view()
            view.flags.writeable = False
            return view
        tail = self.history_len - self._head
        self._chron[:tail] = self._data[self._head :]
        self._chron[tail:] = self._data[: self._head]
        view = self._chron.view()
        view.flags.writeable = False
        return view

    def latest(self) -> np.ndarray:
        """The most recent sample, shape ``(n_units,)``.

        Raises:
            IndexError: if the buffer is empty.
        """
        if self._count == 0:
            raise IndexError("history buffer is empty")
        return self._data[(self._head - 1) % self.history_len].copy()

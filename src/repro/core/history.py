"""Fixed-length power-history buffer shared by the DPS modules.

The paper's server keeps "a short range of estimated power history of each
socket, default 20 time steps" (§6.5) — small enough to live in cache at any
cluster scale.  This ring buffer stores the estimates column-per-unit in one
contiguous ``(history_len, n_units)`` array and hands out chronological
views without reallocating in the steady state.
"""

from __future__ import annotations

import numpy as np

from repro.recovery.state import decode_array, encode_array

__all__ = ["HistoryBuffer"]


class HistoryBuffer:
    """Ring buffer of per-unit power samples.

    Args:
        history_len: maximum number of samples retained.
        n_units: number of units (columns).
    """

    def __init__(self, history_len: int, n_units: int) -> None:
        if history_len < 1:
            raise ValueError(f"history_len must be >= 1, got {history_len}")
        if n_units < 1:
            raise ValueError(f"n_units must be >= 1, got {n_units}")
        self.history_len = history_len
        self.n_units = n_units
        # Double-write ring: every sample is stored at ring slot `head` AND
        # at `head + history_len`, so the chronological window is always the
        # contiguous row range [head, head + count) — chronological() hands
        # out zero-copy views even after the ring wraps, at the cost of one
        # extra row write per push (a row is tiny next to unrolling the
        # whole (history_len, n_units) ring every control step).
        self._data = np.zeros((2 * history_len, n_units), dtype=np.float64)
        self._count = 0
        self._head = 0  # Index the next sample is written to.

    def __len__(self) -> int:
        """Number of samples currently stored (<= history_len)."""
        return self._count

    @property
    def full(self) -> bool:
        """True once `history_len` samples have been pushed."""
        return self._count == self.history_len

    def reset(self) -> None:
        """Drop all samples."""
        self._data.fill(0.0)
        self._count = 0
        self._head = 0

    def snapshot(self) -> dict:
        """JSON-able document of the ring contents and cursor.

        Only the logical ring (the first ``history_len`` rows) is encoded;
        the doubled rows are derived storage and are rebuilt on restore.
        """
        return {
            "data": encode_array(self._data[: self.history_len]),
            "count": self._count,
            "head": self._head,
        }

    def restore(self, state: dict) -> None:
        """Overwrite the ring with a snapshot's content."""
        data = decode_array(state["data"])
        if data.shape != (self.history_len, self.n_units):
            raise ValueError(
                f"snapshot shape {data.shape} != "
                f"{(self.history_len, self.n_units)}"
            )
        count = int(state["count"])
        head = int(state["head"])
        if not 0 <= count <= self.history_len or not 0 <= head < self.history_len:
            raise ValueError(
                f"snapshot cursor count={count} head={head} out of range"
            )
        self._data[: self.history_len] = data
        self._data[self.history_len :] = data
        self._count = count
        self._head = head

    def push(self, sample: np.ndarray) -> None:
        """Append one per-unit sample, evicting the oldest when full.

        Args:
            sample: shape ``(n_units,)``.
        """
        s = np.asarray(sample, dtype=np.float64)
        if s.shape != (self.n_units,):
            raise ValueError(f"sample shape {s.shape} != ({self.n_units},)")
        self._data[self._head] = s
        self._data[self._head + self.history_len] = s
        self._head = (self._head + 1) % self.history_len
        if self._count < self.history_len:
            self._count += 1

    def chronological(self) -> np.ndarray:
        """Stored samples in order, oldest first, shape ``(len, n_units)``.

        Always a zero-copy read-only view of the double-write storage:
        during warm-up the first ``count`` rows, afterwards the contiguous
        window starting at the ring head.  The view is only valid until
        the next :meth:`push` call; copy it to retain.
        """
        if self._count < self.history_len:
            view = self._data[: self._count].view()
        else:
            view = self._data[self._head : self._head + self.history_len]
        view.flags.writeable = False
        return view

    def latest(self) -> np.ndarray:
        """The most recent sample, shape ``(n_units,)``.

        Raises:
            IndexError: if the buffer is empty.
        """
        if self._count == 0:
            raise IndexError("history buffer is empty")
        return self._data[(self._head - 1) % self.history_len].copy()

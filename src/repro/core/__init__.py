"""The paper's contribution: DPS and the baseline power managers.

Importing this package registers the paper's four managers (``constant``,
``slurm``, ``oracle``, ``dps``), their extensions, and the fault-tolerant
``resilient`` wrapper with :func:`repro.core.managers.create_manager`.
"""

from repro.core.config import (
    DECISION_CORES,
    ClusterSpec,
    DPSConfig,
    KalmanConfig,
    PerfModelConfig,
    PriorityConfig,
    RaplConfig,
    ReadjustConfig,
    SimulationConfig,
    StatelessConfig,
)
from repro.core.constant import ConstantManager
from repro.core.demand import DemandEstimator, DemandEstimatorConfig
from repro.core.dps import DPSManager, DPSStepInfo
from repro.core.dpsplus import DPSPlusManager
from repro.core.hierarchical import HierarchicalManager
from repro.core.history import HistoryBuffer
from repro.core.kalman import KalmanBank
from repro.core.managers import (
    PowerManager,
    available_managers,
    create_manager,
    register_manager,
)
from repro.core.oracle import OracleManager
from repro.core.p2p import P2PManager
from repro.core.peaks import (
    count_prominent_peaks,
    count_prominent_peaks_multi,
    peak_prominences,
)
from repro.core.priority import PriorityModule
from repro.core.readjust import RestoreResult, readjust, restore
from repro.core.slurm import SlurmManager
from repro.core.stateless import MimdResult, mimd_step

# Imported last: the resilience package depends on the core modules above.
from repro.resilience.manager import (  # noqa: E402
    ResilientConfig,
    ResilientManager,
)

__all__ = [
    "ClusterSpec",
    "ConstantManager",
    "DECISION_CORES",
    "DPSConfig",
    "DPSManager",
    "DPSPlusManager",
    "DPSStepInfo",
    "DemandEstimator",
    "DemandEstimatorConfig",
    "HierarchicalManager",
    "HistoryBuffer",
    "KalmanBank",
    "KalmanConfig",
    "MimdResult",
    "OracleManager",
    "P2PManager",
    "PerfModelConfig",
    "PowerManager",
    "PriorityConfig",
    "PriorityModule",
    "RaplConfig",
    "ReadjustConfig",
    "ResilientConfig",
    "ResilientManager",
    "RestoreResult",
    "SimulationConfig",
    "SlurmManager",
    "StatelessConfig",
    "available_managers",
    "count_prominent_peaks",
    "count_prominent_peaks_multi",
    "create_manager",
    "mimd_step",
    "peak_prominences",
    "readjust",
    "register_manager",
    "restore",
]

"""MIMD stateless allocation core (paper Algorithm 1).

This is the multiplicative-increase / multiplicative-decrease controller
inspired by SLURM's power-management plugin.  It is used in two places:

* standalone, as the :class:`repro.core.slurm.SlurmManager` baseline, and
* as the first stage of the DPS pipeline, producing the temporary cap
  allocation that the priority and cap-readjusting modules then refine.

Faithfulness notes (documented deviations from the paper's pseudocode):

* Algorithm 1 line 12 reads ``tempt <- min(cap[u] * inc_percentile,
  avail_budget)`` and then *assigns* ``cap[u] <- tempt``, which would set a
  unit's cap to the leftover budget rather than grow it by at most the
  leftover.  We implement the evident intent: the cap grows multiplicatively,
  but the *increase amount* is limited by the remaining budget (and the
  per-unit maximum).
* Caps are additionally clamped to ``[min_cap_w, max_cap_w]`` — the RAPL
  constraint range — which the pseudocode leaves implicit.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.core.config import StatelessConfig

__all__ = ["MimdResult", "mimd_step"]


class MimdResult(NamedTuple):
    """Outcome of one MIMD pass.

    Attributes:
        caps: new per-unit caps (W), shape ``(n_units,)``.
        changed: boolean mask of units whose cap this pass modified
            (``set_flag`` in the paper's pseudocode).
        avail_budget_w: budget left unassigned after the pass (W).
    """

    caps: np.ndarray
    changed: np.ndarray
    avail_budget_w: float


def mimd_step(
    power_w: np.ndarray,
    caps_w: np.ndarray,
    budget_w: float,
    max_cap_w: float,
    min_cap_w: float,
    config: StatelessConfig,
    rng: np.random.Generator,
) -> MimdResult:
    """Run one multiplicative-increase / multiplicative-decrease pass.

    First loop: every unit drawing less than ``dec_threshold`` of its cap has
    its cap lowered to ``max(power, cap * dec_factor)`` — the budget it was
    not using is reclaimed.  Second loop, in random order so no unit has a
    standing advantage: every unit drawing more than ``inc_threshold`` of its
    cap grows its cap by up to ``(inc_factor - 1) * cap``, limited by the
    unassigned budget and the per-unit maximum.

    Args:
        power_w: current per-unit power readings (W).
        caps_w: current per-unit caps (W); not modified.
        budget_w: cluster-wide budget (W).
        max_cap_w: per-unit maximum cap (TDP).
        min_cap_w: per-unit minimum cap.
        config: MIMD thresholds and factors.
        rng: randomness source for the increase-loop ordering.

    Returns:
        :class:`MimdResult` with the new caps (a fresh array).
    """
    power = np.asarray(power_w, dtype=np.float64)
    caps = np.asarray(caps_w, dtype=np.float64).copy()
    if power.shape != caps.shape or power.ndim != 1:
        raise ValueError(
            f"power shape {power.shape} and caps shape {caps.shape} must be "
            "equal 1-D shapes"
        )
    n = caps.shape[0]
    changed = np.zeros(n, dtype=bool)

    # --- First loop: decrease caps of under-consuming units (vectorized).
    dec_mask = power < caps * config.dec_threshold
    if np.any(dec_mask):
        lowered = np.maximum(power[dec_mask], caps[dec_mask] * config.dec_factor)
        lowered = np.clip(lowered, min_cap_w, max_cap_w)
        changed[dec_mask] = lowered != caps[dec_mask]
        caps[dec_mask] = lowered

    # --- Second loop: increase caps of capped-out units in random order.
    avail = budget_w - float(caps.sum())
    if avail > 0.0:
        want = power > caps * config.inc_threshold
        for u in rng.permutation(n):
            if not want[u] or avail <= 0.0:
                continue
            target = min(caps[u] * config.inc_factor, max_cap_w)
            grow = min(target - caps[u], avail)
            if grow <= 0.0:
                continue
            caps[u] += grow
            avail -= grow
            changed[u] = True

    return MimdResult(caps=caps, changed=changed, avail_budget_w=max(avail, 0.0))

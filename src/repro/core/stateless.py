"""MIMD stateless allocation core (paper Algorithm 1).

This is the multiplicative-increase / multiplicative-decrease controller
inspired by SLURM's power-management plugin.  It is used in two places:

* standalone, as the :class:`repro.core.slurm.SlurmManager` baseline, and
* as the first stage of the DPS pipeline, producing the temporary cap
  allocation that the priority and cap-readjusting modules then refine.

Faithfulness notes (documented deviations from the paper's pseudocode):

* Algorithm 1 line 12 reads ``tempt <- min(cap[u] * inc_percentile,
  avail_budget)`` and then *assigns* ``cap[u] <- tempt``, which would set a
  unit's cap to the leftover budget rather than grow it by at most the
  leftover.  We implement the evident intent: the cap grows multiplicatively,
  but the *increase amount* is limited by the remaining budget (and the
  per-unit maximum).
* Caps are additionally clamped to ``[min_cap_w, max_cap_w]`` — the RAPL
  constraint range — which the pseudocode leaves implicit.

The random-order increase loop exists in two bit-exact implementations
selected by ``core``: the original per-unit Python walk (``"loop"``, the
test oracle) and an array-native pass (``"vectorized"``) that replays the
sequential budget admission with one ``np.subtract.accumulate`` — the
running-remainder chain rounds identically to the loop's ``avail -= grow``,
so full grants, the single partial grant at the budget boundary, and the
returned leftover all match the oracle to the last bit.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.core.config import StatelessConfig, _decision_core

__all__ = ["MimdResult", "mimd_step"]


class MimdResult(NamedTuple):
    """Outcome of one MIMD pass.

    Attributes:
        caps: new per-unit caps (W), shape ``(n_units,)``.
        changed: boolean mask of units whose cap this pass modified
            (``set_flag`` in the paper's pseudocode).
        avail_budget_w: budget left unassigned after the pass (W).
    """

    caps: np.ndarray
    changed: np.ndarray
    avail_budget_w: float


def _mimd_scratch(scratch: dict, n: int) -> dict:
    """(Re)size the preallocated work arrays of the vectorized pass.

    ``mimd_step`` runs every control step; at cluster scale its float64
    temporaries are megabytes of fresh mmap traffic per call, so managers
    pass a persistent dict the work arrays are cached in across steps.
    """
    if scratch.get("n") != n:
        scratch["n"] = n
        for key in ("f1", "f2", "g1", "g2"):
            scratch[key] = np.empty(n, dtype=np.float64)
        for key in ("b1", "b2", "b3"):
            scratch[key] = np.empty(n, dtype=bool)
        scratch["chain"] = np.empty(n + 1, dtype=np.float64)
    return scratch


def _increase_loop(
    caps: np.ndarray,
    want: np.ndarray,
    order: np.ndarray,
    avail: float,
    max_cap_w: float,
    inc_factor: float,
    changed: np.ndarray,
    scratch: dict,
) -> float:
    """Per-unit increase walk (the test oracle); mutates caps/changed."""
    del scratch
    for u in order:
        if not want[u] or avail <= 0.0:
            continue
        target = min(caps[u] * inc_factor, max_cap_w)
        grow = min(target - caps[u], avail)
        if grow <= 0.0:
            continue
        caps[u] += grow
        avail -= grow
        changed[u] = True
    return avail


def _increase_vectorized(
    caps: np.ndarray,
    want: np.ndarray,
    order: np.ndarray,
    avail: float,
    max_cap_w: float,
    inc_factor: float,
    changed: np.ndarray,
    scratch: dict,
) -> float:
    """Array-native replay of :func:`_increase_loop`; mutates caps/changed.

    The sequential loop grants each wanting unit its full desired growth
    until the remaining budget no longer covers one, which then receives
    the remainder and exhausts the budget.  ``np.subtract.accumulate``
    reproduces the loop's running remainder with the same left-to-right
    rounding (units the loop skips subtract exactly 0.0), so the admission
    set, the one partial grant, and the leftover are all bit-exact.
    """
    desired = np.multiply(caps, inc_factor, out=scratch["f1"])
    np.minimum(desired, max_cap_w, out=desired)
    desired -= caps
    np.maximum(desired, 0.0, out=desired)
    desired *= want  # d * 0.0 == 0.0, d * 1.0 == d: exact mask-out.

    d = np.take(desired, order, out=scratch["g1"])
    chain = scratch["chain"]
    chain[0] = avail
    chain[1:] = d
    np.subtract.accumulate(chain, out=chain)
    # chain[k] is now the budget remaining before the k-th unit in `order`
    # (under full grants); once it crosses zero it only decreases, so there
    # is exactly one boundary unit.  A unit with budget left gets
    # min(demand, remaining) — its full demand or the boundary partial
    # grant — and a closed unit gets exactly 0.0 via the bool multiply
    # (min(d, before) can be negative past the boundary; x * 0.0 is at
    # worst -0.0, which is > 0-false and addition-neutral).
    before = chain[:-1]
    open_ = np.greater(before, 0.0, out=scratch["b1"])
    grant = np.minimum(d, before, out=scratch["g2"])
    grant *= open_

    granted = np.greater(grant, 0.0, out=scratch["b2"])
    caps[order] += grant
    # Scatter-store through the permutation, then one whole-array OR —
    # same result as `changed[order] |= granted` without its extra gather.
    scattered = scratch["b3"]
    scattered[order] = granted
    np.logical_or(changed, scattered, out=changed)
    # After a partial grant the loop's remainder is exactly 0.0 while the
    # chain keeps subtracting skipped demands; both clamp to 0 at return.
    return float(chain[-1])


_INCREASE_CORES = {
    "loop": _increase_loop,
    "vectorized": _increase_vectorized,
}


def mimd_step(
    power_w: np.ndarray,
    caps_w: np.ndarray,
    budget_w: float,
    max_cap_w: float,
    min_cap_w: float,
    config: StatelessConfig,
    rng: np.random.Generator,
    core: str = "vectorized",
    scratch: dict | None = None,
) -> MimdResult:
    """Run one multiplicative-increase / multiplicative-decrease pass.

    First loop: every unit drawing less than ``dec_threshold`` of its cap has
    its cap lowered to ``max(power, cap * dec_factor)`` — the budget it was
    not using is reclaimed.  Second loop, in random order so no unit has a
    standing advantage: every unit drawing more than ``inc_threshold`` of its
    cap grows its cap by up to ``(inc_factor - 1) * cap``, limited by the
    unassigned budget and the per-unit maximum.

    Args:
        power_w: current per-unit power readings (W).
        caps_w: current per-unit caps (W); not modified.
        budget_w: cluster-wide budget (W).
        max_cap_w: per-unit maximum cap (TDP).
        min_cap_w: per-unit minimum cap.
        config: MIMD thresholds and factors.
        rng: randomness source for the increase-loop ordering.  Both cores
            draw one permutation from it (only when there is leftover
            budget), so the stream position advances identically.
        core: ``"vectorized"`` or ``"loop"`` — bit-exact equivalents.
        scratch: optional dict the vectorized pass caches its work arrays
            in across calls (per-step scratch reuse on the control path);
            pass the same dict every call.

    Returns:
        :class:`MimdResult` with the new caps (a fresh array).
    """
    _decision_core("core", core)
    power = np.asarray(power_w, dtype=np.float64)
    caps = np.asarray(caps_w, dtype=np.float64).copy()
    if power.shape != caps.shape or power.ndim != 1:
        raise ValueError(
            f"power shape {power.shape} and caps shape {caps.shape} must be "
            "equal 1-D shapes"
        )
    n = caps.shape[0]
    scratch = _mimd_scratch(scratch if scratch is not None else {}, n)
    changed = np.zeros(n, dtype=bool)

    # --- First loop: decrease caps of under-consuming units (vectorized).
    # Whole-array compute plus a masked copyto: elementwise identical to
    # fancy-indexed updates, without the gather/scatter cost of boolean
    # indexing on the unit axis.
    dec_mask = np.multiply(caps, config.dec_threshold, out=scratch["f1"])
    dec_mask = np.less(power, dec_mask, out=scratch["b1"])
    if np.any(dec_mask):
        lowered = np.multiply(caps, config.dec_factor, out=scratch["f2"])
        np.maximum(power, lowered, out=lowered)
        np.clip(lowered, min_cap_w, max_cap_w, out=lowered)
        np.not_equal(lowered, caps, out=scratch["b2"])
        np.logical_and(dec_mask, scratch["b2"], out=changed)
        np.copyto(caps, lowered, where=dec_mask)

    # --- Second loop: increase caps of capped-out units in random order.
    avail = budget_w - float(caps.sum())
    if avail > 0.0:
        want = np.multiply(caps, config.inc_threshold, out=scratch["f2"])
        want = np.greater(power, want, out=scratch["b1"])
        order = rng.permutation(n)
        avail = _INCREASE_CORES[core](
            caps,
            want,
            order,
            avail,
            max_cap_w,
            config.inc_factor,
            changed,
            scratch,
        )

    return MimdResult(caps=caps, changed=changed, avail_budget_w=max(avail, 0.0))

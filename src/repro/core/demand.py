"""Model-free demand estimation (the paper's §7 future-work direction).

The paper closes by hoping power dynamics can push model-free managers
"even closer to the model-based systems".  The missing quantity is each
unit's *demand* — unobservable while the unit is capped (§3's challenge 1).
:class:`DemandEstimator` estimates it from the same signals DPS already
has, with three rules:

* **visible demand** — a unit drawing clearly below its cap is satisfied;
  its demand is simply its (filtered) power;
* **hidden demand** — a unit pinned at its cap demands *at least* the cap;
  the estimate grows multiplicatively above the cap, probing upward the
  way MIMD probes caps, until the unit unpins or TDP is reached;
* **decay** — when power falls, the estimate relaxes toward power
  exponentially, so stale peaks do not hoard budget.

This stays strictly model-free: no application knowledge, no training —
only power and cap history, per the paper's design principles (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.recovery.state import decode_array, encode_array

__all__ = ["DemandEstimatorConfig", "DemandEstimator"]


@dataclass(frozen=True)
class DemandEstimatorConfig:
    """Tuning of the demand estimator.

    Attributes:
        pin_threshold: fraction of the cap above which a unit counts as
            pinned (demand hidden by the cap).
        probe_factor: multiplicative growth of a pinned unit's estimate per
            step (> 1).  Deliberately aggressive — a pinned unit's true
            demand is unbounded from the estimator's viewpoint, and a slow
            probe reproduces the very starvation window DPS's priorities
            exist to close (measured in the DPS+ probe sweep; an
            over-estimate self-corrects through the decay on unpin).
        decay: per-step relaxation rate of the estimate toward visible
            power when the unit is not pinned, in (0, 1].
    """

    pin_threshold: float = 0.95
    probe_factor: float = 1.3
    decay: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.pin_threshold <= 1:
            raise ValueError(
                f"pin_threshold must be in (0, 1], got {self.pin_threshold}"
            )
        if self.probe_factor <= 1.0:
            raise ValueError(
                f"probe_factor must be > 1, got {self.probe_factor}"
            )
        if not 0 < self.decay <= 1:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")


class DemandEstimator:
    """Per-unit power-demand estimates from power and cap observations.

    Args:
        n_units: number of units tracked.
        max_demand_w: upper bound on any estimate (unit TDP).
        config: estimator tuning.
    """

    def __init__(
        self,
        n_units: int,
        max_demand_w: float,
        config: DemandEstimatorConfig | None = None,
    ) -> None:
        if n_units < 1:
            raise ValueError(f"n_units must be >= 1, got {n_units}")
        if max_demand_w <= 0:
            raise ValueError(f"max_demand_w must be > 0, got {max_demand_w}")
        self.n_units = n_units
        self.max_demand_w = float(max_demand_w)
        self.config = config or DemandEstimatorConfig()
        self._estimate = np.zeros(n_units, dtype=np.float64)

    @property
    def estimate(self) -> np.ndarray:
        """Current demand estimates (W), shape ``(n_units,)`` (read-only)."""
        view = self._estimate.view()
        view.flags.writeable = False
        return view

    def reset(self) -> None:
        """Forget all estimates."""
        self._estimate.fill(0.0)

    def snapshot(self) -> dict:
        """JSON-able document of the demand estimates."""
        return {"estimate": encode_array(self._estimate)}

    def restore(self, state: dict) -> None:
        """Overwrite the estimates with a snapshot's content."""
        estimate = decode_array(state["estimate"])
        if estimate.shape != (self.n_units,):
            raise ValueError(
                f"snapshot shape {estimate.shape} != ({self.n_units},)"
            )
        self._estimate[:] = estimate

    def update(self, power_w: np.ndarray, caps_w: np.ndarray) -> np.ndarray:
        """Advance the estimates one step.

        Args:
            power_w: (filtered) per-unit power readings (W).
            caps_w: caps in effect when those readings were taken (W).

        Returns:
            Updated estimates (W) — a copy.
        """
        power = np.asarray(power_w, dtype=np.float64)
        caps = np.asarray(caps_w, dtype=np.float64)
        if power.shape != (self.n_units,) or caps.shape != (self.n_units,):
            raise ValueError(
                f"power shape {power.shape} / caps shape {caps.shape} != "
                f"({self.n_units},)"
            )
        cfg = self.config
        pinned = power >= caps * cfg.pin_threshold

        est = self._estimate
        # Pinned: demand is at least the cap; probe upward from there.
        probe = np.maximum(est, caps) * cfg.probe_factor
        # Unpinned: demand is visible; relax toward it (never below it).
        relax = np.maximum(est + (power - est) * cfg.decay, power)
        est[:] = np.where(pinned, probe, relax)
        np.clip(est, 0.0, self.max_demand_w, out=est)
        return est.copy()

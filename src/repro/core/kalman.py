"""Vectorized 1-D Kalman filter bank (paper §4.3.2).

DPS treats each unit's true power draw as a hidden variable observed through
noisy RAPL readings.  The paper uses the standard scalar Kalman filter
formulation (Welch & Bishop) with a random-walk process model — the minimum
compute-load filter that still smooths measurement noise.  One filter runs
per power-capping unit; this implementation keeps all of them in flat NumPy
arrays so one control step is a handful of vector operations regardless of
cluster size (the §6.5 scaling claim).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import KalmanConfig
from repro.recovery.state import decode_array, encode_array

__all__ = ["KalmanBank"]


class KalmanBank:
    """A bank of independent scalar Kalman filters, one per unit.

    State per unit: estimate ``x`` (W) and estimation variance ``p`` (W²).
    The process model is a random walk (``x_t = x_{t-1} + w``,
    ``w ~ N(0, q)``); the measurement model is direct observation with noise
    variance ``r``.

    Args:
        n_units: number of filters in the bank.
        config: filter parameters; defaults follow :class:`KalmanConfig`.
    """

    def __init__(self, n_units: int, config: KalmanConfig | None = None) -> None:
        if n_units < 1:
            raise ValueError(f"n_units must be >= 1, got {n_units}")
        self.config = config or KalmanConfig()
        self.n_units = n_units
        self._x = np.zeros(n_units, dtype=np.float64)
        self._p = np.full(n_units, self.config.initial_var, dtype=np.float64)
        self._initialized = False

    @property
    def estimate(self) -> np.ndarray:
        """Current power estimates (W), shape ``(n_units,)`` (read-only view)."""
        view = self._x.view()
        view.flags.writeable = False
        return view

    @property
    def variance(self) -> np.ndarray:
        """Current estimation variances (W²), shape ``(n_units,)``."""
        view = self._p.view()
        view.flags.writeable = False
        return view

    def reset(self) -> None:
        """Forget all state; the next update re-initializes the estimates."""
        self._x.fill(0.0)
        self._p.fill(self.config.initial_var)
        self._initialized = False

    def snapshot(self) -> dict:
        """JSON-able document of the complete filter-bank state."""
        return {
            "x": encode_array(self._x),
            "p": encode_array(self._p),
            "initialized": self._initialized,
        }

    def restore(self, state: dict) -> None:
        """Overwrite the bank's state with a snapshot's content."""
        x = decode_array(state["x"])
        p = decode_array(state["p"])
        if x.shape != (self.n_units,) or p.shape != (self.n_units,):
            raise ValueError(
                f"snapshot shapes {x.shape}/{p.shape} != ({self.n_units},)"
            )
        self._x[:] = x
        self._p[:] = p
        self._initialized = bool(state["initialized"])

    def update(
        self, measurement: np.ndarray, *, validate: bool = True
    ) -> np.ndarray:
        """Advance every filter one step with the given measurements.

        The first update initializes each estimate directly from the
        measurement (with the configured initial variance) instead of
        filtering against the zero prior, so start-up transients do not
        leak into the power history.

        Args:
            measurement: observed powers (W), shape ``(n_units,)``.
            validate: check shape and finiteness of the measurement.  On
                by default for standalone use; callers that already
                validated at their own boundary (``PowerManager.step``
                scans every reading before ``_decide`` runs) pass False so
                the hot path does not re-scan the same vector twice per
                decision.

        Returns:
            Updated estimates (W), shape ``(n_units,)`` — a copy, safe to
            store in a history buffer.
        """
        z = np.asarray(measurement, dtype=np.float64)
        if validate:
            if z.shape != (self.n_units,):
                raise ValueError(
                    f"measurement shape {z.shape} != ({self.n_units},)"
                )
            if not np.all(np.isfinite(z)):
                raise ValueError("measurement contains non-finite values")

        if not self._initialized:
            self._x[:] = z
            self._p.fill(self.config.initial_var)
            self._initialized = True
            return self._x.copy()

        # Predict: random walk inflates uncertainty by the process variance.
        self._p += self.config.process_var
        # Update: standard scalar Kalman gain and correction, in place.
        gain = self._p / (self._p + self.config.measurement_var)
        self._x += gain * (z - self._x)
        self._p *= 1.0 - gain
        return self._x.copy()

"""Priority module (paper Algorithm 2).

Classifies every power-capping unit as high or low priority from the two
*power dynamics* features the paper identifies (§3.3):

* **Frequency** — units whose recent power history contains more than
  ``pp_threshold`` prominent peaks are high-frequency units.  They are pinned
  to high priority because the manager cannot react fast enough to their
  phase changes; treating them as always-hungry yields the constant-
  allocation lower bound (§4.4).  A high-frequency flag is only cleared when
  *both* the prominent-peak count and the history's standard deviation fall
  below their thresholds (the std check catches fast oscillation that the
  fixed-prominence peak counter misses).
* **First derivative** — for low-frequency units, a derivative above the
  positive threshold marks rising power (high priority: the unit needs power
  now or soon); below the negative threshold marks falling power (low
  priority).  In between, the previous priority is *kept*: a unit that rose
  stays high priority until its power actually falls again.

The flag logic exists in two bit-exact implementations selected by
``core``: the original per-unit walk (``"loop"``, the equivalence-test
oracle) and a boolean-mask pass (``"vectorized"``) expressing the same
set/clear/hysteresis transitions as a handful of whole-array operations —
the §6.5 "handful of vector operations regardless of cluster size" claim.
"""

from __future__ import annotations

import numpy as np

from repro.core import _native
from repro.core.config import PriorityConfig, _decision_core
from repro.core.peaks import count_prominent_peaks_multi, history_std
from repro.recovery.state import decode_array, encode_array

__all__ = ["PriorityModule"]


class PriorityModule:
    """Stateful high/low priority classifier for a bank of units.

    Args:
        n_units: number of units tracked.
        config: thresholds and window lengths.
        use_frequency: when False, skip high-frequency detection entirely
            (derivative-only classification; ablation 2 in DESIGN.md §5).
        core: ``"vectorized"`` (default) classifies with boolean masks;
            ``"loop"`` runs the per-unit oracle.  Bit-exact equivalents.
    """

    def __init__(
        self,
        n_units: int,
        config: PriorityConfig | None = None,
        use_frequency: bool = True,
        core: str = "vectorized",
    ) -> None:
        if n_units < 1:
            raise ValueError(f"n_units must be >= 1, got {n_units}")
        _decision_core("core", core)
        self.n_units = n_units
        self.config = config or PriorityConfig()
        self.use_frequency = use_frequency
        self.core = core
        self._high_freq = np.zeros(n_units, dtype=bool)
        self._priority = np.zeros(n_units, dtype=bool)
        # Per-step scratch: update() runs every control step on every unit,
        # so the feature vectors are written into preallocated buffers via
        # ufunc `out=` instead of being reallocated each call.
        self._pp = np.empty(n_units, dtype=np.intp)
        self._std = np.empty(n_units, dtype=np.float64)
        self._deriv = np.empty(n_units, dtype=np.float64)
        # Boolean-mask scratch for the vectorized classifier.
        self._mask_a = np.empty(n_units, dtype=bool)
        self._mask_b = np.empty(n_units, dtype=bool)
        self._mask_c = np.empty(n_units, dtype=bool)
        self._low = np.empty(n_units, dtype=bool)
        # (history_len, n_units) work arrays of the batched peak counter,
        # cached across steps once the history buffer reaches full length.
        self._peaks_scratch: dict = {}
        # Centered time basis for the least-squares slope; dt_s-independent
        # (the dt factor divides out at use time), so it can be precomputed.
        w = self.config.deriv_window
        self._t_base = np.arange(w, dtype=np.float64) - (w - 1) / 2
        self._t_sq = float((self._t_base * self._t_base).sum())

    @property
    def priority(self) -> np.ndarray:
        """Current priorities (True = high), shape ``(n_units,)`` (read-only)."""
        view = self._priority.view()
        view.flags.writeable = False
        return view

    @property
    def high_freq(self) -> np.ndarray:
        """Current high-frequency flags, shape ``(n_units,)`` (read-only)."""
        view = self._high_freq.view()
        view.flags.writeable = False
        return view

    def reset(self) -> None:
        """Clear all flags and priorities."""
        self._high_freq.fill(False)
        self._priority.fill(False)

    def snapshot(self) -> dict:
        """JSON-able document of the classifier flags."""
        return {
            "high_freq": encode_array(self._high_freq),
            "priority": encode_array(self._priority),
        }

    def restore(self, state: dict) -> None:
        """Overwrite the classifier flags with a snapshot's content."""
        high_freq = decode_array(state["high_freq"])
        priority = decode_array(state["priority"])
        if (
            high_freq.shape != (self.n_units,)
            or priority.shape != (self.n_units,)
        ):
            raise ValueError(
                f"snapshot shapes {high_freq.shape}/{priority.shape} != "
                f"({self.n_units},)"
            )
        self._high_freq[:] = high_freq
        self._priority[:] = priority

    def update(self, history: np.ndarray, dt_s: float) -> np.ndarray:
        """Reclassify all units from the latest power history.

        Args:
            history: estimated power history, shape ``(h, n_units)`` with the
                oldest sample first; ``h`` may be shorter than the configured
                history length during warm-up.  With fewer than
                ``deriv_window`` samples no classification happens and the
                previous priorities are kept (DPS's ~20 s deployment window,
                §6.5).
            dt_s: sampling period of the history (s).

        Returns:
            Copy of the updated priority array.
        """
        history = np.asarray(history, dtype=np.float64)
        if history.ndim != 2 or history.shape[1] != self.n_units:
            raise ValueError(
                f"history shape {history.shape} incompatible with "
                f"{self.n_units} units"
            )
        if dt_s <= 0:
            raise ValueError(f"dt_s must be > 0, got {dt_s}")
        h = history.shape[0]
        cfg = self.config
        if h < cfg.deriv_window:
            return self._priority.copy()

        # Batch the numeric features once per step into preallocated scratch
        # (the classifier pass below is pure flag logic).  The std is a
        # shared feature — same source for both cores (see history_std).
        if self.use_frequency:
            kernel = _native.peak_features()
            if (
                kernel is not None
                and self.core == "vectorized"
                and h <= _native.MAX_HISTORY
            ):
                # One fused cache-blocked pass for both features.
                kernel(history, cfg.peak_prominence, self._pp, self._std)
            else:
                count_prominent_peaks_multi(
                    history,
                    cfg.peak_prominence,
                    out=self._pp,
                    core=self.core,
                    scratch=self._peaks_scratch,
                )
                history_std(history, out=self._std)
        derivs = self._deriv
        if cfg.deriv_method == "lsq":
            # Least-squares slope over the window: averages noise across
            # every sample instead of the two endpoints.  With the centered
            # basis t = t_base * dt_s, slope = (t @ w) / sum(t^2)
            #                                = (t_base @ w) / (sum(t_base^2) * dt_s).
            window = history[-cfg.deriv_window :]
            np.matmul(self._t_base, window, out=derivs)
            derivs /= self._t_sq * dt_s
        else:
            span_s = (cfg.deriv_window - 1) * dt_s
            np.subtract(history[-1], history[-cfg.deriv_window], out=derivs)
            derivs /= span_s

        if self.core == "loop":
            self._classify_loop(derivs)
        else:
            self._classify_vectorized(derivs)
        return self._priority.copy()

    def _classify_loop(self, derivs: np.ndarray) -> None:
        """Per-unit flag walk (the equivalence-test oracle)."""
        cfg = self.config
        pp_counts = self._pp
        stds = self._std
        high_freq = self._high_freq
        priority = self._priority
        for u in range(self.n_units):
            if self.use_frequency:
                if not high_freq[u]:
                    if pp_counts[u] > cfg.pp_threshold:
                        high_freq[u] = True
                        priority[u] = True
                        continue
                else:
                    if (
                        pp_counts[u] < cfg.pp_threshold
                        and stds[u] < cfg.std_threshold
                    ):
                        high_freq[u] = False
                        priority[u] = False
                    # Either way a (former) high-frequency unit skips the
                    # derivative check this step (Algorithm 2 lines 10-15).
                    continue

            # Low-frequency unit: classify by the average first derivative
            # over the last `deriv_window` samples.
            if derivs[u] > cfg.deriv_inc_threshold:
                priority[u] = True
            elif derivs[u] < cfg.deriv_dec_threshold:
                priority[u] = False
            # Otherwise: keep the previous priority (hysteresis).

    def _classify_vectorized(self, derivs: np.ndarray) -> None:
        """Boolean-mask transcription of :meth:`_classify_loop`.

        All transitions are computed from the flags as they stood at entry
        (``elig`` is built before any mask is applied), so the pass is
        order-independent and bit-exact against the per-unit walk.
        """
        cfg = self.config
        high_freq = self._high_freq
        priority = self._priority
        elig = self._low  # Units that take the derivative branch.
        if self.use_frequency:
            set_m = self._mask_a
            clear_m = self._mask_b
            tmp = self._mask_c
            # Set: an unflagged unit whose prominent-peak count crosses the
            # threshold becomes high-frequency and is pinned high priority.
            np.greater(self._pp, cfg.pp_threshold, out=set_m)
            np.logical_not(high_freq, out=elig)
            set_m &= elig
            # Clear: a flagged unit drops the flag only when the peak count
            # and the history std are both under their thresholds.
            np.less(self._pp, cfg.pp_threshold, out=clear_m)
            np.less(self._std, cfg.std_threshold, out=tmp)
            clear_m &= tmp
            clear_m &= high_freq
            # Derivative branch: only units that entered the step unflagged
            # and stayed unflagged (Algorithm 2 lines 10-15 — a (former)
            # high-frequency unit skips the derivative check this step).
            np.logical_not(set_m, out=tmp)
            elig &= tmp
            high_freq |= set_m
            priority |= set_m
            np.logical_not(clear_m, out=tmp)
            high_freq &= tmp
            priority &= tmp
        else:
            elig.fill(True)

        # Derivative classification with hysteresis: rising units go high,
        # falling units go low, in-between keeps the previous priority.
        # The masks are disjoint (PriorityConfig validates inc_threshold > 0
        # > dec_threshold), so applying them in either order matches the
        # loop's if/elif.
        rise = self._mask_a
        np.greater(derivs, cfg.deriv_inc_threshold, out=rise)
        rise &= elig
        priority |= rise
        fall = self._mask_b
        np.less(derivs, cfg.deriv_dec_threshold, out=fall)
        fall &= elig
        np.logical_not(fall, out=self._mask_c)
        priority &= self._mask_c

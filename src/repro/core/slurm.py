"""Reimplementation of SLURM's power-management plugin (paper §2.3, [51]).

SLURM's plugin is the canonical *stateless model-free* manager: it keeps no
history and resets each unit's cap from the current power reading alone,
using the MIMD policy of :mod:`repro.core.stateless`.  It is the primary
competitor DPS is evaluated against; the path-dependent starvation the paper
illustrates in Figure 1 (a unit capped low during a quiet phase cannot
reclaim budget that another capped-out unit is holding) emerges from exactly
this logic.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import StatelessConfig, _decision_core
from repro.core.managers import PowerManager, register_manager
from repro.core.stateless import mimd_step

__all__ = ["SlurmManager"]


@register_manager
class SlurmManager(PowerManager):
    """Stateless MIMD manager mirroring the SLURM power plugin.

    Args:
        config: MIMD thresholds; defaults match the DPS stateless module so
            head-to-head comparisons isolate the value of power dynamics.
        decision_core: ``"vectorized"`` or ``"loop"`` MIMD increase pass
            (bit-exact equivalents; the loop is the test oracle).
    """

    name = "slurm"

    def __init__(
        self,
        config: StatelessConfig | None = None,
        decision_core: str = "vectorized",
    ) -> None:
        super().__init__()
        _decision_core("decision_core", decision_core)
        self.config = config or StatelessConfig()
        self.decision_core = decision_core
        self._mimd_scratch: dict = {}

    def _decide(
        self, power_w: np.ndarray, demand_w: np.ndarray | None
    ) -> np.ndarray:
        del demand_w
        result = mimd_step(
            power_w,
            self._caps,
            self.budget_w,
            self.max_cap_w,
            self.min_cap_w,
            self.config,
            self._rng,
            core=self.decision_core,
            scratch=self._mimd_scratch,
        )
        return result.caps

/* Per-column peak/std features for the vectorized DPS decision core.
 *
 * Compiled on demand by repro.core._native (cc -O3 -shared); the NumPy
 * fallback in repro.core.peaks implements the same algorithm when no C
 * compiler is available.
 *
 * Semantics are the `_count_walk` oracle in peaks.py: a candidate maximum
 * is strictly above its left neighbour and not below its right one; each
 * side's valley floor is the minimum up to (excluding) the nearest
 * strictly-higher sample; the candidate counts when
 * height - max(left_base, right_base) >= min_prominence.  All arithmetic
 * is plain IEEE double (no -ffast-math, contraction disabled by the build
 * flags), so counts are bit-exact against the Python oracle.
 *
 * Three departures from a naive transcription, all exactness-preserving,
 * keep the per-column cost down on a branch-predictor-hostile workload:
 *
 * - The candidate test runs branchlessly over the whole column first
 *   (plain `&` of both comparisons, accumulated into a 64-bit position
 *   mask -- REPRO_MAX_H <= 64 by design), so the per-position 50/50
 *   branch of the scalar walk never reaches the predictor.  Only real
 *   candidates enter the walk loop, via ctz over the mask.
 * - A valley walk stops early once the side's prominence condition
 *   fl(height - base) >= min_prominence becomes true: walking further can
 *   only sink the base, and IEEE subtraction is monotone in the
 *   subtrahend, so the verdict cannot flip back.  The exact base value is
 *   then irrelevant -- only the verdict feeds the count.
 * - Quiet columns are skipped outright: a peak's prominence is bounded by
 *   the column's total range (height <= max, base >= min), and fl() is
 *   monotone, so fl(max - min) < min_prominence proves the count is zero
 *   without walking.  The min/max come for free from the std pass.
 *
 * The standard deviation is the population std over each column,
 * sequential summation along the history axis (independent accumulator
 * chains across units vectorize; the per-column order matches the
 * sequential definition in peaks.history_std).
 *
 * Layout: x is the C-contiguous (h, n) history, row-major, column u =
 * unit u.  Units are processed in blocks of REPRO_BLOCK columns: the
 * sum/min/max and std passes stream the rows directly (accumulators
 * indexed by column vectorize), while the walk pass transposes the block
 * into a small column-contiguous stack buffer so the data-dependent walks
 * run on cache-resident contiguous doubles.
 */

#include <math.h>
#include <stdint.h>
#define REPRO_MAX_H 64
#define REPRO_BLOCK 128

void repro_peak_features(const double *x, long h, long n,
                         double min_prominence, long *pp_out,
                         double *std_out) {
    double buf[REPRO_BLOCK * REPRO_MAX_H];
    double s[REPRO_BLOCK], mn[REPRO_BLOCK], mx[REPRO_BLOCK];

    if (h < 1 || h > REPRO_MAX_H || n < 1)
        return;

    for (long b0 = 0; b0 < n; b0 += REPRO_BLOCK) {
        long bw = n - b0 < REPRO_BLOCK ? n - b0 : REPRO_BLOCK;

        /* Pass 1 (row-major, vectorizes across columns): per-column sum,
         * min, max. */
        {
            const double *row = x + b0;
            for (long c = 0; c < bw; c++) {
                s[c] = row[c];
                mn[c] = row[c];
                mx[c] = row[c];
            }
        }
        for (long i = 1; i < h; i++) {
            const double *row = x + i * n + b0;
            for (long c = 0; c < bw; c++) {
                double v = row[c];
                s[c] += v;
                mn[c] = v < mn[c] ? v : mn[c];
                mx[c] = v > mx[c] ? v : mx[c];
            }
        }

        if (std_out) {
            double v[REPRO_BLOCK], m[REPRO_BLOCK];
            for (long c = 0; c < bw; c++) {
                m[c] = s[c] / (double)h;
                v[c] = 0.0;
            }
            for (long i = 0; i < h; i++) {
                const double *row = x + i * n + b0;
                for (long c = 0; c < bw; c++) {
                    double d = row[c] - m[c];
                    v[c] += d * d;
                }
            }
            for (long c = 0; c < bw; c++)
                std_out[b0 + c] = sqrt(v[c] / (double)h);
        }

        if (!pp_out)
            continue;

        for (long i = 0; i < h; i++) {
            const double *row = x + i * n + b0;
            for (long c = 0; c < bw; c++)
                buf[c * h + i] = row[c];
        }

        for (long c = 0; c < bw; c++) {
            /* Quiet-column skip: every peak's prominence is bounded by the
             * column's total range, and fl() is monotone, so
             * fl(mx - mn) < T implies no peak can reach prominence T. */
            if (mx[c] - mn[c] < min_prominence) {
                pp_out[b0 + c] = 0;
                continue;
            }
            const double *col = buf + c * h;
            uint64_t cand = 0;
            for (long i = 1; i + 1 < h; i++) {
                uint64_t o = (uint64_t)((col[i] > col[i - 1]) &
                                        (col[i] >= col[i + 1]));
                cand |= o << i;
            }
            long count = 0;
            while (cand) {
                long i = (long)__builtin_ctzll(cand);
                cand &= cand - 1;
                double hi = col[i];
                double lb = hi;
                long j = i - 1;
                for (; j >= 0; j--) {
                    double v = col[j];
                    if ((v > hi) | (hi - lb >= min_prominence))
                        break;
                    lb = v < lb ? v : lb;
                }
                if (hi - lb < min_prominence)
                    continue;
                double rb = hi;
                j = i + 1;
                for (; j < h; j++) {
                    double v = col[j];
                    if ((v > hi) | (hi - rb >= min_prominence))
                        break;
                    rb = v < rb ? v : rb;
                }
                count += hi - rb >= min_prominence;
            }
            pp_out[b0 + c] = count;
        }
    }
}

"""Peer-to-peer power manager (Penelope-style, paper reference [43]).

Srivastava, Zhang & Hoffmann's Penelope decentralizes cluster power
management: no central controller holds the budget — nodes hold cap
*shares* that sum to the budget, and pairs of nodes trade power directly.
The paper cites it as the consistent-overhead alternative to centralized
designs; this reimplementation serves as another model-free baseline.

Each control step, every unit is randomly paired with one other unit (odd
one sits out).  Within a pair, the unit drawing close to its cap (the
*needy* side) takes power from a partner drawing well below its cap (the
*rich* side): the transfer is a fraction of the partner's measured slack,
bounded so the donor keeps a safety margin above its current draw.  The
invariant that the shares always sum to the initial budget makes budget
compliance structural rather than enforced.

Being pairwise and stateless, it reacts more slowly than a central MIMD
manager (one partner per step) but has no central bottleneck — the trade
the paper's §6.5 discussion hints at.
"""

from __future__ import annotations

import numpy as np

from repro.core.managers import PowerManager, register_manager

__all__ = ["P2PManager"]


@register_manager
class P2PManager(PowerManager):
    """Decentralized pairwise power-trading manager (registered as
    ``"p2p"``).

    Args:
        needy_threshold: fraction of its cap above which a unit asks for
            power.
        rich_threshold: fraction of its cap below which a unit may donate.
        trade_fraction: share of the donor's slack transferred per trade.
        donor_margin_w: power the donor always keeps above its current
            draw.
    """

    name = "p2p"

    def __init__(
        self,
        needy_threshold: float = 0.95,
        rich_threshold: float = 0.85,
        trade_fraction: float = 0.5,
        donor_margin_w: float = 5.0,
    ) -> None:
        super().__init__()
        if not 0 < rich_threshold < needy_threshold <= 1:
            raise ValueError(
                "need 0 < rich_threshold < needy_threshold <= 1, got "
                f"{rich_threshold}, {needy_threshold}"
            )
        if not 0 < trade_fraction <= 1:
            raise ValueError(
                f"trade_fraction must be in (0, 1], got {trade_fraction}"
            )
        if donor_margin_w < 0:
            raise ValueError(
                f"donor_margin_w must be >= 0, got {donor_margin_w}"
            )
        self.needy_threshold = needy_threshold
        self.rich_threshold = rich_threshold
        self.trade_fraction = trade_fraction
        self.donor_margin_w = donor_margin_w
        #: Trades executed since binding (overhead accounting).
        self.trades = 0

    def _on_bind(self) -> None:
        self.trades = 0

    def _snapshot_state(self) -> dict:
        return {"trades": self.trades}

    def _restore_state(self, state: dict) -> None:
        self.trades = int(state["trades"])

    def _decide(
        self, power_w: np.ndarray, demand_w: np.ndarray | None
    ) -> np.ndarray:
        del demand_w
        caps = self._caps.copy()
        order = self._rng.permutation(self.n_units)

        for k in range(0, self.n_units - 1, 2):
            a, b = int(order[k]), int(order[k + 1])
            needy, rich = None, None
            for u, v in ((a, b), (b, a)):
                if (
                    power_w[u] > caps[u] * self.needy_threshold
                    and power_w[v] < caps[v] * self.rich_threshold
                ):
                    needy, rich = u, v
                    break
            if needy is None or rich is None:
                continue
            slack = caps[rich] - max(
                power_w[rich] + self.donor_margin_w, self.min_cap_w
            )
            if slack <= 0:
                continue
            transfer = min(
                slack * self.trade_fraction,
                self.max_cap_w - caps[needy],
            )
            if transfer <= 0:
                continue
            caps[rich] -= transfer
            caps[needy] += transfer
            self.trades += 1

        return caps

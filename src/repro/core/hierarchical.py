"""Two-level hierarchical stateless manager (Argo-style, paper §2.3).

The Argo project's "conclave-node two-level stateless power management
system" [7-9, 34] is the other deployed model-free design the paper cites.
This reimplementation serves as an additional baseline:

* **level 1** splits the cluster budget among *groups* (nodes, or any
  partition) proportionally to each group's recent power draw, bounded so
  no group falls below an equal-share fraction ``min_group_share`` — the
  conclave-level reallocation;
* **level 2** runs the MIMD stateless allocator *within* each group on
  its sub-budget — the node-level controller.

Like all stateless designs it keeps no history beyond the current caps, so
it inherits the same starvation failure mode inside a group, but the
group-proportional level-1 split recovers some cross-group fairness.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import StatelessConfig
from repro.core.managers import PowerManager, register_manager
from repro.core.stateless import mimd_step

__all__ = ["HierarchicalManager"]


@register_manager
class HierarchicalManager(PowerManager):
    """Two-level (group, unit) stateless manager (registered as
    ``"hierarchical"``).

    Args:
        group_size: units per group (consecutive unit ids); the last group
            absorbs any remainder.  Defaults to 2 — one group per
            dual-socket node.
        config: MIMD parameters for the level-2 allocator.
        min_group_share: fraction of a group's equal share it is always
            guaranteed at level 1 (prevents a quiet group losing all
            headroom), in (0, 1].
    """

    name = "hierarchical"

    def __init__(
        self,
        group_size: int = 2,
        config: StatelessConfig | None = None,
        min_group_share: float = 0.5,
    ) -> None:
        super().__init__()
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        if not 0 < min_group_share <= 1:
            raise ValueError(
                f"min_group_share must be in (0, 1], got {min_group_share}"
            )
        self.group_size = group_size
        self.config = config or StatelessConfig()
        self.min_group_share = min_group_share
        self._groups: list[np.ndarray] = []

    def _on_bind(self) -> None:
        ids = np.arange(self.n_units)
        n_groups = max(self.n_units // self.group_size, 1)
        self._groups = [
            ids[g * self.group_size : (g + 1) * self.group_size]
            for g in range(n_groups - 1)
        ]
        self._groups.append(ids[(n_groups - 1) * self.group_size :])

    def _decide(
        self, power_w: np.ndarray, demand_w: np.ndarray | None
    ) -> np.ndarray:
        del demand_w
        n_groups = len(self._groups)
        group_power = np.asarray(
            [float(power_w[g].sum()) for g in self._groups]
        )
        group_units = np.asarray([g.size for g in self._groups], dtype=float)

        # Level 1: draw-proportional budgets with an equal-share floor.
        equal = self.budget_w * group_units / self.n_units
        floor = equal * self.min_group_share
        total_power = float(group_power.sum())
        if total_power <= 0:
            budgets = equal.copy()
        else:
            proportional = self.budget_w * group_power / total_power
            budgets = np.maximum(proportional, floor)
            # Renormalize the excess over the floors so the sum meets the
            # budget exactly.
            over = budgets - floor
            total_over = float(over.sum())
            spare = self.budget_w - float(floor.sum())
            if total_over > 0:
                budgets = floor + over * (spare / total_over)
        # A group's budget never exceeds what its units can absorb.
        budgets = np.minimum(budgets, group_units * self.max_cap_w)

        # Level 2: MIMD within each group on its sub-budget.
        caps = self._caps.copy()
        for g, group_budget in zip(self._groups, budgets):
            sub = mimd_step(
                power_w[g],
                caps[g],
                float(group_budget),
                self.max_cap_w,
                self.min_cap_w,
                self.config,
                self._rng,
            )
            caps[g] = sub.caps
            # When level 1 shrank this group's budget below its current
            # caps, scale the group down to its sub-budget.
            total = float(caps[g].sum())
            if total > group_budget:
                slack = caps[g] - self.min_cap_w
                total_slack = float(slack.sum())
                if total_slack > 0:
                    caps[g] -= slack * min(
                        1.0, (total - group_budget) / total_slack
                    )
        return caps

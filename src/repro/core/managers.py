"""Power-manager interface and registry.

Every cluster-level power manager in the paper — constant allocation, the
SLURM power plugin, the oracle, and DPS itself — implements the same tiny
contract: it is *bound* to a topology (number of units, cluster budget,
per-unit cap range, control period) and then *stepped* once per decision
loop with the latest per-unit power readings, returning the per-unit caps
for the next period.

The contract deliberately mirrors what the paper's server receives from its
clients (§4.3): power readings in, cap commands out, nothing else.  Only the
oracle additionally receives the true uncapped demand (it stands in for a
perfect model; see §5.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, ClassVar, Optional

import numpy as np

from repro.recovery.state import decode_array, encode_array, make_rng, rng_state

__all__ = ["PowerManager", "register_manager", "create_manager", "available_managers"]

#: Schema version of the manager snapshot document.
MANAGER_SNAPSHOT_VERSION = 1


class PowerManager(ABC):
    """Base class for cluster-level power managers.

    Subclasses implement :meth:`_decide`; the base class owns binding,
    input validation, and the cluster-budget invariant (the sum of the
    returned caps never exceeds the budget — the property the paper verifies
    for every manager in §6: "in all cases ... the power caps are respected").
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = ""
    #: True if :meth:`step` must be called with the true demand (oracle only).
    requires_demand: ClassVar[bool] = False

    def __init__(self) -> None:
        self._bound = False
        self.n_units = 0
        self.budget_w = 0.0
        self.max_cap_w = 0.0
        self.min_cap_w = 0.0
        self.dt_s = 1.0
        self._caps = np.empty(0, dtype=np.float64)
        self._rng: np.random.Generator = np.random.default_rng(0)
        #: Times the over-allocation rescale fired (0 for correct logic).
        self.budget_rescales = 0
        #: Observer of the over-allocation rescale, called as
        #: ``on_budget_rescaled(manager_name, overshoot_w)`` whenever the
        #: budget invariant has to scale a subclass's caps down.  The
        #: rescale used to be silent; hosts (deploy server, simulator)
        #: hook this to emit a ``budget_rescaled`` telemetry event.
        self.on_budget_rescaled: Optional[Callable[[str, float], None]] = None

    def bind(
        self,
        n_units: int,
        budget_w: float,
        max_cap_w: float,
        min_cap_w: float = 0.0,
        dt_s: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        """Attach the manager to a cluster topology and reset its state.

        Args:
            n_units: number of power-capping units.
            budget_w: cluster-wide power budget (W).
            max_cap_w: highest cap a unit accepts (TDP).
            min_cap_w: lowest cap a unit accepts.
            dt_s: control-loop period (s).
            rng: randomness source (the stateless module's random increase
                order); seeded externally for reproducibility.
        """
        if n_units < 1:
            raise ValueError(f"n_units must be >= 1, got {n_units}")
        if budget_w <= 0:
            raise ValueError(f"budget_w must be > 0, got {budget_w}")
        if max_cap_w <= 0:
            raise ValueError(f"max_cap_w must be > 0, got {max_cap_w}")
        if not 0 <= min_cap_w <= max_cap_w:
            raise ValueError(
                f"min_cap_w must be in [0, max_cap_w], got {min_cap_w}"
            )
        if n_units * min_cap_w > budget_w:
            raise ValueError(
                f"budget {budget_w} W cannot cover {n_units} units at the "
                f"minimum cap {min_cap_w} W"
            )
        if dt_s <= 0:
            raise ValueError(f"dt_s must be > 0, got {dt_s}")
        self.n_units = n_units
        self.budget_w = float(budget_w)
        self.max_cap_w = float(max_cap_w)
        self.min_cap_w = float(min_cap_w)
        self.dt_s = float(dt_s)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._caps = np.full(
            n_units,
            min(self.budget_w / n_units, self.max_cap_w),
            dtype=np.float64,
        )
        self.budget_rescales = 0
        self._bound = True
        self._on_bind()

    def _on_bind(self) -> None:
        """Hook for subclasses to (re)allocate per-unit state after binding."""

    def set_budget_w(self, budget_w: float) -> None:
        """Re-lease the cluster budget without resetting controller state.

        The sharded control plane renews a shard's budget lease every
        arbiter cycle; tearing the manager down with :meth:`bind` would
        discard filters and phase state, so this narrow mutation changes
        *only* the budget.  The base :meth:`step` budget invariant picks
        up the new value on the next cycle (any caps now over budget are
        rescaled down), and :attr:`initial_cap_w` is derived so it tracks
        automatically.

        Raises:
            ValueError: non-finite / non-positive budget, or one that
                cannot cover every unit at the minimum cap.
        """
        self._check_bound()
        budget = float(budget_w)
        if not np.isfinite(budget) or budget <= 0:
            raise ValueError(f"budget_w must be finite and > 0, got {budget}")
        if self.n_units * self.min_cap_w > budget:
            raise ValueError(
                f"budget {budget} W cannot cover {self.n_units} units at "
                f"the minimum cap {self.min_cap_w} W"
            )
        self.budget_w = budget

    @property
    def initial_cap_w(self) -> float:
        """The constant cap (budget evenly divided, clipped at TDP)."""
        self._check_bound()
        return min(self.budget_w / self.n_units, self.max_cap_w)

    @property
    def caps(self) -> np.ndarray:
        """Current per-unit caps (W), shape ``(n_units,)`` (read-only view)."""
        self._check_bound()
        view = self._caps.view()
        view.flags.writeable = False
        return view

    def step(
        self, power_w: np.ndarray, demand_w: np.ndarray | None = None
    ) -> np.ndarray:
        """Run one decision loop.

        Args:
            power_w: measured per-unit power (W), shape ``(n_units,)``.
            demand_w: true uncapped demand; only consumed when
                :attr:`requires_demand` is True, ignored otherwise.

        Returns:
            New per-unit caps (W), shape ``(n_units,)``.  Guaranteed to lie
            in ``[min_cap_w, max_cap_w]`` per unit and to sum to at most the
            cluster budget (within float tolerance).
        """
        self._check_bound()
        power = np.asarray(power_w, dtype=np.float64)
        if power.shape != (self.n_units,):
            raise ValueError(f"power shape {power.shape} != ({self.n_units},)")
        if not np.all(np.isfinite(power)):
            raise ValueError("power contains non-finite values")
        if self.requires_demand:
            if demand_w is None:
                raise ValueError(f"{self.name} requires the true demand")
            demand = np.asarray(demand_w, dtype=np.float64)
            if demand.shape != (self.n_units,):
                raise ValueError(
                    f"demand shape {demand.shape} != ({self.n_units},)"
                )
        else:
            demand = None

        caps = self._decide(power, demand)
        caps = np.clip(caps, self.min_cap_w, self.max_cap_w)
        # Budget invariant: scale down uniformly above the per-unit floor if
        # a subclass ever over-allocates (never triggers for correct logic,
        # but keeps the §6 cap-respecting guarantee unconditional).
        total = float(caps.sum())
        if total > self.budget_w * (1.0 + 1e-9):
            over = total - self.budget_w
            slack = caps - self.min_cap_w
            total_slack = float(slack.sum())
            if total_slack > 0:
                caps = caps - slack * min(1.0, over / total_slack)
            self.budget_rescales += 1
            if self.on_budget_rescaled is not None:
                self.on_budget_rescaled(self.name, over)
        self._caps = caps
        return caps.copy()

    @abstractmethod
    def _decide(
        self, power_w: np.ndarray, demand_w: np.ndarray | None
    ) -> np.ndarray:
        """Compute the next caps from validated inputs (subclass logic)."""

    # ------------------------------------------------------------------
    # Crash-recovery state protocol
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the complete mutable state as a JSON-able document.

        The document restores bit-exactly: a manager restored from it
        produces the same cap vectors an uninterrupted one would, given
        the same subsequent readings (including RNG-dependent decisions —
        the stream position travels with the snapshot).
        """
        self._check_bound()
        return {
            "manager": self.name,
            "version": MANAGER_SNAPSHOT_VERSION,
            "binding": {
                "n_units": self.n_units,
                "budget_w": self.budget_w,
                "max_cap_w": self.max_cap_w,
                "min_cap_w": self.min_cap_w,
                "dt_s": self.dt_s,
            },
            "caps": encode_array(self._caps),
            "rng": rng_state(self._rng),
            "state": self._snapshot_state(),
        }

    def restore(self, state: dict) -> None:
        """Overwrite this manager's state with a snapshot's content.

        Works on a fresh (never-bound) instance as well as a live one:
        the binding is re-established from the snapshot, then the RNG
        stream, caps, and subclass state are overwritten in that order —
        ``bind`` resets subclass state via ``_on_bind``, so everything
        snapshot-borne must land after it.

        Raises:
            ValueError: snapshot from a different manager type or an
                incompatible schema version.
        """
        if state.get("manager") != self.name:
            raise ValueError(
                f"snapshot is for manager {state.get('manager')!r}, "
                f"not {self.name!r}"
            )
        if state.get("version") != MANAGER_SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot schema version {state.get('version')!r} != "
                f"{MANAGER_SNAPSHOT_VERSION}"
            )
        b = state["binding"]
        self.bind(
            n_units=int(b["n_units"]),
            budget_w=float(b["budget_w"]),
            max_cap_w=float(b["max_cap_w"]),
            min_cap_w=float(b["min_cap_w"]),
            dt_s=float(b["dt_s"]),
            rng=np.random.default_rng(0),
        )
        self._rng = make_rng(state["rng"])
        caps = decode_array(state["caps"])
        if caps.shape != (self.n_units,):
            raise ValueError(
                f"snapshot caps shape {caps.shape} != ({self.n_units},)"
            )
        self._caps = caps
        self._restore_state(state["state"])

    def _snapshot_state(self) -> dict:
        """Subclass hook: serialize state beyond caps/binding/RNG."""
        return {}

    def _restore_state(self, state: dict) -> None:
        """Subclass hook: the inverse of :meth:`_snapshot_state`.

        Called after ``bind`` has rebuilt fresh components, so hooks only
        need to overwrite their contents.
        """
        del state

    def _check_bound(self) -> None:
        if not self._bound:
            raise RuntimeError(
                f"{type(self).__name__} must be bound to a cluster before use"
            )


_REGISTRY: dict[str, Callable[..., PowerManager]] = {}


def register_manager(cls: type[PowerManager]) -> type[PowerManager]:
    """Class decorator adding a manager to the name registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty `name`")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate manager name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def create_manager(name: str, **kwargs: object) -> PowerManager:
    """Instantiate a registered manager by name (e.g. ``"dps"``, ``"slurm"``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown manager {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_managers() -> tuple[str, ...]:
    """Names of all registered managers, sorted."""
    return tuple(sorted(_REGISTRY))

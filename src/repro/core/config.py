"""Configuration dataclasses for every DPS module and the simulation substrate.

All configs are frozen dataclasses so that experiment descriptions are
hashable, comparable, and safe to share between runs.  Every numeric default
follows the paper where the paper gives a value (history of 20 steps, 1 s
decision loop, 165 W TDP, 110 W constant cap, 66.7 % cluster budget); values
the paper leaves unspecified (MIMD thresholds, peak prominence) are chosen to
match the published qualitative behaviour and are exposed for ablation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


#: Implementations of the per-decision hot loops.  ``"vectorized"`` is the
#: production core (boolean-mask priority flags, column-parallel peak
#: counting, cumulative-sum MIMD admission); ``"loop"`` is the original
#: per-unit Python implementation, kept as the equivalence-test oracle.
DECISION_CORES = ("loop", "vectorized")


def _decision_core(name: str, value: str) -> None:
    if value not in DECISION_CORES:
        raise ValueError(
            f"{name} must be one of {DECISION_CORES}, got {value!r}"
        )


def _positive(name: str, value: float) -> None:
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def _fraction(name: str, value: float) -> None:
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")


@dataclass(frozen=True)
class StatelessConfig:
    """Parameters of the MIMD stateless allocator (paper Algorithm 1).

    The SLURM power plugin this module mirrors raises a unit's cap
    multiplicatively when the unit runs close to its cap and lowers it
    multiplicatively (or directly to the observed power) when the unit runs
    well below its cap.

    Attributes:
        inc_threshold: fraction of the current cap above which the unit is
            considered power-hungry and its cap is raised.
        dec_threshold: fraction of the current cap below which the unit is
            considered over-provisioned and its cap is lowered.
        inc_factor: multiplicative cap increase (> 1).
        dec_factor: multiplicative cap decrease (< 1).
    """

    inc_threshold: float = 0.95
    dec_threshold: float = 0.85
    inc_factor: float = 1.10
    dec_factor: float = 0.90

    def __post_init__(self) -> None:
        _fraction("inc_threshold", self.inc_threshold)
        _fraction("dec_threshold", self.dec_threshold)
        if self.dec_threshold >= self.inc_threshold:
            raise ValueError(
                "dec_threshold must be below inc_threshold "
                f"({self.dec_threshold} >= {self.inc_threshold})"
            )
        if self.inc_factor <= 1.0:
            raise ValueError(f"inc_factor must be > 1, got {self.inc_factor}")
        if not 0.0 < self.dec_factor < 1.0:
            raise ValueError(f"dec_factor must be in (0, 1), got {self.dec_factor}")


@dataclass(frozen=True)
class KalmanConfig:
    """Parameters of the per-unit 1-D Kalman filter (paper §4.3.2).

    Attributes:
        process_var: variance of the power random walk between steps (W²).
            Larger values track fast demand changes more aggressively.
        measurement_var: variance of the RAPL measurement noise (W²).
        initial_var: initial estimation uncertainty (W²).
    """

    process_var: float = 25.0
    measurement_var: float = 4.0
    initial_var: float = 100.0

    def __post_init__(self) -> None:
        _positive("process_var", self.process_var)
        _positive("measurement_var", self.measurement_var)
        _positive("initial_var", self.initial_var)


@dataclass(frozen=True)
class PriorityConfig:
    """Parameters of the priority module (paper Algorithm 2).

    Attributes:
        history_len: length of the estimated power history kept per unit
            (paper default: 20 steps).
        deriv_window: number of recent steps spanned by the first-derivative
            estimate (``direv_length`` in Algorithm 2).
        deriv_inc_threshold: derivative (W/s) above which a unit becomes
            high priority.  Must be small: a unit whose demand rises while
            it is capped can only show the few watts between its old power
            and its cap — the Kalman filter exists precisely so such small
            slopes are trustworthy despite measurement noise.
        deriv_dec_threshold: derivative (W/s) below which a unit becomes
            low priority (must be negative).
        peak_prominence: minimum prominence (W) for a local maximum in the
            power history to count as a *prominent peak*.
        pp_threshold: number of prominent peaks in the history above which
            the unit is flagged as a high-frequency unit.  A 20-step
            history spans at most ~2-3 peaks of a sub-10 s-period workload
            (the paper's LR), so the default is 1: two peaks in one window
            already mean the manager cannot track the phases.
        std_threshold: power-history standard deviation (W) that must also be
            undercut before a high-frequency flag is cleared.
        deriv_method: first-derivative estimator — ``"endpoints"`` is the
            paper's Algorithm 2 line 16 (last minus first over the window);
            ``"lsq"`` fits a least-squares slope over the window, which
            averages noise across every sample instead of just two.
    """

    history_len: int = 20
    deriv_window: int = 4
    deriv_inc_threshold: float = 1.8
    deriv_dec_threshold: float = -1.8
    deriv_method: str = "endpoints"
    peak_prominence: float = 20.0
    pp_threshold: int = 1
    std_threshold: float = 12.0

    def __post_init__(self) -> None:
        if self.history_len < 3:
            raise ValueError(f"history_len must be >= 3, got {self.history_len}")
        if not 2 <= self.deriv_window <= self.history_len:
            raise ValueError(
                "deriv_window must be in [2, history_len], got "
                f"{self.deriv_window} (history_len={self.history_len})"
            )
        _positive("deriv_inc_threshold", self.deriv_inc_threshold)
        if self.deriv_dec_threshold >= 0:
            raise ValueError(
                f"deriv_dec_threshold must be negative, got {self.deriv_dec_threshold}"
            )
        _positive("peak_prominence", self.peak_prominence)
        if self.pp_threshold < 1:
            raise ValueError(f"pp_threshold must be >= 1, got {self.pp_threshold}")
        _positive("std_threshold", self.std_threshold)
        if self.deriv_method not in ("endpoints", "lsq"):
            raise ValueError(
                "deriv_method must be 'endpoints' or 'lsq', got "
                f"{self.deriv_method!r}"
            )


@dataclass(frozen=True)
class ReadjustConfig:
    """Parameters of the cap-readjusting module (paper Algorithms 3-4).

    Attributes:
        restore_threshold: fraction of the constant (initial) cap; if *every*
            unit draws less than ``restore_threshold * initial_cap`` the caps
            of all units are restored to the constant cap (Algorithm 3).
        budget_epsilon: leftover budget (W) below which the budget is treated
            as exhausted and the equalize branch of Algorithm 4 runs.
    """

    restore_threshold: float = 0.80
    budget_epsilon: float = 1.0

    def __post_init__(self) -> None:
        _fraction("restore_threshold", self.restore_threshold)
        if self.budget_epsilon < 0:
            raise ValueError(f"budget_epsilon must be >= 0, got {self.budget_epsilon}")


@dataclass(frozen=True)
class DPSConfig:
    """Complete configuration of the DPS manager (paper §4).

    Composes the stateless, Kalman-filter, priority, and cap-readjusting
    module configurations, plus two switches used by the ablation benches.

    Attributes:
        use_kalman: feed the stateless and priority modules the Kalman
            estimate instead of the raw measurement (ablation 1 in DESIGN.md).
        use_frequency: enable high-frequency detection in the priority module
            (ablation 2); when False only the derivative classifies units.
        decision_core: ``"vectorized"`` (default) runs the array-native
            priority/peaks/MIMD hot paths; ``"loop"`` runs the per-unit
            oracle implementations.  Both are bit-exact equivalents (the
            Hypothesis suite in tests/core/test_decision_core.py enforces
            it), so the switch only trades decision latency.
    """

    stateless: StatelessConfig = field(default_factory=StatelessConfig)
    kalman: KalmanConfig = field(default_factory=KalmanConfig)
    priority: PriorityConfig = field(default_factory=PriorityConfig)
    readjust: ReadjustConfig = field(default_factory=ReadjustConfig)
    use_kalman: bool = True
    use_frequency: bool = True
    decision_core: str = "vectorized"

    def __post_init__(self) -> None:
        _decision_core("decision_core", self.decision_core)

    def replace(self, **changes: object) -> "DPSConfig":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ClusterSpec:
    """Topology and budget of the overprovisioned system (paper §5.1).

    Defaults model the Chameleon testbed: 10 client nodes, dual-socket
    Xeon Gold 6240 (TDP 165 W/socket), cluster-wide 66.7 % power limit,
    which yields the paper's 110 W/socket constant cap.

    Attributes:
        n_nodes: number of compute nodes.
        sockets_per_node: power-capping units per node.
        tdp_w: thermal design power of one unit (W) — the maximum cap.
        min_cap_w: lowest cap a unit accepts (RAPL lower clamp).
        budget_fraction: cluster budget as a fraction of aggregate TDP.
        idle_power_w: power drawn by a unit with no workload assigned.
    """

    n_nodes: int = 10
    sockets_per_node: int = 2
    tdp_w: float = 165.0
    min_cap_w: float = 30.0
    budget_fraction: float = 2.0 / 3.0
    idle_power_w: float = 12.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.sockets_per_node < 1:
            raise ValueError(
                f"sockets_per_node must be >= 1, got {self.sockets_per_node}"
            )
        _positive("tdp_w", self.tdp_w)
        _fraction("budget_fraction", self.budget_fraction)
        if not 0 <= self.min_cap_w < self.tdp_w:
            raise ValueError(
                f"min_cap_w must be in [0, tdp_w), got {self.min_cap_w}"
            )
        if not 0 <= self.idle_power_w < self.tdp_w:
            raise ValueError(
                f"idle_power_w must be in [0, tdp_w), got {self.idle_power_w}"
            )

    @property
    def n_units(self) -> int:
        """Total number of power-capping units in the cluster."""
        return self.n_nodes * self.sockets_per_node

    @property
    def budget_w(self) -> float:
        """Cluster-wide power budget in watts."""
        return self.n_units * self.tdp_w * self.budget_fraction

    @property
    def constant_cap_w(self) -> float:
        """Per-unit cap under constant allocation (budget evenly divided)."""
        return self.budget_w / self.n_units


@dataclass(frozen=True)
class PerfModelConfig:
    """Cap-to-performance model of a capped unit (DESIGN.md §2).

    When a unit's demand exceeds its cap, RAPL lowers frequency/voltage until
    the limit is met; performance then follows a concave function of the
    dynamic power.  We model the progress rate of a capped unit as::

        rate = ((cap - idle) / (demand - idle)) ** (1 / theta)

    clipped to ``[min_rate, 1]``.  ``theta = 2`` approximates the square-root
    performance/dynamic-power relationship of DVFS; ``theta = 1`` makes
    performance linear in power (harsher capping penalty).

    Attributes:
        idle_power_w: static power floor subtracted before scaling.
        theta: concavity of the power/performance curve (>= 1).
        min_rate: lower clamp on progress rate (a capped unit never stalls
            completely; there is always leakage-level forward progress).
    """

    idle_power_w: float = 12.0
    theta: float = 2.0
    min_rate: float = 0.05

    def __post_init__(self) -> None:
        if self.idle_power_w < 0:
            raise ValueError(f"idle_power_w must be >= 0, got {self.idle_power_w}")
        if self.theta < 1.0:
            raise ValueError(f"theta must be >= 1, got {self.theta}")
        if not 0 < self.min_rate <= 1:
            raise ValueError(f"min_rate must be in (0, 1], got {self.min_rate}")


@dataclass(frozen=True)
class RaplConfig:
    """Behaviour of the simulated RAPL domain (DESIGN.md §2, §6).

    Attributes:
        noise_std_w: standard deviation of the Gaussian measurement noise
            added when power is derived from the energy counter (W).
        lag_tau_s: time constant of the first-order lag with which true
            power approaches its target (demand clipped at cap).
        counter_wrap_uj: value at which the µJ energy counter wraps
            (``max_energy_range_uj`` in the sysfs powercap ABI).
    """

    noise_std_w: float = 1.5
    lag_tau_s: float = 0.8
    counter_wrap_uj: int = 262_143_328_850

    def __post_init__(self) -> None:
        if self.noise_std_w < 0:
            raise ValueError(f"noise_std_w must be >= 0, got {self.noise_std_w}")
        if self.lag_tau_s <= 0:
            raise ValueError(f"lag_tau_s must be > 0, got {self.lag_tau_s}")
        if self.counter_wrap_uj <= 0:
            raise ValueError(
                f"counter_wrap_uj must be > 0, got {self.counter_wrap_uj}"
            )


@dataclass(frozen=True)
class SimulationConfig:
    """Global knobs of the discrete-time engine.

    Attributes:
        dt_s: control-loop period (paper: 1 s decision loop).
        time_scale: multiplier applied to all workload durations; < 1 shrinks
            experiments while preserving phase structure and power-class
            fractions (DESIGN.md §2, last row).
        max_steps: hard step limit guarding against non-terminating runs.
        inter_run_gap_s: idle gap between back-to-back repeats of a workload
            (emulates job launch time; makes short NPB apps look phased,
            reproducing the §6.3 observation).
        duration_jitter_std: lognormal sigma of a per-run execution-speed
            factor, modelling the run-to-run Spark variance the paper
            repeats >= 10 times to average out (§6.1: runs "demonstrate
            such variable performance between different runs under the
            same execution condition").  Default 0 (deterministic runs);
            the variance bench enables it.
    """

    dt_s: float = 1.0
    time_scale: float = 1.0
    max_steps: int = 500_000
    inter_run_gap_s: float = 5.0
    duration_jitter_std: float = 0.0

    def __post_init__(self) -> None:
        _positive("dt_s", self.dt_s)
        _positive("time_scale", self.time_scale)
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {self.max_steps}")
        if self.inter_run_gap_s < 0:
            raise ValueError(
                f"inter_run_gap_s must be >= 0, got {self.inter_run_gap_s}"
            )
        if self.duration_jitter_std < 0:
            raise ValueError(
                "duration_jitter_std must be >= 0, got "
                f"{self.duration_jitter_std}"
            )

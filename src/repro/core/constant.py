"""Constant-allocation baseline (paper §2.1).

Divides the cluster budget evenly among all units once and never changes the
caps.  It trivially respects the budget, has zero operating overhead (no cap
commands are ever re-sent), and is the normalization baseline for every
performance figure in the paper (each socket gets a 110 W cap under the
default :class:`~repro.core.config.ClusterSpec`).
"""

from __future__ import annotations

import numpy as np

from repro.core.managers import PowerManager, register_manager

__all__ = ["ConstantManager"]


@register_manager
class ConstantManager(PowerManager):
    """Static equal-share power caps."""

    name = "constant"

    def _decide(
        self, power_w: np.ndarray, demand_w: np.ndarray | None
    ) -> np.ndarray:
        del power_w, demand_w
        return np.full(self.n_units, self.initial_cap_w, dtype=np.float64)

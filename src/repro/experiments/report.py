"""Markdown report generation from a finished campaign.

Turns a persisted :class:`~repro.experiments.campaign.CampaignResult` into
a self-contained markdown document: per-group manager summaries, the
fairness aggregates of §6.4, the best/worst pairs per manager, and a
terminal bar chart per group — the equivalent of the artifact's "plotting
scripts" stage, consumable without re-simulation.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.campaign import CampaignResult
from repro.experiments.charts import bar_chart
from repro.experiments.reporting import render_table

__all__ = ["campaign_report"]


def _group_chart(result: CampaignResult, group: str) -> str:
    records = result.for_group(group)
    managers = sorted({r.manager for r in records})
    labels = [group]
    series = {}
    for manager in managers:
        values = [
            r.hmean_speedup for r in records if r.manager == manager
        ]
        series[manager] = [float(np.mean(values))]
    return bar_chart(series, labels, width=40)


def campaign_report(result: CampaignResult) -> str:
    """Render a campaign as a markdown document.

    Raises:
        ValueError: the campaign holds no records.
    """
    if not result.records:
        raise ValueError("cannot report an empty campaign")

    groups = sorted({r.group for r in result.records})
    summary = result.summary()
    fairness = result.mean_fairness()

    lines = [
        "# Campaign report",
        "",
        f"- seed: {result.seed}",
        f"- time scale: {result.time_scale}",
        f"- records: {len(result.records)} "
        f"({len(groups)} group(s))",
        "",
    ]

    for group in groups:
        records = result.for_group(group)
        managers = sorted({r.manager for r in records})
        lines.append(f"## {group}")
        lines.append("")
        rows = []
        for manager in managers:
            stats = summary[(group, manager)]
            rows.append(
                [
                    manager,
                    f"{stats.hmean:.3f}",
                    f"{stats.min:.3f}",
                    f"{stats.max:.3f}",
                    str(stats.n),
                    f"{fairness[(group, manager)]:.3f}",
                ]
            )
        lines.append(
            render_table(
                ["manager", "hmean spd", "min", "max", "pairs",
                 "mean fairness"],
                rows,
            )
        )
        lines.append("")

        # Best and worst pairs per non-constant manager.
        for manager in managers:
            if manager == "constant":
                continue
            mgr_records = [r for r in records if r.manager == manager]
            best = max(mgr_records, key=lambda r: r.hmean_speedup)
            worst = min(mgr_records, key=lambda r: r.hmean_speedup)
            lines.append(
                f"- `{manager}` best pair: {best.workload_a}/"
                f"{best.workload_b} ({best.hmean_speedup:.3f}); worst: "
                f"{worst.workload_a}/{worst.workload_b} "
                f"({worst.hmean_speedup:.3f})"
            )
        lines.append("")
        lines.append("```")
        lines.append(_group_chart(result, group))
        lines.append("```")
        lines.append("")

    return "\n".join(lines)

"""Terminal chart rendering (the artifact's plotting scripts, text edition).

The artifact ships matplotlib scripts for every figure; this repo renders
the same data as Unicode terminal graphics so the figures are viewable in
any environment (including this one, which has no display):

* :func:`sparkline` — one-line power trace;
* :func:`line_chart` — multi-row time-series plot (Figure 2 style);
* :func:`bar_chart` — horizontal grouped bars for the speedup figures.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["sparkline", "line_chart", "bar_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float] | np.ndarray, width: int = 60) -> str:
    """One-line trace: values resampled to ``width`` block characters."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("cannot sparkline an empty series")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if v.size > width:
        idx = np.linspace(0, v.size - 1, width).astype(np.intp)
        v = v[idx]
    lo, hi = float(v.min()), float(v.max())
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[0] * v.size
    scaled = (v - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(s))] for s in scaled)


def line_chart(
    time_s: Sequence[float] | np.ndarray,
    values: Sequence[float] | np.ndarray,
    height: int = 10,
    width: int = 64,
    label: str = "",
) -> str:
    """Render a time series as a character grid with a y-axis.

    Args:
        time_s: sample times (only the ends are labelled).
        values: samples.
        height / width: grid size in characters.
        label: title line.

    Returns:
        Multi-line string.
    """
    t = np.asarray(time_s, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    if t.shape != v.shape or t.ndim != 1 or t.size == 0:
        raise ValueError("time and values must be equal non-empty 1-D arrays")
    if height < 2 or width < 8:
        raise ValueError("height must be >= 2 and width >= 8")
    if v.size > width:
        idx = np.linspace(0, v.size - 1, width).astype(np.intp)
        t, v = t[idx], v[idx]
    lo, hi = float(v.min()), float(v.max())
    span = max(hi - lo, 1e-12)
    rows = [[" "] * v.size for _ in range(height)]
    for x, val in enumerate(v):
        y = int(round((val - lo) / span * (height - 1)))
        rows[height - 1 - y][x] = "•"

    lines = []
    if label:
        lines.append(label)
    for r, row in enumerate(rows):
        y_val = hi - r * span / (height - 1)
        lines.append(f"{y_val:7.1f} ┤" + "".join(row))
    lines.append(
        " " * 8 + "└" + "─" * v.size
    )
    lines.append(f"{'':8s} {t[0]:<.0f}s{'':{max(v.size - 12, 1)}s}{t[-1]:.0f}s")
    return "\n".join(lines)


def bar_chart(
    series: Mapping[str, Sequence[float]],
    labels: Sequence[str],
    width: int = 40,
    baseline: float = 1.0,
    unit: str = "x",
) -> str:
    """Horizontal grouped bars around a baseline (speedup figures).

    Args:
        series: name → per-label values.
        labels: group labels, one per value.
        width: character width of the bar field.
        baseline: value rendered at the axis (1.0 for speedups).
        unit: suffix on the printed values.

    Returns:
        Multi-line string: one block per label, one bar per series.
    """
    if not series:
        raise ValueError("series must be non-empty")
    all_values = np.concatenate(
        [np.asarray(v, dtype=np.float64) for v in series.values()]
    )
    for name, vals in series.items():
        if len(vals) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(vals)} values for "
                f"{len(labels)} labels"
            )
    span = max(float(np.abs(all_values - baseline).max()), 1e-9)
    half = width // 2
    name_w = max(len(n) for n in series)
    lines = []
    for i, label in enumerate(labels):
        lines.append(f"{label}:")
        for name, vals in series.items():
            delta = float(vals[i]) - baseline
            n = int(round(abs(delta) / span * half))
            if delta >= 0:
                bar = " " * half + "│" + "█" * n + " " * (half - n)
            else:
                bar = " " * (half - n) + "█" * n + "│" + " " * half
            lines.append(
                f"  {name:<{name_w}s} {bar} {vals[i]:.3f}{unit}"
            )
    return "\n".join(lines)

"""Parallel experiment-execution engine with a persistent result cache.

The paper's evaluation is >1,000 machine-hours of (group x pair x manager)
runs; the reproduction's simulations are shared-nothing and deterministically
seeded, which makes a campaign embarrassingly parallel.  This engine is the
throughput layer every figure/table/campaign entry point sits on:

* :func:`job_digest` — content address of one simulation: SHA-256 over the
  frozen :class:`~repro.experiments.harness.ExperimentConfig`, the job's
  identity tokens, and the repro version.  Any knob that could change the
  simulation's output changes the digest.
* :class:`ResultCache` — an on-disk store of finished job payloads, one
  JSON record per digest, checksummed so corrupted or stale entries are
  detected and re-simulated rather than trusted.
* :class:`ExperimentEngine` — runs a :class:`~repro.experiments.jobs.JobGraph`
  wave by wave over a ``ProcessPoolExecutor`` with chunked dispatch,
  per-job wall timing, cache short-circuiting, and a progress/ETA callback.

Results are bit-identical to the sequential in-process path: every job
derives its own seed from the campaign seed (independent of scheduling),
payloads survive the JSON round trip exactly (Python serializes floats
shortest-round-trip), and consumers assemble records in deterministic
order regardless of completion order.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Union

from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentHarness,
    PairOutcome,
    ReferenceStats,
)
from repro.experiments.jobs import JobGraph, SimJob

__all__ = [
    "CACHE_FORMAT",
    "EngineTelemetry",
    "ExperimentEngine",
    "JobResult",
    "JobTiming",
    "ProgressFn",
    "ResultCache",
    "job_digest",
    "execute_job",
]

#: Format tag of one on-disk cache record.
CACHE_FORMAT = "repro-simcache-v1"

JobResult = Union[ReferenceStats, PairOutcome]

#: ``progress(done, total, job, wall_s, cached, eta_s)`` — invoked after
#: every finished job; ``eta_s`` extrapolates from mean wall time so far.
ProgressFn = Callable[[int, int, SimJob, float, bool, float], None]


# ---------------------------------------------------------------------------
# Cache keys and payload codec
# ---------------------------------------------------------------------------


def _canonical(doc: object) -> str:
    """Canonical JSON: sorted keys, no whitespace drift."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def job_digest(config: ExperimentConfig, job: SimJob) -> str:
    """Content address of one simulation under one campaign configuration.

    Covers the full frozen config (every cluster/sim/perf/rapl/manager
    knob plus seed and repeats), the job's identity tokens, and the repro
    package version — bumping the code that could change simulation output
    invalidates the cache wholesale, changing any config knob invalidates
    exactly the runs it affects.
    """
    from repro import __version__

    doc = {
        "repro": __version__,
        "config": asdict(config),
        "job": list(job.tokens),
    }
    return hashlib.sha256(_canonical(doc).encode()).hexdigest()


def encode_result(result: JobResult) -> dict:
    """JSON-able payload document of a job result."""
    if isinstance(result, ReferenceStats):
        return {"type": "reference", **asdict(result)}
    if isinstance(result, PairOutcome):
        doc = asdict(result)
        doc["times_a_s"] = list(result.times_a_s)
        doc["times_b_s"] = list(result.times_b_s)
        return {"type": "outcome", **doc}
    raise TypeError(f"unsupported result type {type(result).__name__}")


def decode_result(doc: dict) -> JobResult:
    """Inverse of :func:`encode_result` (bit-exact for floats)."""
    kind = doc.get("type")
    if kind == "reference":
        return ReferenceStats(
            mean_duration_s=float(doc["mean_duration_s"]),
            mean_power_w=float(doc["mean_power_w"]),
        )
    if kind == "outcome":
        return PairOutcome(
            manager=doc["manager"],
            workload_a=doc["workload_a"],
            workload_b=doc["workload_b"],
            times_a_s=tuple(float(t) for t in doc["times_a_s"]),
            times_b_s=tuple(float(t) for t in doc["times_b_s"]),
            power_a_w=float(doc["power_a_w"]),
            power_b_w=float(doc["power_b_w"]),
            max_caps_sum_w=float(doc["max_caps_sum_w"]),
            sim_time_s=float(doc["sim_time_s"]),
        )
    raise ValueError(f"unknown payload type {kind!r}")


# ---------------------------------------------------------------------------
# Persistent result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Directory of finished simulation results, keyed by job digest.

    Layout: one ``<digest>.json`` per job holding ``{format, digest, key,
    payload, payload_sha256}``.  ``key`` is the human-readable job key
    (provenance only).  A record is trusted only when its format tag,
    embedded digest, and payload checksum all verify; anything else counts
    as *invalid* and reads as a miss, so a corrupted or hand-edited entry
    is re-simulated, never silently served.

    Counters (``hits``/``misses``/``invalid``) accumulate over the cache
    object's lifetime; the engine folds them into its telemetry.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.invalid = 0

    def path(self, digest: str) -> Path:
        """On-disk location of one record."""
        return self.root / f"{digest}.json"

    def load(self, digest: str) -> dict | None:
        """Verified payload for ``digest``, or None (miss / invalid)."""
        path = self.path(digest)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self.invalid += 1
            return None
        payload = doc.get("payload")
        if (
            doc.get("format") != CACHE_FORMAT
            or doc.get("digest") != digest
            or not isinstance(payload, dict)
            or doc.get("payload_sha256")
            != hashlib.sha256(_canonical(payload).encode()).hexdigest()
        ):
            self.invalid += 1
            return None
        self.hits += 1
        return payload

    def store(self, digest: str, key: str, payload: dict) -> None:
        """Atomically persist one record (write-temp + rename)."""
        doc = {
            "format": CACHE_FORMAT,
            "digest": digest,
            "key": key,
            "payload": payload,
            "payload_sha256": hashlib.sha256(
                _canonical(payload).encode()
            ).hexdigest(),
        }
        path = self.path(digest)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, indent=1), encoding="utf-8")
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


# ---------------------------------------------------------------------------
# Engine telemetry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobTiming:
    """Wall time of one job (zero and ``cached=True`` for cache hits)."""

    key: str
    wall_s: float
    cached: bool

    def to_doc(self) -> dict:
        return {"key": self.key, "wall_s": self.wall_s, "cached": self.cached}

    @classmethod
    def from_doc(cls, doc: dict) -> "JobTiming":
        return cls(
            key=doc["key"],
            wall_s=float(doc["wall_s"]),
            cached=bool(doc["cached"]),
        )


@dataclass(frozen=True)
class EngineTelemetry:
    """What one engine run did: worker count, cache traffic, per-job walls.

    Attributes:
        workers: process-pool size used (1 = inline, no pool).
        n_jobs: total jobs in the deduplicated graph.
        cache_hits / cache_misses / cache_invalid: persistent-cache traffic
            of this run (all zero when no cache was attached).
        total_wall_s: end-to-end wall time of the engine run.
        job_timings: per-job wall time and cache provenance, graph order.
    """

    workers: int
    n_jobs: int
    cache_hits: int
    cache_misses: int
    cache_invalid: int
    total_wall_s: float
    job_timings: tuple[JobTiming, ...] = ()

    def to_doc(self) -> dict:
        doc = asdict(self)
        doc["job_timings"] = [t.to_doc() for t in self.job_timings]
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "EngineTelemetry":
        return cls(
            workers=int(doc["workers"]),
            n_jobs=int(doc["n_jobs"]),
            cache_hits=int(doc["cache_hits"]),
            cache_misses=int(doc["cache_misses"]),
            cache_invalid=int(doc["cache_invalid"]),
            total_wall_s=float(doc["total_wall_s"]),
            job_timings=tuple(
                JobTiming.from_doc(t) for t in doc.get("job_timings", ())
            ),
        )


# ---------------------------------------------------------------------------
# Job execution (worker side)
# ---------------------------------------------------------------------------


def execute_job(config: ExperimentConfig, job: SimJob) -> JobResult:
    """Run one job's simulation from scratch (no caches involved).

    Seeds derive from the campaign seed and the job's workload/manager
    names exactly as the sequential harness derives them, so the result is
    bit-identical to an in-process run regardless of worker or ordering.
    """
    harness = ExperimentHarness(config)
    if job.kind == "reference":
        return harness.uncapped_reference(job.workload_a)
    outcome = harness.run_pair(job.workload_a, job.workload_b, job.manager)
    assert isinstance(outcome, PairOutcome)
    return outcome


_WORKER_CONFIG: ExperimentConfig | None = None


def _pool_init(config: ExperimentConfig) -> None:
    """Pool initializer: ship the campaign config once per worker."""
    global _WORKER_CONFIG
    _WORKER_CONFIG = config


def _pool_run(job: SimJob) -> tuple[SimJob, dict, float]:
    """Worker entry: execute one job, return its encoded payload + wall."""
    assert _WORKER_CONFIG is not None, "pool initializer did not run"
    t0 = time.perf_counter()
    result = execute_job(_WORKER_CONFIG, job)
    return job, encode_result(result), time.perf_counter() - t0


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ExperimentEngine:
    """Fan a job graph out over worker processes, through the cache.

    Args:
        config: campaign configuration every job runs under.
        jobs: worker-process count; 1 executes inline (no pool, no pickle
            round trip) and is the bit-identity baseline the parallel path
            is tested against.
        cache: optional :class:`ResultCache`; hits skip simulation
            entirely, fresh results are persisted as soon as they arrive.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        jobs: int = 1,
        cache: ResultCache | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.config = config
        self.jobs = jobs
        self.cache = cache
        self.last_telemetry: EngineTelemetry | None = None
        self._pool: ProcessPoolExecutor | None = None

    def run(
        self,
        jobs: Iterable[SimJob],
        progress: ProgressFn | None = None,
    ) -> dict[SimJob, JobResult]:
        """Execute a job set; returns every job's result, cache-merged.

        Jobs are deduplicated, closed over prerequisites, topologically
        layered into waves, and each wave is dispatched in chunks over the
        pool.  Per-job wall times are measured inside the workers.
        """
        graph = JobGraph(jobs)
        total = len(graph)
        hits0, misses0, invalid0 = self._cache_counters()
        results: dict[SimJob, JobResult] = {}
        timings: dict[SimJob, JobTiming] = {}
        done = 0
        t_start = time.perf_counter()

        def _finish(job: SimJob, wall_s: float, cached: bool) -> None:
            nonlocal done
            done += 1
            timings[job] = JobTiming(job.key, wall_s, cached)
            if progress is not None:
                elapsed = time.perf_counter() - t_start
                eta = elapsed / done * (total - done) if done else 0.0
                progress(done, total, job, wall_s, cached, eta)

        try:
            for wave in graph.waves():
                pending: list[tuple[SimJob, str]] = []
                for job in wave:
                    digest = (
                        job_digest(self.config, job)
                        if self.cache is not None
                        else ""
                    )
                    payload = (
                        self.cache.load(digest)
                        if self.cache is not None
                        else None
                    )
                    if payload is not None:
                        try:
                            results[job] = decode_result(payload)
                        except (KeyError, ValueError, TypeError):
                            # Structurally valid record of the wrong shape
                            # (e.g. a hand-edited payload): re-simulate.
                            self.cache.invalid += 1
                            self.cache.hits -= 1
                            pending.append((job, digest))
                            continue
                        _finish(job, 0.0, cached=True)
                    else:
                        pending.append((job, digest))
                digests = dict(pending)
                for job, payload, wall_s in self._execute(list(digests)):
                    results[job] = decode_result(payload)
                    if self.cache is not None:
                        self.cache.store(digests[job], job.key, payload)
                    _finish(job, wall_s, cached=False)
        finally:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

        hits1, misses1, invalid1 = self._cache_counters()
        self.last_telemetry = EngineTelemetry(
            workers=self.jobs,
            n_jobs=total,
            cache_hits=hits1 - hits0,
            cache_misses=misses1 - misses0,
            cache_invalid=invalid1 - invalid0,
            total_wall_s=time.perf_counter() - t_start,
            job_timings=tuple(timings[j] for j in graph),
        )
        return results

    # ------------------------------------------------------------------

    def _cache_counters(self) -> tuple[int, int, int]:
        if self.cache is None:
            return (0, 0, 0)
        return (self.cache.hits, self.cache.misses, self.cache.invalid)

    def _execute(
        self, jobs: list[SimJob]
    ) -> Iterable[tuple[SimJob, dict, float]]:
        """Run one wave's uncached jobs, yielding in submission order."""
        if not jobs:
            return
        if self.jobs == 1 or (len(jobs) == 1 and self._pool is None):
            for job in jobs:
                t0 = time.perf_counter()
                result = execute_job(self.config, job)
                yield job, encode_result(result), time.perf_counter() - t0
            return
        # One pool serves every wave of the run (run() shuts it down):
        # respawning workers per wave would pay the fork + import cost at
        # each dependency barrier.
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_pool_init,
                initargs=(self.config,),
            )
        # Chunked dispatch: a handful of chunks per worker amortizes the
        # pickle/IPC round trip while keeping the tail balanced.
        chunksize = max(1, len(jobs) // (self.jobs * 4))
        yield from self._pool.map(_pool_run, jobs, chunksize=chunksize)

"""Parallel experiment-execution engine with a persistent result cache.

The paper's evaluation is >1,000 machine-hours of (group x pair x manager)
runs; the reproduction's simulations are shared-nothing and deterministically
seeded, which makes a campaign embarrassingly parallel.  This engine is the
throughput layer every figure/table/campaign entry point sits on:

* :func:`job_digest` — content address of one simulation: SHA-256 over the
  frozen :class:`~repro.experiments.harness.ExperimentConfig`, the job's
  identity tokens, and the repro version.  Any knob that could change the
  simulation's output changes the digest.
* :class:`ResultCache` — an on-disk store of finished job payloads, one
  JSON record per digest, checksummed so corrupted or stale entries are
  detected and re-simulated rather than trusted.
* :class:`ExecutionBackend` — the pluggable execution strategy one wave of
  uncached jobs runs on.  :class:`LocalPoolBackend` is the in-machine
  implementation (a ``ProcessPoolExecutor`` with chunked dispatch that
  survives a worker segfault by rebuilding the pool once);
  :class:`~repro.experiments.distributed.DistributedBackend` leases jobs
  to remote workers over TCP.
* :class:`ExperimentEngine` — runs a :class:`~repro.experiments.jobs.JobGraph`
  wave by wave over a backend with per-job wall timing, cache
  short-circuiting, and a progress/ETA callback.

Results are bit-identical to the sequential in-process path: every job
derives its own seed from the campaign seed (independent of scheduling),
payloads survive the JSON round trip exactly (Python serializes floats
shortest-round-trip), and consumers assemble records in deterministic
order regardless of completion order.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence, Union

from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentHarness,
    PairOutcome,
    ReferenceStats,
)
from repro.experiments.jobs import JobGraph, SimJob
from repro.telemetry.log import ResilienceEventLog

__all__ = [
    "CACHE_FORMAT",
    "EngineTelemetry",
    "ExecutionBackend",
    "ExperimentEngine",
    "JobResult",
    "JobTiming",
    "LocalPoolBackend",
    "ProgressFn",
    "ResultCache",
    "job_digest",
    "execute_job",
]

#: Format tag of one on-disk cache record.
CACHE_FORMAT = "repro-simcache-v1"

JobResult = Union[ReferenceStats, PairOutcome]

#: ``progress(done, total, job, wall_s, cached, eta_s)`` — invoked after
#: every finished job; ``eta_s`` extrapolates from mean wall time so far.
ProgressFn = Callable[[int, int, SimJob, float, bool, float], None]


# ---------------------------------------------------------------------------
# Cache keys and payload codec
# ---------------------------------------------------------------------------


def _canonical(doc: object) -> str:
    """Canonical JSON: sorted keys, no whitespace drift."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def job_digest(config: ExperimentConfig, job: SimJob) -> str:
    """Content address of one simulation under one campaign configuration.

    Covers the full frozen config (every cluster/sim/perf/rapl/manager
    knob plus seed and repeats), the job's identity tokens, and the repro
    package version — bumping the code that could change simulation output
    invalidates the cache wholesale, changing any config knob invalidates
    exactly the runs it affects.
    """
    from repro import __version__

    doc = {
        "repro": __version__,
        "config": asdict(config),
        "job": list(job.tokens),
    }
    return hashlib.sha256(_canonical(doc).encode()).hexdigest()


def encode_result(result: JobResult) -> dict:
    """JSON-able payload document of a job result."""
    if isinstance(result, ReferenceStats):
        return {"type": "reference", **asdict(result)}
    if isinstance(result, PairOutcome):
        doc = asdict(result)
        doc["times_a_s"] = list(result.times_a_s)
        doc["times_b_s"] = list(result.times_b_s)
        return {"type": "outcome", **doc}
    raise TypeError(f"unsupported result type {type(result).__name__}")


def decode_result(doc: dict) -> JobResult:
    """Inverse of :func:`encode_result` (bit-exact for floats)."""
    kind = doc.get("type")
    if kind == "reference":
        return ReferenceStats(
            mean_duration_s=float(doc["mean_duration_s"]),
            mean_power_w=float(doc["mean_power_w"]),
        )
    if kind == "outcome":
        return PairOutcome(
            manager=doc["manager"],
            workload_a=doc["workload_a"],
            workload_b=doc["workload_b"],
            times_a_s=tuple(float(t) for t in doc["times_a_s"]),
            times_b_s=tuple(float(t) for t in doc["times_b_s"]),
            power_a_w=float(doc["power_a_w"]),
            power_b_w=float(doc["power_b_w"]),
            max_caps_sum_w=float(doc["max_caps_sum_w"]),
            sim_time_s=float(doc["sim_time_s"]),
        )
    raise ValueError(f"unknown payload type {kind!r}")


# ---------------------------------------------------------------------------
# Persistent result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Directory of finished simulation results, keyed by job digest.

    Layout: one ``<digest>.json`` per job holding ``{format, digest, key,
    payload, payload_sha256}``.  ``key`` is the human-readable job key
    (provenance only).  A record is trusted only when its format tag,
    embedded digest, and payload checksum all verify; anything else counts
    as *invalid* and reads as a miss, so a corrupted or hand-edited entry
    is re-simulated, never silently served.

    Counters (``hits``/``misses``/``invalid``) accumulate over the cache
    object's lifetime; the engine folds them into its telemetry.
    """

    #: Distinguishes concurrent writers' temp files within one process;
    #: combined with the pid it makes every ``store()`` call's temp file
    #: unique, so same-digest racers never clobber each other's staging.
    _tmp_counter = itertools.count()

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.invalid = 0

    def path(self, digest: str) -> Path:
        """On-disk location of one record."""
        return self.root / f"{digest}.json"

    @staticmethod
    def _verified_payload(digest: str, doc: object) -> dict | None:
        """The payload of a record document iff it fully verifies."""
        if not isinstance(doc, dict):
            return None
        payload = doc.get("payload")
        if (
            doc.get("format") != CACHE_FORMAT
            or doc.get("digest") != digest
            or not isinstance(payload, dict)
            or doc.get("payload_sha256")
            != hashlib.sha256(_canonical(payload).encode()).hexdigest()
        ):
            return None
        return payload

    def load(self, digest: str) -> dict | None:
        """Verified payload for ``digest``, or None (miss / invalid)."""
        path = self.path(digest)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self.invalid += 1
            return None
        payload = self._verified_payload(digest, doc)
        if payload is None:
            self.invalid += 1
            return None
        self.hits += 1
        return payload

    def store(self, digest: str, key: str, payload: dict) -> None:
        """Atomically persist one record (write-temp + rename).

        Safe under concurrent same-digest writers (two workers finishing
        the same job): each call stages to its own unique temp file, and
        a failed final rename (Windows can refuse to replace a file
        another process holds open) is tolerated when a verified record
        for the digest survived — jobs are idempotent, so any writer's
        record is equivalent.  The temp file is removed on every path,
        including interrupts, so a killed run leaves no staging debris.
        """
        doc = {
            "format": CACHE_FORMAT,
            "digest": digest,
            "key": key,
            "payload": payload,
            "payload_sha256": hashlib.sha256(
                _canonical(payload).encode()
            ).hexdigest(),
        }
        path = self.path(digest)
        tmp = self.root / (
            f"{digest}.{os.getpid()}.{next(self._tmp_counter)}.tmp"
        )
        try:
            tmp.write_text(json.dumps(doc, indent=1), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            try:
                existing = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                existing = None
            if self._verified_payload(digest, existing) is None:
                raise
        finally:
            tmp.unlink(missing_ok=True)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


# ---------------------------------------------------------------------------
# Engine telemetry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobTiming:
    """Wall time of one job (zero and ``cached=True`` for cache hits)."""

    key: str
    wall_s: float
    cached: bool

    def to_doc(self) -> dict:
        return {"key": self.key, "wall_s": self.wall_s, "cached": self.cached}

    @classmethod
    def from_doc(cls, doc: dict) -> "JobTiming":
        return cls(
            key=doc["key"],
            wall_s=float(doc["wall_s"]),
            cached=bool(doc["cached"]),
        )


@dataclass(frozen=True)
class EngineTelemetry:
    """What one engine run did: worker count, cache traffic, per-job walls.

    Attributes:
        workers: execution parallelism — process-pool size for the local
            backend (1 = inline, no pool), configured worker count for
            the distributed backend.
        n_jobs: total jobs in the deduplicated graph.
        cache_hits / cache_misses / cache_invalid: persistent-cache traffic
            of this run (all zero when no cache was attached).
        total_wall_s: end-to-end wall time of the engine run.
        job_timings: per-job wall time and cache provenance, graph order.
        backend: label of the execution backend that ran the jobs
            (``"local"`` or ``"distributed"``).
    """

    workers: int
    n_jobs: int
    cache_hits: int
    cache_misses: int
    cache_invalid: int
    total_wall_s: float
    job_timings: tuple[JobTiming, ...] = ()
    backend: str = "local"

    def to_doc(self) -> dict:
        doc = asdict(self)
        doc["job_timings"] = [t.to_doc() for t in self.job_timings]
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "EngineTelemetry":
        return cls(
            workers=int(doc["workers"]),
            n_jobs=int(doc["n_jobs"]),
            cache_hits=int(doc["cache_hits"]),
            cache_misses=int(doc["cache_misses"]),
            cache_invalid=int(doc["cache_invalid"]),
            total_wall_s=float(doc["total_wall_s"]),
            job_timings=tuple(
                JobTiming.from_doc(t) for t in doc.get("job_timings", ())
            ),
            backend=str(doc.get("backend", "local")),
        )


# ---------------------------------------------------------------------------
# Job execution (worker side)
# ---------------------------------------------------------------------------


def execute_job(config: ExperimentConfig, job: SimJob) -> JobResult:
    """Run one job's simulation from scratch (no caches involved).

    Seeds derive from the campaign seed and the job's workload/manager
    names exactly as the sequential harness derives them, so the result is
    bit-identical to an in-process run regardless of worker or ordering.
    """
    harness = ExperimentHarness(config)
    if job.kind == "reference":
        return harness.uncapped_reference(job.workload_a)
    outcome = harness.run_pair(job.workload_a, job.workload_b, job.manager)
    assert isinstance(outcome, PairOutcome)
    return outcome


_WORKER_CONFIG: ExperimentConfig | None = None


def _pool_init(config: ExperimentConfig) -> None:
    """Pool initializer: ship the campaign config once per worker."""
    global _WORKER_CONFIG
    _WORKER_CONFIG = config


def _pool_run(job: SimJob) -> tuple[SimJob, dict, float]:
    """Worker entry: execute one job, return its encoded payload + wall."""
    assert _WORKER_CONFIG is not None, "pool initializer did not run"
    t0 = time.perf_counter()
    result = execute_job(_WORKER_CONFIG, job)
    return job, encode_result(result), time.perf_counter() - t0


# ---------------------------------------------------------------------------
# Execution backends
# ---------------------------------------------------------------------------


class ExecutionBackend:
    """Strategy interface: how one wave of uncached jobs gets executed.

    The engine owns *what* runs (graph, cache, telemetry assembly); a
    backend owns *where* it runs.  Contract:

    * :meth:`start` is called once per engine run, before the first wave,
      with the campaign configuration; backends must be restartable
      (``start`` after ``shutdown`` revives the backend), so one backend
      instance can serve several engine runs — e.g. every point of a
      sweep.
    * :meth:`execute` receives one wave's ``(job, digest)`` pairs and
      yields ``(job, encoded payload, wall seconds)`` in any order;
      results must be bit-identical to :func:`execute_job` run inline.
    * :meth:`shutdown` releases execution resources (idempotent); the
      engine calls it in a ``finally``, so an interrupted campaign never
      leaks worker processes.
    * ``events`` collects structured worker-lifecycle telemetry
      (:data:`~repro.telemetry.log.WORKER_EVENT_KINDS`) — no retry,
      re-dispatch, or degradation happens silently.
    """

    #: Telemetry label of this execution strategy.
    label = "?"

    events: ResilienceEventLog

    @property
    def workers(self) -> int:
        """Degree of parallelism, for telemetry."""
        raise NotImplementedError

    def start(self, config: ExperimentConfig) -> None:
        """Bind the backend to one campaign configuration."""
        raise NotImplementedError

    def execute(
        self, items: Sequence[tuple[SimJob, str]]
    ) -> Iterator[tuple[SimJob, dict, float]]:
        """Run one wave's uncached jobs; yield results as they finish."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release execution resources (idempotent, revivable)."""
        raise NotImplementedError


class LocalPoolBackend(ExecutionBackend):
    """In-machine execution over a reused ``ProcessPoolExecutor``.

    Args:
        jobs: worker-process count; 1 executes inline (no pool, no pickle
            round trip) and is the bit-identity baseline every other
            execution path is tested against.

    A worker process dying mid-wave (segfault, OOM kill) breaks the whole
    executor — ``BrokenProcessPool`` — and used to abort the campaign.
    The backend absorbs one such failure per wave: it reaps the broken
    pool, builds a fresh one, emits a ``pool_rebuilt`` event, and re-runs
    the wave's not-yet-delivered jobs (idempotent, so a re-run is safe).
    A second break in the same wave propagates — that is a systematically
    crashing job, not a flaky worker.
    """

    label = "local"

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.events = ResilienceEventLog()
        self._config: ExperimentConfig | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._t0 = time.monotonic()

    @property
    def workers(self) -> int:
        return self.jobs

    def start(self, config: ExperimentConfig) -> None:
        if self._config is not None and config != self._config:
            # The pool's initializer shipped the old config; a live pool
            # would run new jobs under it.
            self.shutdown()
        self._config = config

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        # One pool serves every wave of a run (the engine shuts it down):
        # respawning workers per wave would pay the fork + import cost at
        # each dependency barrier.
        if self._pool is None:
            assert self._config is not None, "start() was not called"
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_pool_init,
                initargs=(self._config,),
            )
        return self._pool

    def execute(
        self, items: Sequence[tuple[SimJob, str]]
    ) -> Iterator[tuple[SimJob, dict, float]]:
        jobs = [job for job, _ in items]
        if not jobs:
            return
        assert self._config is not None, "start() was not called"
        if self.jobs == 1 or (len(jobs) == 1 and self._pool is None):
            for job in jobs:
                t0 = time.perf_counter()
                result = execute_job(self._config, job)
                yield job, encode_result(result), time.perf_counter() - t0
            return
        remaining = jobs
        for attempt in (1, 2):
            pool = self._ensure_pool()
            # Chunked dispatch: a handful of chunks per worker amortizes
            # the pickle/IPC round trip while keeping the tail balanced.
            chunksize = max(1, len(remaining) // (self.jobs * 4))
            delivered = 0
            try:
                for out in pool.map(
                    _pool_run, remaining, chunksize=chunksize
                ):
                    delivered += 1
                    yield out
                return
            except BrokenProcessPool:
                self._pool = None
                pool.shutdown(wait=True, cancel_futures=True)
                remaining = remaining[delivered:]
                if attempt == 2:
                    raise
                self.events.emit(
                    time.monotonic() - self._t0,
                    "pool_rebuilt",
                    detail=(
                        f"worker process died; re-running "
                        f"{len(remaining)} undelivered job(s) on a "
                        "fresh pool"
                    ),
                )


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ExperimentEngine:
    """Fan a job graph out over an execution backend, through the cache.

    Args:
        config: campaign configuration every job runs under.
        jobs: worker-process count for the default local backend; 1
            executes inline (no pool, no pickle round trip) and is the
            bit-identity baseline the parallel paths are tested against.
            Ignored when ``backend`` is given.
        cache: optional :class:`ResultCache`; hits skip execution
            entirely, fresh results are persisted as soon as they arrive.
        backend: optional :class:`ExecutionBackend` replacing the local
            pool (e.g. a
            :class:`~repro.experiments.distributed.DistributedBackend`).
            The engine starts it per run and shuts it down afterwards;
            backends are restartable, so the same instance may serve
            several runs.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        jobs: int = 1,
        cache: ResultCache | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.config = config
        self.jobs = jobs
        self.cache = cache
        self.backend = backend if backend is not None else LocalPoolBackend(
            jobs
        )
        self.last_telemetry: EngineTelemetry | None = None

    @property
    def events(self) -> ResilienceEventLog:
        """The backend's structured worker-lifecycle event log."""
        return self.backend.events

    def run(
        self,
        jobs: Iterable[SimJob],
        progress: ProgressFn | None = None,
    ) -> dict[SimJob, JobResult]:
        """Execute a job set; returns every job's result, cache-merged.

        Jobs are deduplicated, closed over prerequisites, topologically
        layered into waves, and each wave's uncached jobs are handed to
        the execution backend.  Per-job wall times are measured where the
        job ran.
        """
        graph = JobGraph(jobs)
        total = len(graph)
        hits0, misses0, invalid0 = self._cache_counters()
        results: dict[SimJob, JobResult] = {}
        timings: dict[SimJob, JobTiming] = {}
        done = 0
        t_start = time.perf_counter()

        def _finish(job: SimJob, wall_s: float, cached: bool) -> None:
            nonlocal done
            done += 1
            timings[job] = JobTiming(job.key, wall_s, cached)
            if progress is not None:
                elapsed = time.perf_counter() - t_start
                eta = elapsed / done * (total - done) if done else 0.0
                progress(done, total, job, wall_s, cached, eta)

        self.backend.start(self.config)
        try:
            for wave in graph.waves():
                pending: list[tuple[SimJob, str]] = []
                for job in wave:
                    digest = job_digest(self.config, job)
                    payload = (
                        self.cache.load(digest)
                        if self.cache is not None
                        else None
                    )
                    if payload is not None:
                        try:
                            results[job] = decode_result(payload)
                        except (KeyError, ValueError, TypeError):
                            # Structurally valid record of the wrong shape
                            # (e.g. a hand-edited payload): re-simulate.
                            self.cache.invalid += 1
                            self.cache.hits -= 1
                            pending.append((job, digest))
                            continue
                        _finish(job, 0.0, cached=True)
                    else:
                        pending.append((job, digest))
                digests = dict(pending)
                for job, payload, wall_s in self.backend.execute(pending):
                    results[job] = decode_result(payload)
                    if self.cache is not None:
                        self.cache.store(digests[job], job.key, payload)
                    _finish(job, wall_s, cached=False)
        finally:
            self.backend.shutdown()

        hits1, misses1, invalid1 = self._cache_counters()
        self.last_telemetry = EngineTelemetry(
            workers=self.backend.workers,
            n_jobs=total,
            cache_hits=hits1 - hits0,
            cache_misses=misses1 - misses0,
            cache_invalid=invalid1 - invalid0,
            total_wall_s=time.perf_counter() - t_start,
            job_timings=tuple(timings[j] for j in graph),
            backend=self.backend.label,
        )
        return results

    # ------------------------------------------------------------------

    def _cache_counters(self) -> tuple[int, int, int]:
        if self.cache is None:
            return (0, 0, 0)
        return (self.cache.hits, self.cache.misses, self.cache.invalid)

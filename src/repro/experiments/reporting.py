"""Plain-text rendering of figure/table data (the artifact's plot scripts,
terminal edition)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.figures import Figure1Data, Figure7Data, FigureBars
from repro.experiments.tables import OverheadRow, WorkloadRow

__all__ = [
    "render_table",
    "render_bars",
    "render_figure1",
    "render_figure7",
    "render_workload_rows",
    "render_overhead_rows",
]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_bars(data: FigureBars, title: str) -> str:
    """Render a grouped-bar figure as a speedup table (percent gains)."""
    headers = ["workload"] + [f"{m} gain %" for m in data.series]
    rows = []
    for i, label in enumerate(data.labels):
        rows.append(
            [label]
            + [f"{(data.series[m][i] - 1) * 100:+.1f}" for m in data.series]
        )
    return f"{title}\n{render_table(headers, rows)}"


def render_figure1(data: Figure1Data) -> str:
    """Render the motivational example's cap schedules."""
    lines = [f"Figure 1 (budget = {data.budget_w:.0f} W)"]
    demand_rows = [
        ["demand"]
        + [f"{data.demand[t, 0]:.0f}/{data.demand[t, 1]:.0f}" for t in data.timesteps]
    ]
    for name, caps in data.caps.items():
        demand_rows.append(
            [name]
            + [f"{caps[t, 0]:.0f}/{caps[t, 1]:.0f}" for t in data.timesteps]
        )
    headers = ["system (node0/node1 W)"] + [f"T{t}" for t in data.timesteps]
    lines.append(render_table(headers, demand_rows))
    return "\n".join(lines)


def render_figure7(data: Figure7Data) -> str:
    """Render the fairness comparison with distribution quartiles (the
    paper plots the per-workload fairness distribution as boxes)."""
    headers = [
        "manager", "mean fairness", "min", "p25", "median", "p75", "max",
        "corr(fair, perf)",
    ]
    rows = []
    for m, values in data.fairness.items():
        arr = np.asarray(values)
        q25, q50, q75 = np.quantile(arr, [0.25, 0.5, 0.75])
        rows.append(
            [
                m,
                f"{data.mean_fairness[m]:.3f}",
                f"{arr.min():.3f}",
                f"{q25:.3f}",
                f"{q50:.3f}",
                f"{q75:.3f}",
                f"{arr.max():.3f}",
                f"{data.correlation[m]:+.2f}",
            ]
        )
    return "Figure 7 — fairness\n" + render_table(headers, rows)


def render_workload_rows(rows: list[WorkloadRow], title: str) -> str:
    """Render a Table 2/4 comparison of paper vs measured values."""
    headers = [
        "workload",
        "class",
        "data size",
        "paper dur (s)",
        "measured dur (s)",
        "paper >110W %",
        "measured >110W %",
    ]
    body = [
        [
            r.name,
            r.power_class,
            r.data_size,
            f"{r.paper_duration_s:.0f}",
            f"{r.measured_duration_s:.0f}",
            f"{r.paper_above_110_pct:.1f}",
            f"{r.measured_above_110_pct:.1f}",
        ]
        for r in rows
    ]
    return f"{title}\n{render_table(headers, body)}"


def render_overhead_rows(rows: list[OverheadRow]) -> str:
    """Render the §6.5 overhead/scaling table."""
    headers = [
        "nodes",
        "units",
        "bytes/cycle",
        "network (ms)",
        "compute (ms)",
        "turnaround (ms)",
        "source",
    ]
    body = [
        [
            f"{r.n_nodes:,}",
            f"{r.n_units:,}",
            f"{r.bytes_per_cycle:,}",
            f"{r.network_s * 1e3:.3f}",
            f"{r.compute_s * 1e3:.3f}",
            f"{r.turnaround_s * 1e3:.3f}",
            "projected" if r.projected else "measured",
        ]
        for r in rows
    ]
    return "Overhead analysis (§6.5)\n" + render_table(headers, body)

"""Data generators for the paper's tables and the §6.5 overhead analysis."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.simulator import Assignment, Simulation
from repro.comm.network import NetworkModel
from repro.comm.protocol import MESSAGE_SIZE_BYTES
from repro.comm.service import PowerClient, PowerServer
from repro.core.config import ClusterSpec
from repro.experiments.harness import ExperimentConfig
from repro.workloads.registry import get_workload, workload_names

__all__ = [
    "WorkloadRow",
    "OverheadRow",
    "table2",
    "table3",
    "table4",
    "overhead_analysis",
]


@dataclass(frozen=True)
class WorkloadRow:
    """One row of Table 2 or Table 4: paper values beside measured ones.

    Attributes:
        name: workload name.
        power_class: Table 2 label (or ``npb``).
        data_size: the paper's input-size string.
        paper_duration_s: published constant-cap latency.
        measured_duration_s: simulated constant-cap latency, rescaled to
            full time scale.
        paper_above_110_pct: published time fraction above 110 W.
        measured_above_110_pct: the program's uncapped fraction above 110 W.
    """

    name: str
    power_class: str
    data_size: str
    paper_duration_s: float
    measured_duration_s: float
    paper_above_110_pct: float
    measured_above_110_pct: float


def _constant_cap_duration(name: str, config: ExperimentConfig) -> float:
    """Solo constant-cap run of one workload, full-scale seconds."""
    cluster = Cluster(config.cluster)
    sim = Simulation(
        cluster_spec=config.cluster,
        manager=config.make_manager("constant"),
        assignments=[
            Assignment(
                spec=get_workload(name), unit_ids=cluster.half_unit_ids(0)
            )
        ],
        target_runs=config.repeats,
        sim_config=config.sim,
        perf_config=config.perf,
        rapl_config=config.rapl,
        seed=config.derive_seed("table", name),
    )
    result = sim.run()
    if result.truncated:
        raise RuntimeError(f"constant-cap run of {name} truncated")
    mean = result.execution(name).mean_duration_s()
    return mean / config.sim.time_scale


def _workload_rows(names: list[str], config: ExperimentConfig) -> list[WorkloadRow]:
    rows = []
    for name in names:
        spec = get_workload(name)
        rows.append(
            WorkloadRow(
                name=name,
                power_class=spec.power_class,
                data_size=spec.data_size,
                paper_duration_s=spec.paper_duration_s,
                measured_duration_s=_constant_cap_duration(name, config),
                paper_above_110_pct=spec.paper_above_110_pct,
                measured_above_110_pct=spec.program.fraction_above(110.0) * 100,
            )
        )
    return rows


def table2(config: ExperimentConfig | None = None) -> list[WorkloadRow]:
    """Table 2: the 11 Spark workloads under the constant 110 W cap."""
    return _workload_rows(
        workload_names(suite="spark"), config or ExperimentConfig()
    )


def table3() -> list[tuple[str, int, int]]:
    """Table 3: Spark computing resources (power class, executors, cores)."""
    from repro.workloads.registry import executor_config

    return [
        (cls, *executor_config(cls)) for cls in ("low", "mid", "high")
    ]


def table4(config: ExperimentConfig | None = None) -> list[WorkloadRow]:
    """Table 4: the 8 NPB workloads under the constant 110 W cap."""
    return _workload_rows(
        workload_names(suite="npb"), config or ExperimentConfig()
    )


# ---------------------------------------------------------------------------
# §6.5 overhead analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OverheadRow:
    """Measured/projected control-plane cost at one cluster size.

    Attributes:
        n_nodes: nodes in the deployment.
        n_units: power-capping units.
        bytes_per_cycle: protocol traffic per decision loop (up + down).
        network_s: per-cycle network turnaround (slowest client).
        compute_s: per-cycle controller decision time.
        turnaround_s: total cycle latency.
        projected: True when extrapolated from the measured per-unit costs
            instead of simulated directly.
    """

    n_nodes: int
    n_units: int
    bytes_per_cycle: int
    network_s: float
    compute_s: float
    turnaround_s: float
    projected: bool


def overhead_analysis(
    measured_nodes: int = 10,
    projected_nodes: tuple[int, ...] = (100, 1_000, 10_000, 1_000_000),
    cycles: int = 30,
    manager_name: str = "dps",
    config: ExperimentConfig | None = None,
) -> list[OverheadRow]:
    """Reproduce the §6.5 overhead analysis.

    Runs a real server/client message loop (3-byte protocol over the
    latency-modelled network) at ``measured_nodes`` nodes, then projects the
    measured per-unit costs to larger deployments exactly the way the paper
    argues its scaling (serial per-message latency on the server NIC,
    linear controller compute).

    Returns:
        One row per cluster size, measured first.
    """
    cfg = config or ExperimentConfig()
    spec = ClusterSpec(
        n_nodes=measured_nodes,
        sockets_per_node=cfg.cluster.sockets_per_node,
        tdp_w=cfg.cluster.tdp_w,
        min_cap_w=cfg.cluster.min_cap_w,
        budget_fraction=cfg.cluster.budget_fraction,
        idle_power_w=cfg.cluster.idle_power_w,
    )
    cluster = Cluster(spec, cfg.rapl, np.random.default_rng(cfg.seed))
    manager = cfg.make_manager(manager_name)
    manager.bind(
        n_units=spec.n_units,
        budget_w=spec.budget_w,
        max_cap_w=spec.tdp_w,
        min_cap_w=spec.min_cap_w,
        dt_s=cfg.sim.dt_s,
        rng=np.random.default_rng(cfg.derive_seed("overhead")),
    )
    network = NetworkModel()
    server = PowerServer(
        manager, [PowerClient(node) for node in cluster.nodes], network
    )

    rng = np.random.default_rng(cfg.derive_seed("overhead", "demand"))
    reports = []
    for _ in range(cycles):
        demand = rng.uniform(40.0, 160.0, size=spec.n_units)
        cluster.step_physics(demand, cfg.sim.dt_s)
        reports.append(server.control_cycle(cfg.sim.dt_s))

    bytes_per_cycle = int(
        np.mean([r.bytes_up + r.bytes_down for r in reports])
    )
    network_s = float(np.mean([r.network_s for r in reports]))
    compute_s = float(np.median([r.compute_s for r in reports]))
    rows = [
        OverheadRow(
            n_nodes=measured_nodes,
            n_units=spec.n_units,
            bytes_per_cycle=bytes_per_cycle,
            network_s=network_s,
            compute_s=compute_s,
            turnaround_s=network_s + compute_s,
            projected=False,
        )
    ]

    # Projection (the paper's §6.5 argument): propagation overlaps and is
    # paid once per direction; controller-side message handling and wire
    # bytes serialize, so they and the decision compute scale linearly.
    per_unit_net = 2 * (
        network.server_per_message_s
        + MESSAGE_SIZE_BYTES / network.bandwidth_bytes_per_s
    )
    per_unit_compute = compute_s / spec.n_units
    for n_nodes in projected_nodes:
        n_units = n_nodes * spec.sockets_per_node
        proj_net = 2 * network.propagation_s() + per_unit_net * n_units
        proj_compute = per_unit_compute * n_units
        rows.append(
            OverheadRow(
                n_nodes=n_nodes,
                n_units=n_units,
                bytes_per_cycle=n_units * MESSAGE_SIZE_BYTES * 2,
                network_s=proj_net,
                compute_s=proj_compute,
                turnaround_s=proj_net + proj_compute,
                projected=True,
            )
        )
    return rows


def _mixed_cluster_power(
    rng: np.random.Generator, n_units: int, t: int
) -> np.ndarray:
    """One sampling step of the overprovisioned-cluster power profile.

    The scaling benchmark's canonical workload: 40 % of units idle around
    45 W, 35 % run steady compute phases around 110 W, and 25 % are bursty
    — large phase swings plus heavy noise.  This is the population the
    paper overprovisions against (most units are *not* at peak at any
    instant); it exercises every decision-path branch while keeping the
    per-unit dynamics realistic, unlike an all-units-chaotic i.i.d. draw.
    """
    base = np.empty(n_units)
    i1 = int(0.40 * n_units)
    i2 = int(0.75 * n_units)
    base[:i1] = 45.0
    base[i1:i2] = 110.0
    base[i2:] = 80.0 + 70.0 * np.sin(
        0.3 * t + np.linspace(0.0, 2.0 * np.pi, n_units - i2)
    )
    noise = np.empty(n_units)
    noise[:i1] = rng.normal(0.0, 1.5, i1)
    noise[i1:i2] = rng.normal(0.0, 3.0, i2 - i1)
    noise[i2:] = rng.normal(0.0, 12.0, n_units - i2)
    return np.clip(base + noise, 5.0, 165.0)


def _set_decision_core(manager, core: str) -> None:
    """Force a manager's decision core before it is bound."""
    if hasattr(manager, "decision_core"):
        manager.decision_core = core
    elif hasattr(manager.config, "decision_core"):
        manager.config = manager.config.replace(decision_core=core)
    else:
        raise ValueError(
            f"manager {type(manager).__name__} has no decision core switch"
        )


def measure_decision_time(
    manager_name: str = "dps",
    n_units: int = 20,
    steps: int = 200,
    config: ExperimentConfig | None = None,
    decision_core: str | None = None,
    workload: str = "uniform",
    warmup: int = 0,
) -> float:
    """Median wall time of one bare manager decision (no network).

    Used by the overhead bench to separate controller compute from
    messaging cost, and by the scaling bench to compare the loop and
    vectorized decision cores.

    Args:
        manager_name: registry name of the manager under test.
        n_units: cluster size in power-capping units.
        steps: timed decision steps (the median is over these).
        config: campaign configuration the manager is built from.
        decision_core: override the manager's decision core
          (``"loop"``/``"vectorized"``); ``None`` keeps the config default.
        workload: per-step power draw — ``"uniform"`` (i.i.d. 40–160 W,
          every unit chaotic; a stress profile) or ``"mixed"`` (the
          overprovisioned-cluster profile of :func:`_mixed_cluster_power`).
        warmup: untimed steps run first, so the median measures the
          steady state (history full, flags settled) rather than the
          cheaper warm-up transient.
    """
    if workload not in ("uniform", "mixed"):
        raise ValueError(f"unknown workload {workload!r}")
    cfg = config or ExperimentConfig()
    manager = cfg.make_manager(manager_name)
    if decision_core is not None:
        _set_decision_core(manager, decision_core)
    manager.bind(
        n_units=n_units,
        budget_w=110.0 * n_units,
        max_cap_w=165.0,
        min_cap_w=30.0,
        dt_s=1.0,
        rng=np.random.default_rng(0),
    )
    rng = np.random.default_rng(1)
    times = []
    for t in range(warmup + steps):
        if workload == "mixed":
            power = _mixed_cluster_power(rng, n_units, t)
        else:
            power = rng.uniform(40.0, 160.0, size=n_units)
        started = time.perf_counter()
        manager.step(power, power if manager.requires_demand else None)
        if t >= warmup:
            times.append(time.perf_counter() - started)
    return float(np.median(times))

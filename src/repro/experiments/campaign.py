"""Campaign runner: execute whole benchmark groups and persist results.

This is the reproduction of the artifact's ``run_experiment.sh``: it runs
every workload pair of the selected §5.2 groups under each group's
managers, normalizes against the constant-allocation baseline, and collects
one flat record per (group, pair, manager) — serializable to JSON so the
figure generators and external analysis can consume a finished campaign
without re-simulating.

Execution goes through the parallel engine
(:mod:`repro.experiments.engine`): the campaign is enumerated as a
deduplicated :class:`~repro.experiments.jobs.SimJob` graph (shared
references and baselines run once), fanned out over ``jobs`` worker
processes wave by wave, and optionally backed by a persistent result
cache.  Records are assembled in deterministic nested-loop order from the
result map, so parallel and sequential runs are bit-identical.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.experiments.harness import ExperimentConfig, evaluate_outcome
from repro.experiments.jobs import (
    SimJob,
    baseline_job,
    evaluation_jobs,
    pair_job,
    reference_job,
)
from repro.experiments.setups import (
    GROUP_MANAGERS,
    high_utility_pairs,
    low_utility_pairs,
    spark_npb_pairs,
)
from repro.metrics.summary import GroupStats, summarize

__all__ = ["ExperimentRecord", "CampaignResult", "Campaign"]

_GROUP_PAIRS: dict[str, Callable[[], list[tuple[str, str]]]] = {
    "low_utility": low_utility_pairs,
    "high_utility": high_utility_pairs,
    "spark_npb": spark_npb_pairs,
}

#: Accepted campaign serialization format tags.  v1 predates the parallel
#: engine (no telemetry block); v2 adds the optional ``engine`` document.
_FORMAT_V1 = "repro-campaign-v1"
_FORMAT_V2 = "repro-campaign-v2"


@dataclass(frozen=True)
class ExperimentRecord:
    """One (group, pair, manager) measurement.

    Attributes mirror :class:`~repro.experiments.harness.PairEvaluation`,
    flattened for serialization.
    """

    group: str
    workload_a: str
    workload_b: str
    manager: str
    speedup_a: float
    speedup_b: float
    hmean_speedup: float
    satisfaction_a: float
    satisfaction_b: float
    fairness: float


@dataclass
class CampaignResult:
    """All records of a finished campaign.

    Attributes:
        records: one per (group, pair, manager).
        seed: the campaign seed (for provenance).
        time_scale: the duration multiplier used.
        engine: execution telemetry of the run that produced the records
            (worker count, cache hit/miss traffic, per-job wall times);
            None for campaigns loaded from v1 JSON.
    """

    records: list[ExperimentRecord] = field(default_factory=list)
    seed: int = 0
    time_scale: float = 1.0
    engine: "object | None" = None

    def for_group(self, group: str) -> list[ExperimentRecord]:
        """Records of one group, in run order."""
        return [r for r in self.records if r.group == group]

    def for_manager(self, manager: str) -> list[ExperimentRecord]:
        """Records of one manager across groups."""
        return [r for r in self.records if r.manager == manager]

    def _grouped(
        self, value: Callable[[ExperimentRecord], float]
    ) -> dict[tuple[str, str], list[float]]:
        """Single-pass (group, manager) groupby of one record field.

        One scan over the records instead of one filtered scan per key —
        the summaries stay O(records) however many (group, manager) cells
        a campaign has.  Keys come out sorted, so the result is
        independent of record order.
        """
        groups: dict[tuple[str, str], list[float]] = {}
        for r in self.records:
            groups.setdefault((r.group, r.manager), []).append(value(r))
        return dict(sorted(groups.items()))

    def summary(self) -> dict[tuple[str, str], GroupStats]:
        """Per-(group, manager) statistics over the paired hmean speedups."""
        return {
            key: summarize(vals)
            for key, vals in self._grouped(
                lambda r: r.hmean_speedup
            ).items()
        }

    def mean_fairness(self) -> dict[tuple[str, str], float]:
        """Per-(group, manager) mean fairness (the §6.4 aggregates)."""
        return {
            key: float(np.mean(vals))
            for key, vals in self._grouped(lambda r: r.fairness).items()
        }

    def to_json(self) -> str:
        """Serialize the campaign (format tag included)."""
        doc = {
            "format": _FORMAT_V2,
            "seed": self.seed,
            "time_scale": self.time_scale,
            "records": [asdict(r) for r in self.records],
            "engine": (
                self.engine.to_doc() if self.engine is not None else None
            ),
        }
        return json.dumps(doc)

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        """Reconstruct a campaign from :meth:`to_json` output.

        Accepts both the current v2 format and pre-engine v1 documents
        (which simply lack telemetry).

        Raises:
            ValueError: unknown format tag.
        """
        doc = json.loads(text)
        fmt = doc.get("format")
        if fmt not in (_FORMAT_V1, _FORMAT_V2):
            raise ValueError(f"unsupported campaign format {fmt!r}")
        engine = None
        if fmt == _FORMAT_V2 and doc.get("engine") is not None:
            from repro.experiments.engine import EngineTelemetry

            engine = EngineTelemetry.from_doc(doc["engine"])
        return cls(
            records=[ExperimentRecord(**r) for r in doc["records"]],
            seed=int(doc["seed"]),
            time_scale=float(doc["time_scale"]),
            engine=engine,
        )


class Campaign:
    """Run the paper's benchmark groups end to end.

    Args:
        config: harness configuration.
        groups: which §5.2 groups to run (default: all three).
        managers: manager override; default is each group's paper set
            (:data:`~repro.experiments.setups.GROUP_MANAGERS`).
        limit_pairs: cap on pairs per group (None = all; useful for smoke
            campaigns, the artifact's "toy examples" mode).
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        groups: Iterable[str] = ("low_utility", "high_utility", "spark_npb"),
        managers: tuple[str, ...] | None = None,
        limit_pairs: int | None = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        self.groups = tuple(groups)
        for g in self.groups:
            if g not in _GROUP_PAIRS:
                raise ValueError(
                    f"unknown group {g!r}; expected one of "
                    f"{sorted(_GROUP_PAIRS)}"
                )
        if limit_pairs is not None and limit_pairs < 1:
            raise ValueError(f"limit_pairs must be >= 1, got {limit_pairs}")
        self.managers = managers
        self.limit_pairs = limit_pairs

    def plan(self) -> list[tuple[str, tuple[str, str], str]]:
        """The (group, pair, manager) evaluations, deterministic order."""
        out: list[tuple[str, tuple[str, str], str]] = []
        for group in self.groups:
            pairs = _GROUP_PAIRS[group]()
            if self.limit_pairs is not None:
                pairs = pairs[: self.limit_pairs]
            managers = self.managers or GROUP_MANAGERS[group]
            for pair in pairs:
                for manager in managers:
                    out.append((group, pair, manager))
        return out

    def simulation_jobs(self) -> list[SimJob]:
        """Every simulation the campaign needs (duplicates included; the
        engine's job graph deduplicates)."""
        jobs: list[SimJob] = []
        for _, (a, b), manager in self.plan():
            jobs.extend(evaluation_jobs(a, b, manager))
        return jobs

    def run(
        self,
        progress: Callable[[str, tuple[str, str], str], None] | None = None,
        jobs: int = 1,
        cache: "object | None" = None,
        engine_progress: "Callable | None" = None,
        backend: "object | None" = None,
    ) -> CampaignResult:
        """Execute the campaign through the parallel engine.

        Args:
            progress: optional callback invoked per (group, pair, manager)
                evaluation as records are assembled — hook for logging
                long campaigns (kept from the sequential API).
            jobs: worker-process count; 1 runs inline.  Records are
                bit-identical for any value.
            cache: optional :class:`~repro.experiments.engine.ResultCache`;
                hits skip simulation, fresh results are persisted.
            engine_progress: optional per-*job* callback
                ``(done, total, job, wall_s, cached, eta_s)``.
            backend: optional
                :class:`~repro.experiments.engine.ExecutionBackend`
                replacing the local pool (e.g. a
                :class:`~repro.experiments.distributed.DistributedBackend`
                leasing jobs to remote workers); records stay
                bit-identical regardless of where jobs ran.
        """
        from repro.experiments.engine import ExperimentEngine

        plan = self.plan()
        engine = ExperimentEngine(
            self.config, jobs=jobs, cache=cache, backend=backend
        )
        results = engine.run(self.simulation_jobs(), progress=engine_progress)

        result = CampaignResult(
            seed=self.config.seed,
            time_scale=self.config.sim.time_scale,
            engine=engine.last_telemetry,
        )
        for group, pair, manager in plan:
            if progress is not None:
                progress(group, pair, manager)
            a, b = pair
            baseline = results[baseline_job(a, b)]
            outcome = (
                baseline
                if manager == "constant"
                else results[pair_job(a, b, manager)]
            )
            ev = evaluate_outcome(
                baseline,
                outcome,
                results[reference_job(a)],
                results[reference_job(b)],
            )
            result.records.append(
                ExperimentRecord(
                    group=group,
                    workload_a=a,
                    workload_b=b,
                    manager=manager,
                    speedup_a=ev.speedup_a,
                    speedup_b=ev.speedup_b,
                    hmean_speedup=ev.hmean_speedup,
                    satisfaction_a=ev.satisfaction_a,
                    satisfaction_b=ev.satisfaction_b,
                    fairness=ev.fairness,
                )
            )
        return result

"""Campaign runner: execute whole benchmark groups and persist results.

This is the reproduction of the artifact's ``run_experiment.sh``: it runs
every workload pair of the selected §5.2 groups under each group's
managers, normalizes against the constant-allocation baseline, and collects
one flat record per (group, pair, manager) — serializable to JSON so the
figure generators and external analysis can consume a finished campaign
without re-simulating.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.experiments.harness import ExperimentConfig, ExperimentHarness
from repro.experiments.setups import (
    GROUP_MANAGERS,
    high_utility_pairs,
    low_utility_pairs,
    spark_npb_pairs,
)
from repro.metrics.summary import GroupStats, summarize

__all__ = ["ExperimentRecord", "CampaignResult", "Campaign"]

_GROUP_PAIRS: dict[str, Callable[[], list[tuple[str, str]]]] = {
    "low_utility": low_utility_pairs,
    "high_utility": high_utility_pairs,
    "spark_npb": spark_npb_pairs,
}


@dataclass(frozen=True)
class ExperimentRecord:
    """One (group, pair, manager) measurement.

    Attributes mirror :class:`~repro.experiments.harness.PairEvaluation`,
    flattened for serialization.
    """

    group: str
    workload_a: str
    workload_b: str
    manager: str
    speedup_a: float
    speedup_b: float
    hmean_speedup: float
    satisfaction_a: float
    satisfaction_b: float
    fairness: float


@dataclass
class CampaignResult:
    """All records of a finished campaign.

    Attributes:
        records: one per (group, pair, manager).
        seed: the campaign seed (for provenance).
        time_scale: the duration multiplier used.
    """

    records: list[ExperimentRecord] = field(default_factory=list)
    seed: int = 0
    time_scale: float = 1.0

    def for_group(self, group: str) -> list[ExperimentRecord]:
        """Records of one group, in run order."""
        return [r for r in self.records if r.group == group]

    def for_manager(self, manager: str) -> list[ExperimentRecord]:
        """Records of one manager across groups."""
        return [r for r in self.records if r.manager == manager]

    def summary(self) -> dict[tuple[str, str], GroupStats]:
        """Per-(group, manager) statistics over the paired hmean speedups."""
        keys = sorted({(r.group, r.manager) for r in self.records})
        return {
            key: summarize(
                [
                    r.hmean_speedup
                    for r in self.records
                    if (r.group, r.manager) == key
                ]
            )
            for key in keys
        }

    def mean_fairness(self) -> dict[tuple[str, str], float]:
        """Per-(group, manager) mean fairness (the §6.4 aggregates)."""
        keys = sorted({(r.group, r.manager) for r in self.records})
        return {
            key: float(
                np.mean(
                    [
                        r.fairness
                        for r in self.records
                        if (r.group, r.manager) == key
                    ]
                )
            )
            for key in keys
        }

    def to_json(self) -> str:
        """Serialize the campaign (format tag included)."""
        return json.dumps(
            {
                "format": "repro-campaign-v1",
                "seed": self.seed,
                "time_scale": self.time_scale,
                "records": [asdict(r) for r in self.records],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        """Reconstruct a campaign from :meth:`to_json` output.

        Raises:
            ValueError: unknown format tag.
        """
        doc = json.loads(text)
        if doc.get("format") != "repro-campaign-v1":
            raise ValueError(
                f"unsupported campaign format {doc.get('format')!r}"
            )
        return cls(
            records=[ExperimentRecord(**r) for r in doc["records"]],
            seed=int(doc["seed"]),
            time_scale=float(doc["time_scale"]),
        )


class Campaign:
    """Run the paper's benchmark groups end to end.

    Args:
        config: harness configuration.
        groups: which §5.2 groups to run (default: all three).
        managers: manager override; default is each group's paper set
            (:data:`~repro.experiments.setups.GROUP_MANAGERS`).
        limit_pairs: cap on pairs per group (None = all; useful for smoke
            campaigns, the artifact's "toy examples" mode).
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        groups: Iterable[str] = ("low_utility", "high_utility", "spark_npb"),
        managers: tuple[str, ...] | None = None,
        limit_pairs: int | None = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        self.groups = tuple(groups)
        for g in self.groups:
            if g not in _GROUP_PAIRS:
                raise ValueError(
                    f"unknown group {g!r}; expected one of "
                    f"{sorted(_GROUP_PAIRS)}"
                )
        if limit_pairs is not None and limit_pairs < 1:
            raise ValueError(f"limit_pairs must be >= 1, got {limit_pairs}")
        self.managers = managers
        self.limit_pairs = limit_pairs

    def run(
        self,
        progress: Callable[[str, tuple[str, str], str], None] | None = None,
    ) -> CampaignResult:
        """Execute the campaign.

        Args:
            progress: optional callback invoked before each (group, pair,
                manager) run — hook for logging long campaigns.
        """
        harness = ExperimentHarness(self.config)
        result = CampaignResult(
            seed=self.config.seed, time_scale=self.config.sim.time_scale
        )
        for group in self.groups:
            pairs = _GROUP_PAIRS[group]()
            if self.limit_pairs is not None:
                pairs = pairs[: self.limit_pairs]
            managers = self.managers or GROUP_MANAGERS[group]
            for pair in pairs:
                for manager in managers:
                    if progress is not None:
                        progress(group, pair, manager)
                    ev = harness.evaluate_pair(pair[0], pair[1], manager)
                    result.records.append(
                        ExperimentRecord(
                            group=group,
                            workload_a=pair[0],
                            workload_b=pair[1],
                            manager=manager,
                            speedup_a=ev.speedup_a,
                            speedup_b=ev.speedup_b,
                            hmean_speedup=ev.hmean_speedup,
                            satisfaction_a=ev.satisfaction_a,
                            satisfaction_b=ev.satisfaction_b,
                            fairness=ev.fairness,
                        )
                    )
        return result

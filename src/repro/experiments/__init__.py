"""Experiment harness, setups, and per-figure/table generators."""

from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentHarness,
    PairEvaluation,
    PairOutcome,
    ReferenceStats,
)
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    ExperimentRecord,
)
from repro.experiments.charts import bar_chart, line_chart, sparkline
from repro.experiments.engine import (
    EngineTelemetry,
    ExperimentEngine,
    JobTiming,
    ResultCache,
    job_digest,
)
from repro.experiments.jobs import (
    JobGraph,
    SimJob,
    baseline_job,
    evaluation_jobs,
    pair_job,
    reference_job,
)
from repro.experiments.figures import (
    Figure1Data,
    Figure7Data,
    FigureBars,
    figure1,
    figure2,
    figure4,
    figure5a,
    figure5b,
    figure6,
    figure7,
)
from repro.experiments.setups import (
    GROUP_MANAGERS,
    demanding_spark_names,
    high_utility_pairs,
    low_utility_pairs,
    spark_npb_pairs,
)
from repro.experiments.sweeps import SweepPoint, budget_sweep, noise_sweep
from repro.experiments.tables import (
    OverheadRow,
    WorkloadRow,
    overhead_analysis,
    table2,
    table3,
    table4,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "EngineTelemetry",
    "ExperimentEngine",
    "ExperimentRecord",
    "JobGraph",
    "JobTiming",
    "ResultCache",
    "SimJob",
    "baseline_job",
    "evaluation_jobs",
    "job_digest",
    "pair_job",
    "reference_job",
    "Figure1Data",
    "Figure7Data",
    "FigureBars",
    "OverheadRow",
    "SweepPoint",
    "WorkloadRow",
    "bar_chart",
    "budget_sweep",
    "figure1",
    "line_chart",
    "noise_sweep",
    "sparkline",
    "figure2",
    "figure4",
    "figure5a",
    "figure5b",
    "figure6",
    "figure7",
    "overhead_analysis",
    "table2",
    "table3",
    "table4",
    "ExperimentConfig",
    "ExperimentHarness",
    "GROUP_MANAGERS",
    "PairEvaluation",
    "PairOutcome",
    "ReferenceStats",
    "demanding_spark_names",
    "high_utility_pairs",
    "low_utility_pairs",
    "spark_npb_pairs",
]

"""Distributed campaign execution: a fault-tolerant TCP work queue.

The campaign engine's local backend tops out at one machine's cores; this
module turns spare machines into campaign throughput without giving up
the engine's bit-identity guarantee.  A coordinator
(:class:`DistributedBackend`, an
:class:`~repro.experiments.engine.ExecutionBackend`) leases digest-keyed
jobs to remote workers (:class:`DistributedWorker`) over the
length-prefixed JSON framing of :mod:`repro.comm.wire`, and every
robustness mechanism the control plane grew for flaky clients reappears
here for flaky workers:

* **Leases, not fire-and-forget.**  Every dispatched job carries a
  deadline the worker must keep renewing with heartbeats; a silent
  worker forfeits the lease and the job is re-dispatched elsewhere with
  exponential backoff and jitter.
* **Quarantine and rejoin.**  Worker liveness reuses the deploy layer's
  :class:`~repro.resilience.health.ClientHealth` three-state machine:
  a failure quarantines the worker (its stream can no longer be
  trusted), reconnect attempts back off exponentially, and
  ``max_retries`` consecutive failures declare it lost for the run.
  Workers are plain TCP servers, so a restarted worker is simply
  reconnected to — rejoin needs no extra protocol.
* **Speculative re-execution.**  A job that has been running far longer
  than the median (a straggler that still heartbeats) is speculatively
  duplicated onto an idle worker; the first valid result wins and the
  loser's result is discarded by digest.  Duplicated execution is safe
  because jobs are deterministic and idempotent.
* **Graceful degradation.**  Workers unreachable at startup are skipped
  with a warning; if *every* worker is lost mid-run the remaining jobs
  execute locally, so a campaign never dies of its helpers' deaths.

Results are bit-identical to a single-process run: the worker verifies
each job's digest against its own config + code version before running
it (config/version skew is refused, not silently computed), payloads are
checksummed end to end, and the engine assembles records in
deterministic graph order no matter which worker finished what when.
Every failure and recovery action lands on the structured event channel
(:data:`~repro.telemetry.log.WORKER_EVENT_KINDS`) — nothing is retried
silently.
"""

from __future__ import annotations

import hashlib
import os
import random
import select
import socket
import statistics
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.comm.net import bind_listener
from repro.comm.wire import FrameAssembler, FrameError, recv_doc, send_doc
from repro.experiments.engine import (
    ExecutionBackend,
    ResultCache,
    _canonical,
    decode_result,
    encode_result,
    execute_job,
    job_digest,
)
from repro.experiments.harness import ExperimentConfig
from repro.experiments.jobs import SimJob
from repro.resilience.health import ClientHealth, HealthState, ResilienceConfig
from repro.telemetry.log import ResilienceEvent, ResilienceEventLog

__all__ = [
    "CoordinatorConfig",
    "DistributedBackend",
    "DistributedWorker",
    "WorkerChaos",
    "parse_workers",
]

#: Coordinator event-loop tick: upper bound on how stale lease deadlines,
#: reconnect timers, and backoff gates may be checked.
_POLL_S = 0.05

#: Socket receive chunk for both ends' assembler-fed loops.
_RECV_BYTES = 65536

#: Sentinel for a closed connection (distinct from a timeout's None).
_EOF = object()


def parse_workers(spec: str) -> list[str]:
    """Parse a ``host:port,host:port`` list into worker addresses.

    Raises:
        ValueError: empty list or a malformed address.
    """
    addresses: list[str] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        _split_address(part)
        addresses.append(part)
    if not addresses:
        raise ValueError(f"no worker addresses in {spec!r}")
    return addresses


def _split_address(address: str) -> tuple[str, int]:
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"worker address must be host:port, got {address!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"invalid port in worker address {address!r}"
        ) from None


def _payload_sha256(payload: dict) -> str:
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def _abort_connection(conn: socket.socket) -> None:
    """Close with an RST (no FIN handshake) — a crash, not a goodbye."""
    try:
        conn.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    conn.close()


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerChaos:
    """Deterministic fault injection for chaos tests and drills.

    Attributes:
        kill_after_jobs: after completing this many jobs, abort the
            connection (RST, no farewell) and stop serving — a worker
            crash.  0 disables.
        hang_before_job: 1-indexed ordinal of the accepted job to hang
            on: the worker goes silent (no heartbeats) for ``hang_s``
            before touching the job — a straggler / stuck worker.  0
            disables.
        hang_s: hang duration in wall seconds.
    """

    kill_after_jobs: int = 0
    hang_before_job: int = 0
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kill_after_jobs < 0 or self.hang_before_job < 0:
            raise ValueError("chaos job ordinals must be >= 0")
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s}")


@dataclass
class _ActiveJob:
    """One job in flight on a worker session."""

    digest: str
    key: str
    box: dict
    thread: threading.Thread | None

    @property
    def finished(self) -> bool:
        return self.thread is None or not self.thread.is_alive()


class DistributedWorker:
    """One remote execution node: a TCP server that runs leased jobs.

    The worker listens; the coordinator dials.  Per session the worker
    announces ``ready`` (with its code version and its ``slots`` — the
    job concurrency it offers), receives the campaign config, then
    serves ``job`` frames: each job runs on its own thread while the
    session loop keeps emitting one shared heartbeat per in-flight
    digest, so a long simulation never looks like a dead worker.  Each
    job's digest is re-derived locally and must match the coordinator's
    — a version- or config-skewed worker refuses work instead of
    producing subtly different bits.

    A worker outlives its sessions: when the coordinator drops (or the
    worker was quarantined and the coordinator reconnects), the accept
    loop simply serves the next session — that is the entire rejoin
    protocol.

    Args:
        host/port: bind address (always bound through
            :func:`~repro.comm.net.bind_listener` — port 0 picks a free
            port, read back on :attr:`port`, and pinned ports survive
            transient ``EADDRINUSE``).
        cache: optional :class:`~repro.experiments.engine.ResultCache`
            consulted before executing and updated after — point several
            workers at one shared directory and they deduplicate work
            across campaigns.
        chaos: optional :class:`WorkerChaos` fault injection.
        max_jobs: stop serving after this many completed jobs (tests).
        concurrency: jobs this worker runs at once (thread-per-job; the
            coordinator fills up to this many leases on one session).
        log: optional ``callable(str)`` receiving one line per lifecycle
            step (session open/close, job done, chaos actions).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: ResultCache | None = None,
        chaos: WorkerChaos | None = None,
        max_jobs: int | None = None,
        concurrency: int = 1,
        log: Callable[[str], None] | None = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.cache = cache
        self.chaos = chaos if chaos is not None else WorkerChaos()
        self.max_jobs = max_jobs
        self.concurrency = concurrency
        self._log = log
        self._listener = bind_listener(host, port, timeout_s=0.2)
        self.host = host
        self.port = int(self._listener.getsockname()[1])
        self._stop = threading.Event()
        self._draining = threading.Event()
        self.jobs_done = 0
        self._jobs_seen = 0

    @property
    def address(self) -> str:
        """The dialable ``host:port`` of this worker."""
        return f"{self.host}:{self.port}"

    def _say(self, msg: str) -> None:
        if self._log is not None:
            self._log(f"worker {self.address}: {msg}")

    def stop(self) -> None:
        """Ask the serve loop (and any chaos hang) to exit promptly."""
        self._stop.set()

    def drain(self) -> None:
        """Graceful shutdown: finish in-flight jobs, decline new leases.

        The SIGTERM/SIGINT half of worker lifecycle management: every
        job frame that arrives after this point is refused with an
        ``error`` document (the coordinator reclaims the lease and
        requeues the job immediately — no lease has to expire), jobs
        already running finish and report their results, and the serve
        loop then exits cleanly so the process can exit 0.

        Idempotent; safe to call from a signal handler (it only sets an
        event).
        """
        if not self._draining.is_set():
            self._draining.set()
            self._say("draining: finishing in-flight jobs, declining new")

    def serve_in_background(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a daemon thread (tests, demos)."""
        thread = threading.Thread(
            target=self.serve_forever,
            name=f"repro-worker-{self.port}",
            daemon=True,
        )
        thread.start()
        return thread

    def serve_forever(self) -> None:
        """Accept coordinator sessions until stopped (or chaos kills us)."""
        self._say("serving")
        try:
            while not self._stop.is_set():
                if self._draining.is_set():
                    break  # Between sessions with nothing in flight.
                try:
                    conn, peer = self._listener.accept()
                except TimeoutError:
                    continue
                except OSError:
                    break
                with conn:
                    self._say(f"session from {peer[0]}:{peer[1]}")
                    alive = self._serve_session(conn)
                if not alive:
                    break
        finally:
            self._listener.close()
            self._say(f"stopped after {self.jobs_done} job(s)")

    # ------------------------------------------------------------------

    def _poll_doc(
        self, conn: socket.socket, assembler: FrameAssembler, inbox: deque
    ) -> "dict | None | object":
        """One receive attempt: a document, None on timeout, _EOF on close."""
        if inbox:
            return inbox.popleft()
        try:
            data = conn.recv(_RECV_BYTES)
        except TimeoutError:
            return None
        except OSError:
            return _EOF
        if not data:
            return _EOF
        inbox.extend(assembler.feed(data))
        return inbox.popleft() if inbox else None

    def _serve_session(self, conn: socket.socket) -> bool:
        """Serve one coordinator session; False means stop serving.

        Up to :attr:`concurrency` jobs run at once, each on its own
        thread; the session loop is shared — it reaps finished jobs,
        emits one heartbeat per in-flight digest on the coordinator's
        cadence, and admits new frames, all on one socket.
        """
        from repro import __version__

        conn.settimeout(0.2)
        assembler = FrameAssembler()
        inbox: deque[dict] = deque()
        config: ExperimentConfig | None = None
        heartbeat_s = 1.0
        active: list[_ActiveJob] = []
        last_beat = time.monotonic()
        try:
            send_doc(
                conn,
                {
                    "type": "ready",
                    "version": __version__,
                    "pid": os.getpid(),
                    "slots": self.concurrency,
                },
            )
            while not self._stop.is_set():
                for entry in [e for e in active if e.finished]:
                    active.remove(entry)
                    if not self._finish_job(conn, entry):
                        return False
                if self._draining.is_set() and not active:
                    # Drained dry: every in-flight job has reported, new
                    # work is being declined — exit the process cleanly.
                    return False
                if active and time.monotonic() - last_beat >= heartbeat_s:
                    for entry in active:
                        send_doc(
                            conn,
                            {"type": "heartbeat", "digest": entry.digest},
                        )
                    last_beat = time.monotonic()
                doc = self._poll_doc(conn, assembler, inbox)
                if doc is None:
                    continue
                if doc is _EOF or doc.get("type") == "quit":
                    return True
                kind = doc.get("type")
                if kind == "hello":
                    heartbeat_s = float(doc.get("heartbeat_s", heartbeat_s))
                elif kind == "config":
                    try:
                        config = ExperimentConfig.from_doc(doc["config"])
                    except (KeyError, TypeError, ValueError) as exc:
                        send_doc(
                            conn,
                            {
                                "type": "error",
                                "digest": "",
                                "error": f"bad config: {exc}",
                            },
                        )
                        continue
                    send_doc(conn, {"type": "config_ok"})
                elif kind == "job":
                    entry = self._admit_job(conn, config, doc)
                    if entry is not None:
                        active.append(entry)
                # Unknown frame types are ignored: forward compatibility.
        except (OSError, FrameError) as exc:
            self._say(f"session ended: {exc}")
        return True

    def _admit_job(
        self,
        conn: socket.socket,
        config: ExperimentConfig | None,
        doc: dict,
    ) -> _ActiveJob | None:
        """Validate one job frame and start it (or refuse it inline)."""
        digest = str(doc.get("digest", ""))

        def _refuse(error: str) -> None:
            self._say(f"refusing job: {error}")
            send_doc(conn, {"type": "error", "digest": digest, "error": error})

        if self._draining.is_set():
            # The coordinator reclaims the lease on the error frame and
            # requeues instantly — a draining worker never strands a job
            # behind a lease timeout.
            _refuse("worker draining")
            return None
        if config is None:
            _refuse("job received before config")
            return None
        try:
            job = SimJob.from_tokens(doc.get("tokens", ()))
        except (TypeError, ValueError) as exc:
            _refuse(f"bad job tokens: {exc}")
            return None
        if job_digest(config, job) != digest:
            # The single check that keeps a mixed fleet honest: any
            # config or code-version skew lands here, never in the data.
            _refuse(f"digest mismatch for {job.key} (config/version skew)")
            return None

        self._jobs_seen += 1
        if (
            self.chaos.hang_before_job
            and self._jobs_seen == self.chaos.hang_before_job
        ):
            # The whole worker goes silent: every in-flight digest stops
            # heartbeating, which is exactly what a stuck process does.
            self._say(f"chaos: hanging {self.chaos.hang_s:.1f}s on {job.key}")
            if self._stop.wait(self.chaos.hang_s):
                return None

        payload = self.cache.load(digest) if self.cache is not None else None
        if payload is not None:
            return _ActiveJob(
                digest, job.key, {"payload": payload, "wall_s": 0.0}, None
            )
        box: dict = {}
        cache = self.cache

        def _run() -> None:
            t0 = time.perf_counter()
            try:
                box["payload"] = encode_result(execute_job(config, job))
            except Exception as exc:  # noqa: BLE001 - report, don't die
                box["error"] = f"{type(exc).__name__}: {exc}"
            box["wall_s"] = time.perf_counter() - t0
            if cache is not None and "payload" in box:
                cache.store(digest, job.key, box["payload"])

        thread = threading.Thread(
            target=_run, name=f"repro-job-{digest[:8]}", daemon=True
        )
        thread.start()
        return _ActiveJob(digest, job.key, box, thread)

    def _finish_job(self, conn: socket.socket, entry: _ActiveJob) -> bool:
        """Send one finished job's outcome; False means stop serving."""
        if "error" in entry.box:
            self._say(f"refusing job: {entry.box['error']}")
            send_doc(
                conn,
                {
                    "type": "error",
                    "digest": entry.digest,
                    "error": entry.box["error"],
                },
            )
            return True
        payload = entry.box["payload"]
        wall = float(entry.box.get("wall_s", 0.0))
        send_doc(
            conn,
            {
                "type": "result",
                "digest": entry.digest,
                "wall_s": wall,
                "payload": payload,
                "payload_sha256": _payload_sha256(payload),
            },
        )
        self.jobs_done += 1
        self._say(f"completed {entry.key} in {wall:.2f}s")
        if (
            self.chaos.kill_after_jobs
            and self.jobs_done >= self.chaos.kill_after_jobs
        ):
            self._say(f"chaos: crashing after {self.jobs_done} job(s)")
            _abort_connection(conn)
            return False
        if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
            return False
        return True


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoordinatorConfig:
    """Robustness knobs of the distributed coordinator.

    Attributes:
        lease_timeout_s: a lease expires this long after its last
            heartbeat (or grant); the worker is then quarantined and the
            job re-dispatched.
        heartbeat_s: heartbeat interval workers are asked for; must be
            comfortably below ``lease_timeout_s``.
        connect_timeout_s: TCP connect + handshake budget per attempt.
        max_retries: per-worker consecutive failures before it is lost
            for the run, per-job worker-reported errors before the run
            aborts, and per-job re-dispatches before the job falls back
            to local execution.
        retry_backoff_s: base delay before a reconnect / re-dispatch.
        backoff_factor: multiplicative backoff growth per consecutive
            failure.
        jitter_s: uniform random extra delay (seeded, reproducible) so
            simultaneous failures don't retry in lockstep.
        speculation_factor: a job is speculatively duplicated once it
            has run this multiple of the median completed wall time.
        speculation_min_s: floor below which speculation never triggers.
        local_fallback: execute jobs locally when all workers are lost
            (or a job exhausted its re-dispatches) instead of raising.
        seed: seed of the jitter RNG.
    """

    lease_timeout_s: float = 30.0
    heartbeat_s: float = 0.5
    connect_timeout_s: float = 5.0
    max_retries: int = 3
    retry_backoff_s: float = 0.25
    backoff_factor: float = 2.0
    jitter_s: float = 0.1
    speculation_factor: float = 4.0
    speculation_min_s: float = 10.0
    local_fallback: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {self.heartbeat_s}")
        if self.lease_timeout_s < 2 * self.heartbeat_s:
            raise ValueError(
                "lease_timeout_s must be at least two heartbeats, got "
                f"{self.lease_timeout_s} vs heartbeat_s={self.heartbeat_s}"
            )
        if self.connect_timeout_s <= 0:
            raise ValueError("connect_timeout_s must be > 0")
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.retry_backoff_s < 0 or self.jitter_s < 0:
            raise ValueError("backoff and jitter must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.speculation_factor < 1.0:
            raise ValueError(
                f"speculation_factor must be >= 1, got {self.speculation_factor}"
            )
        if self.speculation_min_s < 0:
            raise ValueError("speculation_min_s must be >= 0")


@dataclass
class _Lease:
    """One in-flight job grant on one worker."""

    digest: str
    granted_at: float
    deadline: float
    speculative: bool = False


class _WorkerLink:
    """Coordinator-side state of one configured worker address."""

    def __init__(
        self, index: int, host: str, port: int, health: ClientHealth
    ) -> None:
        self.index = index
        self.host = host
        self.port = port
        self.health = health
        self.sock: socket.socket | None = None
        self.assembler = FrameAssembler()
        #: Job slots the worker announced in its ready frame.
        self.slots = 1
        #: In-flight leases on this worker, keyed by job digest (up to
        #: :attr:`slots` at once on a concurrent worker).
        self.leases: dict[str, _Lease] = {}
        #: Unreachable at start(); excluded for the whole run.
        self.skipped = False
        #: Declared DEAD mid-run; no further reconnects this run.
        self.lost = False
        #: Monotonic time of the next reconnect attempt, if scheduled.
        self.retry_at: float | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def idle(self) -> bool:
        """True while the worker has at least one free job slot."""
        return self.sock is not None and len(self.leases) < self.slots


class _JobState:
    """Coordinator-side state of one wave job."""

    def __init__(self, job: SimJob, digest: str) -> None:
        self.job = job
        self.digest = digest
        self.done = False
        #: Lease grants so far (including speculative ones).
        self.dispatches = 0
        #: Worker-*reported* execution errors (the job itself failing).
        self.failures = 0
        #: Backoff gate: not dispatchable before this monotonic time.
        self.not_before = 0.0
        self.speculated = False
        #: Live leases (2 while a speculative duplicate runs).
        self.active = 0


class DistributedBackend(ExecutionBackend):
    """Lease digest-keyed jobs to remote workers; survive their deaths.

    See the module docstring for the robustness model.  The backend is
    restartable: :meth:`start` re-handshakes (reconnecting lost and
    previously skipped workers) and :meth:`shutdown` sends each
    connected worker a farewell ``quit`` — so one instance serves every
    point of a sweep.

    Args:
        workers: worker addresses (``host:port`` strings); see
            :func:`parse_workers` for the CLI comma form.
        coordinator: robustness knobs (:class:`CoordinatorConfig`).
        on_event: optional callable receiving every structured
            worker-lifecycle :class:`~repro.telemetry.log.ResilienceEvent`
            as it is emitted (the CLI prints these live); the same
            events accumulate on :attr:`events` regardless.
    """

    label = "distributed"

    def __init__(
        self,
        workers: Sequence[str],
        coordinator: CoordinatorConfig | None = None,
        on_event: Callable[[ResilienceEvent], None] | None = None,
    ) -> None:
        if not workers:
            raise ValueError("at least one worker address is required")
        self.coordinator = (
            coordinator if coordinator is not None else CoordinatorConfig()
        )
        self.on_event = on_event
        self.events = ResilienceEventLog()
        self._t0 = time.monotonic()
        self._rng = random.Random(self.coordinator.seed)
        resilience = ResilienceConfig(
            max_retries=self.coordinator.max_retries,
            backoff_cycles=1,
            backoff_factor=self.coordinator.backoff_factor,
        )
        self._links = [
            _WorkerLink(i, *_split_address(addr), ClientHealth(resilience))
            for i, addr in enumerate(workers)
        ]
        self._config: ExperimentConfig | None = None
        self._config_doc: dict | None = None

    @property
    def workers(self) -> int:
        return len(self._links)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, config: ExperimentConfig) -> None:
        changed = self._config is not None and config != self._config
        self._config = config
        self._config_doc = config.to_doc()
        for link in self._links:
            link.skipped = False
            link.lost = False
            link.retry_at = None
            if link.sock is not None and changed:
                # The live session holds the old config; re-handshake.
                self._close_link(link, farewell=True)
            if link.sock is not None:
                continue
            reason = self._connect(link)
            if reason is None:
                if link.health.quarantined:
                    link.health.rejoin()
                    self._emit(
                        "worker_rejoined", node_id=link.index,
                        detail=link.address,
                    )
                else:
                    self._emit(
                        "worker_joined", node_id=link.index,
                        detail=link.address,
                    )
            else:
                link.skipped = True
                self._emit(
                    "worker_skipped", node_id=link.index,
                    detail=f"{link.address}: {reason}",
                )

    def shutdown(self) -> None:
        for link in self._links:
            self._close_link(link, farewell=True)

    def _close_link(self, link: _WorkerLink, farewell: bool = False) -> None:
        if link.sock is None:
            return
        if farewell:
            try:
                send_doc(link.sock, {"type": "quit"})
            except OSError:
                pass
        try:
            link.sock.close()
        except OSError:
            pass
        link.sock = None
        link.leases = {}

    def _connect(self, link: _WorkerLink) -> str | None:
        """Dial + handshake one worker; returns a failure reason or None."""
        from repro import __version__

        assert self._config_doc is not None, "start() was not called"
        try:
            sock = socket.create_connection(
                (link.host, link.port),
                timeout=self.coordinator.connect_timeout_s,
            )
        except OSError as exc:
            return f"connect failed: {exc}"
        try:
            ready = recv_doc(sock)
            if not isinstance(ready, dict) or ready.get("type") != "ready":
                sock.close()
                return "no ready announcement"
            if ready.get("version") != __version__:
                sock.close()
                return (
                    f"version skew (worker {ready.get('version')!r}, "
                    f"coordinator {__version__!r})"
                )
            send_doc(
                sock,
                {
                    "type": "hello",
                    "version": __version__,
                    "heartbeat_s": self.coordinator.heartbeat_s,
                },
            )
            send_doc(sock, {"type": "config", "config": self._config_doc})
            ack = recv_doc(sock)
            if not isinstance(ack, dict) or ack.get("type") != "config_ok":
                sock.close()
                detail = (ack or {}).get("error", "no config_ok")
                return f"config rejected: {detail}"
        except (OSError, FrameError) as exc:
            sock.close()
            return f"handshake failed: {exc}"
        sock.settimeout(self.coordinator.connect_timeout_s)
        link.sock = sock
        link.assembler = FrameAssembler()
        link.slots = max(1, int(ready.get("slots", 1)))
        link.leases = {}
        return None

    # ------------------------------------------------------------------
    # Event + failure plumbing
    # ------------------------------------------------------------------

    def _emit(
        self, kind: str, node_id: int | None = None, detail: str = ""
    ) -> ResilienceEvent:
        event = self.events.emit(
            time.monotonic() - self._t0, kind, node_id=node_id, detail=detail
        )
        if self.on_event is not None:
            self.on_event(event)
        return event

    def _worker_failure(self, link: _WorkerLink, reason: str) -> None:
        """Quarantine (or lose) a worker; schedules its reconnect."""
        self._close_link(link)
        coord = self.coordinator
        if link.health.record_failure() is HealthState.DEAD:
            link.retry_at = None
            link.lost = True
            self._emit(
                "worker_lost", node_id=link.index,
                detail=(
                    f"{link.address}: {reason} (failure "
                    f"{link.health.consecutive_failures}, giving up)"
                ),
            )
            return
        k = link.health.consecutive_failures
        delay = coord.retry_backoff_s * coord.backoff_factor ** (
            k - 1
        ) + self._rng.uniform(0.0, coord.jitter_s)
        link.retry_at = time.monotonic() + delay
        self._emit(
            "worker_quarantined", node_id=link.index,
            detail=f"{link.address}: {reason}; reconnect in {delay:.2f}s",
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self, items: Sequence[tuple[SimJob, str]]
    ) -> Iterator[tuple[SimJob, dict, float]]:
        if not items:
            return
        assert self._config is not None, "start() was not called"
        coord = self.coordinator
        config = self._config
        states = {digest: _JobState(job, digest) for job, digest in items}
        pending: list[_JobState] = list(states.values())
        walls: list[float] = []
        completed: list[tuple[SimJob, dict, float]] = []

        def _run_local(state: _JobState, why: str) -> None:
            self._emit(
                "backend_degraded",
                detail=f"{state.job.key} running locally ({why})",
            )
            t0 = time.perf_counter()
            result = execute_job(config, state.job)
            state.done = True
            completed.append(
                (state.job, encode_result(result), time.perf_counter() - t0)
            )

        def _requeue(state: _JobState, why: str) -> None:
            k = max(1, state.dispatches)
            delay = coord.retry_backoff_s * coord.backoff_factor ** (
                k - 1
            ) + self._rng.uniform(0.0, coord.jitter_s)
            state.not_before = time.monotonic() + delay
            pending.append(state)
            self._emit(
                "lease_redispatched",
                detail=(
                    f"{state.job.key}: {why}; eligible again in {delay:.2f}s"
                ),
            )

        def _fail_link(link: _WorkerLink, reason: str) -> None:
            leases = list(link.leases.values())
            self._worker_failure(link, reason)
            for lease in leases:
                state = states.get(lease.digest)
                if state is None:
                    continue
                state.active -= 1
                if not state.done and state.active == 0:
                    _requeue(state, f"worker failure: {reason}")

        def _grant(
            link: _WorkerLink, state: _JobState, speculative: bool = False
        ) -> bool:
            assert link.sock is not None
            try:
                send_doc(
                    link.sock,
                    {
                        "type": "job",
                        "digest": state.digest,
                        "tokens": list(state.job.tokens),
                        "key": state.job.key,
                    },
                )
            except OSError as exc:
                _fail_link(link, f"dispatch failed: {exc}")
                return False
            now = time.monotonic()
            link.leases[state.digest] = _Lease(
                state.digest, now, now + coord.lease_timeout_s, speculative
            )
            state.active += 1
            state.dispatches += 1
            tag = " (speculative)" if speculative else ""
            self._emit(
                "lease_granted", node_id=link.index,
                detail=f"{state.job.key} -> {link.address}{tag}",
            )
            return True

        def _speculate(idle: list[_WorkerLink], now: float) -> None:
            threshold = coord.speculation_min_s
            if walls:
                threshold = max(
                    threshold,
                    coord.speculation_factor * statistics.median(walls),
                )
            for link in self._links:
                for lease in list(link.leases.values()):
                    if not idle:
                        return
                    if lease.speculative:
                        continue
                    state = states.get(lease.digest)
                    if state is None or state.done or state.speculated:
                        continue
                    if now - lease.granted_at < threshold:
                        continue
                    # A backup on the same (possibly stuck) worker would
                    # share its fate; pick a different one.
                    candidates = [b for b in idle if b is not link]
                    if not candidates:
                        continue
                    backup = candidates[0]
                    idle.remove(backup)
                    state.speculated = True
                    self._emit(
                        "job_speculated", node_id=backup.index,
                        detail=(
                            f"{state.job.key}: no result after "
                            f"{now - lease.granted_at:.1f}s on "
                            f"{link.address}; backup on {backup.address}"
                        ),
                    )
                    _grant(backup, state, speculative=True)

        def _dispatch() -> None:
            while True:
                now = time.monotonic()
                idle = [link for link in self._links if link.idle]
                if not idle:
                    return
                pending[:] = [s for s in pending if not s.done]
                eligible = [
                    i for i, s in enumerate(pending) if s.not_before <= now
                ]
                if not eligible:
                    _speculate(idle, now)
                    return
                state = pending.pop(eligible[0])
                if state.dispatches > coord.max_retries:
                    if not coord.local_fallback:
                        raise RuntimeError(
                            f"job {state.job.key} exhausted "
                            f"{state.dispatches} leases and local fallback "
                            "is disabled"
                        )
                    _run_local(
                        state, f"after {state.dispatches} forfeited leases"
                    )
                    continue
                if not any(_grant(link, state) for link in idle):
                    pending.append(state)

        def _handle(link: _WorkerLink, doc: dict) -> None:
            kind = doc.get("type")
            digest = str(doc.get("digest", ""))
            if kind == "heartbeat":
                lease = link.leases.get(digest)
                if lease is not None:
                    lease.deadline = time.monotonic() + coord.lease_timeout_s
                return
            if kind == "error":
                link.leases.pop(digest, None)
                state = states.get(digest)
                if state is None or state.done:
                    return
                state.active -= 1
                state.failures += 1
                msg = str(doc.get("error", ""))
                self._emit(
                    "worker_result_invalid", node_id=link.index,
                    detail=f"{state.job.key}: worker error: {msg}",
                )
                if state.failures >= coord.max_retries:
                    raise RuntimeError(
                        f"job {state.job.key} failed on remote workers "
                        f"{state.failures} times; last error: {msg}"
                    )
                if state.active == 0:
                    _requeue(state, f"worker error: {msg}")
                return
            if kind != "result":
                return
            link.leases.pop(digest, None)
            state = states.get(digest)
            if state is None:
                self._emit(
                    "worker_result_invalid", node_id=link.index,
                    detail=f"result for unknown digest {digest[:12]}",
                )
                return
            if state.done:
                state.active -= 1
                self._emit(
                    "duplicate_discarded", node_id=link.index,
                    detail=f"{state.job.key} from {link.address}",
                )
                return
            payload = doc.get("payload")
            valid = (
                isinstance(payload, dict)
                and doc.get("payload_sha256") == _payload_sha256(payload)
            )
            if valid:
                try:
                    decode_result(payload)
                except (KeyError, TypeError, ValueError):
                    valid = False
            if not valid:
                state.active -= 1
                self._emit(
                    "worker_result_invalid", node_id=link.index,
                    detail=f"{state.job.key}: corrupt result payload",
                )
                _fail_link(link, "sent a corrupt result")
                if not state.done and state.active == 0:
                    _requeue(state, "corrupt result")
                return
            state.active -= 1
            state.done = True
            link.health.record_success()
            wall = float(doc.get("wall_s", 0.0))
            walls.append(wall)
            completed.append((state.job, payload, wall))

        def _check_leases() -> None:
            now = time.monotonic()
            for link in self._links:
                if link.sock is None:
                    continue
                expired = next(
                    (l for l in link.leases.values() if now >= l.deadline),
                    None,
                )
                if expired is None:
                    continue
                state = states.get(expired.digest)
                key = (
                    state.job.key if state is not None else expired.digest[:12]
                )
                self._emit(
                    "lease_expired", node_id=link.index,
                    detail=(
                        f"{key} on {link.address}: no heartbeat within "
                        f"{coord.lease_timeout_s:.1f}s"
                    ),
                )
                # One silent lease condemns the worker: every lease it
                # held is requeued by the link failure.
                _fail_link(link, "lease expired")

        def _reconnects() -> None:
            now = time.monotonic()
            for link in self._links:
                if (
                    link.sock is not None
                    or link.retry_at is None
                    or now < link.retry_at
                ):
                    continue
                link.retry_at = None
                reason = self._connect(link)
                if reason is None:
                    link.health.rejoin()
                    self._emit(
                        "worker_rejoined", node_id=link.index,
                        detail=link.address,
                    )
                else:
                    self._worker_failure(link, reason)

        def _pump(timeout: float) -> None:
            socks = {
                link.sock: link
                for link in self._links
                if link.sock is not None
            }
            if not socks:
                time.sleep(timeout)
                return
            ready, _, _ = select.select(list(socks), [], [], timeout)
            for sock in ready:
                link = socks[sock]
                if link.sock is not sock:
                    continue  # Closed while handling an earlier sock.
                try:
                    data = sock.recv(_RECV_BYTES)
                except OSError as exc:
                    _fail_link(link, f"recv failed: {exc}")
                    continue
                if not data:
                    _fail_link(link, "connection closed by worker")
                    continue
                try:
                    docs = link.assembler.feed(data)
                except FrameError as exc:
                    _fail_link(link, f"protocol error: {exc}")
                    continue
                for doc in docs:
                    _handle(link, doc)
                    if link.sock is None:
                        break

        while True:
            while completed:
                yield completed.pop(0)
            if all(state.done for state in states.values()):
                return
            if not any(
                link.sock is not None or link.retry_at is not None
                for link in self._links
            ):
                todo = [s for s in states.values() if not s.done]
                if not coord.local_fallback:
                    raise RuntimeError(
                        f"all remote workers lost with {len(todo)} job(s) "
                        "outstanding and local fallback disabled"
                    )
                self._emit(
                    "backend_degraded",
                    detail=(
                        f"all workers lost; running {len(todo)} remaining "
                        "job(s) locally"
                    ),
                )
                for state in todo:
                    t0 = time.perf_counter()
                    result = execute_job(config, state.job)
                    state.done = True
                    yield (
                        state.job,
                        encode_result(result),
                        time.perf_counter() - t0,
                    )
                return
            _reconnects()
            _dispatch()
            _check_leases()
            _pump(_POLL_S)

"""The paper's three benchmark setups and their pair enumerations (§5.2).

* **Spark low utility** — every mid/high-power Spark workload paired with
  every low-power micro workload: 7 x 4 = 28 pairs (Appendix).
* **Spark high utility** — mid/high-power Spark workloads paired with each
  other: 7 x 7 = 49 pairs.
* **Spark NPB** — mid/high-power Spark workloads paired with NPB workloads:
  7 x 8 = 56 pairs.

The first group is compared against constant allocation, SLURM, and the
oracle; the contended groups drop the oracle, matching the paper ("an
oracle in such cases is extremely difficult" — though ours works and the
ablation benches use it there).
"""

from __future__ import annotations

from repro.workloads.registry import workload_names

__all__ = [
    "low_utility_pairs",
    "high_utility_pairs",
    "spark_npb_pairs",
    "demanding_spark_names",
    "GROUP_MANAGERS",
]

#: Managers evaluated per group, per the paper's figures.
GROUP_MANAGERS = {
    "low_utility": ("slurm", "dps", "oracle"),
    "high_utility": ("slurm", "dps"),
    "spark_npb": ("slurm", "dps"),
}


def demanding_spark_names() -> list[str]:
    """The 7 mid/high-power Spark workloads, Table 2 order."""
    return workload_names(suite="spark", power_class="mid") + workload_names(
        suite="spark", power_class="high"
    )


def low_utility_pairs() -> list[tuple[str, str]]:
    """The 28 (demanding Spark, low-power Spark) pairs."""
    demanding = demanding_spark_names()
    low = workload_names(suite="spark", power_class="low")
    return [(d, l) for d in demanding for l in low]


def high_utility_pairs() -> list[tuple[str, str]]:
    """The 49 (demanding Spark, demanding Spark) pairs, self-pairs included."""
    demanding = demanding_spark_names()
    return [(a, b) for a in demanding for b in demanding]


def spark_npb_pairs() -> list[tuple[str, str]]:
    """The 56 (demanding Spark, NPB) pairs."""
    demanding = demanding_spark_names()
    npb = workload_names(suite="npb")
    return [(s, n) for s in demanding for n in npb]

"""Experiment harness: run workload pairs under managers, normalize results.

This is the reproduction of the artifact's ``exp.py``: "one can execute one
workload with the script by specifying the workloads on two clusters
respectively, the power management system, and workload repeating times".
The harness additionally owns the two reference measurements every figure
needs:

* the **uncapped reference** of each workload (solo run with all caps at
  TDP) — the denominator of satisfaction (Eq. 1);
* the **constant-allocation baseline** of each *pair* — the denominator of
  every speedup (Appendix: "The harmonic mean throughput time of each
  workload in the Constant Allocation group will be the baseline").

Both are cached per configuration, mirroring how the paper measures its
baselines once and reuses them across figures.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass, field

from repro.cluster.simulator import Assignment, Simulation, SimulationResult
from repro.core.config import (
    ClusterSpec,
    DPSConfig,
    PerfModelConfig,
    RaplConfig,
    SimulationConfig,
    StatelessConfig,
)
from repro.core.managers import PowerManager, create_manager
from repro.metrics.fairness import fairness as fairness_fn
from repro.metrics.satisfaction import satisfaction as satisfaction_fn
from repro.metrics.speedup import hmean, paired_hmean_speedup
from repro.workloads.registry import get_workload
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "ExperimentConfig",
    "ExperimentHarness",
    "PairOutcome",
    "PairEvaluation",
    "ReferenceStats",
    "evaluate_outcome",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of one experimental campaign.

    Attributes:
        cluster: topology/budget (defaults: the paper's testbed).
        sim: step/scale/gap settings; ``time_scale`` below 1 shrinks runs.
        perf: cap-to-performance model.
        rapl: RAPL noise/lag.
        dps: DPS configuration used whenever the ``"dps"`` manager runs.
        slurm: MIMD configuration used for the ``"slurm"`` manager.
        repeats: completed runs required of each workload per simulation
            (the paper uses >= 10 on hardware; simulation variance is far
            smaller, so a handful suffices).
        seed: campaign master seed; per-(pair, manager) seeds derive from it
            deterministically.
    """

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    perf: PerfModelConfig = field(default_factory=PerfModelConfig)
    rapl: RaplConfig = field(default_factory=RaplConfig)
    dps: DPSConfig = field(default_factory=DPSConfig)
    slurm: StatelessConfig = field(default_factory=StatelessConfig)
    repeats: int = 3
    seed: int = 42

    def make_manager(self, name: str) -> PowerManager:
        """Instantiate a fresh manager with this campaign's configuration."""
        if name in ("dps", "dps+"):
            return create_manager(name, config=self.dps)
        if name in ("slurm", "hierarchical"):
            return create_manager(name, config=self.slurm)
        return create_manager(name)

    def derive_seed(self, *tokens: str) -> int:
        """Deterministic per-experiment seed from the campaign seed."""
        h = zlib.crc32("/".join(tokens).encode())
        return (self.seed * 1_000_003 + h) % (2**31 - 1)

    def to_doc(self) -> dict:
        """JSON-able document of every knob (the wire/cache form).

        Floats survive the JSON round trip exactly (shortest-repr
        serialization), so a config shipped to a remote worker produces
        the same seeds, the same simulations, and the same job digests
        as the coordinator's original.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_doc(cls, doc: dict) -> "ExperimentConfig":
        """Inverse of :meth:`to_doc` (bit-exact).

        Raises:
            KeyError / TypeError / ValueError: structurally wrong or
                out-of-range documents (validation runs in each nested
                config's ``__post_init__``).
        """
        from repro.core.config import (
            KalmanConfig,
            PriorityConfig,
            ReadjustConfig,
        )

        dps = doc["dps"]
        return cls(
            cluster=ClusterSpec(**doc["cluster"]),
            sim=SimulationConfig(**doc["sim"]),
            perf=PerfModelConfig(**doc["perf"]),
            rapl=RaplConfig(**doc["rapl"]),
            dps=DPSConfig(
                stateless=StatelessConfig(**dps["stateless"]),
                kalman=KalmanConfig(**dps["kalman"]),
                priority=PriorityConfig(**dps["priority"]),
                readjust=ReadjustConfig(**dps["readjust"]),
                use_kalman=bool(dps["use_kalman"]),
                use_frequency=bool(dps["use_frequency"]),
                # Absent in pre-decision-core documents; default matches
                # the dataclass so old cache entries round-trip.
                decision_core=str(dps.get("decision_core", "vectorized")),
            ),
            slurm=StatelessConfig(**doc["slurm"]),
            repeats=int(doc["repeats"]),
            seed=int(doc["seed"]),
        )


@dataclass(frozen=True)
class ReferenceStats:
    """Uncapped solo-run statistics of one workload.

    Attributes:
        mean_duration_s: mean throughput time with caps at TDP.
        mean_power_w: mean per-active-socket power with caps at TDP
            (Eq. 1's denominator).
    """

    mean_duration_s: float
    mean_power_w: float


@dataclass(frozen=True)
class PairOutcome:
    """Raw (un-normalized) result of one pair under one manager.

    Attributes:
        manager: manager name.
        workload_a / workload_b: the pair, half 0 / half 1.
        times_a_s / times_b_s: per-run throughput times.
        power_a_w / power_b_w: mean per-socket power over runs.
        max_caps_sum_w: budget-respect check from the simulation.
        sim_time_s: simulated duration.
    """

    manager: str
    workload_a: str
    workload_b: str
    times_a_s: tuple[float, ...]
    times_b_s: tuple[float, ...]
    power_a_w: float
    power_b_w: float
    max_caps_sum_w: float
    sim_time_s: float


@dataclass(frozen=True)
class PairEvaluation:
    """Normalized result of one pair under one manager.

    Attributes:
        outcome: the raw measurement.
        speedup_a / speedup_b: vs the pair's constant-allocation baseline.
        hmean_speedup: harmonic mean of the two speedups (Figs. 5b, 6).
        satisfaction_a / satisfaction_b: Eq. 1 values.
        fairness: Eq. 2 value of the pair.
    """

    outcome: PairOutcome
    speedup_a: float
    speedup_b: float
    hmean_speedup: float
    satisfaction_a: float
    satisfaction_b: float
    fairness: float


def evaluate_outcome(
    baseline: PairOutcome,
    outcome: PairOutcome,
    ref_a: ReferenceStats,
    ref_b: ReferenceStats,
) -> PairEvaluation:
    """Normalize one raw outcome against its baseline and references.

    This is the single normalization path: the in-process harness and the
    parallel campaign engine both call it, so records are bit-identical
    regardless of which executed the simulations.
    """
    speedup_a = hmean(baseline.times_a_s) / hmean(outcome.times_a_s)
    speedup_b = hmean(baseline.times_b_s) / hmean(outcome.times_b_s)
    sat_a = satisfaction_fn(outcome.power_a_w, ref_a.mean_power_w)
    sat_b = satisfaction_fn(outcome.power_b_w, ref_b.mean_power_w)
    return PairEvaluation(
        outcome=outcome,
        speedup_a=speedup_a,
        speedup_b=speedup_b,
        hmean_speedup=paired_hmean_speedup(speedup_a, speedup_b),
        satisfaction_a=sat_a,
        satisfaction_b=sat_b,
        fairness=fairness_fn(sat_a, sat_b),
    )


class ExperimentHarness:
    """Caching front end over the simulator for all figures and tables.

    Args:
        config: campaign configuration.
        cache: optional persistent result-cache backend (duck-typed to
            :class:`repro.experiments.engine.ResultCache`).  When set, the
            in-memory reference/baseline/pair caches are backed by it:
            lookups consult memory, then disk, and only then simulate —
            so figure scripts, sweeps, and CI re-runs only simulate what
            changed since the cache was written.
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        cache: "object | None" = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        self.cache = cache
        self._reference_cache: dict[str, ReferenceStats] = {}
        self._baseline_cache: dict[tuple[str, str], PairOutcome] = {}

    # ------------------------------------------------------------------
    # Persistent-cache plumbing
    # ------------------------------------------------------------------

    def _cache_load(self, job) -> "object | None":
        """Decoded persistent-cache result for a job, or None."""
        if self.cache is None:
            return None
        from repro.experiments.engine import (  # Local to avoid a cycle.
            decode_result,
            job_digest,
        )

        payload = self.cache.load(job_digest(self.config, job))
        if payload is None:
            return None
        try:
            return decode_result(payload)
        except (KeyError, ValueError, TypeError):
            return None

    def _cache_store(self, job, result) -> None:
        if self.cache is None:
            return
        from repro.experiments.engine import (  # Local to avoid a cycle.
            encode_result,
            job_digest,
        )

        self.cache.store(
            job_digest(self.config, job), job.key, encode_result(result)
        )

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------

    def _assign_pair(
        self, spec_a: WorkloadSpec, spec_b: WorkloadSpec
    ) -> list[Assignment]:
        """Place workload A on cluster half 0 and B on half 1."""
        from repro.cluster.cluster import Cluster  # Local to avoid cycles.

        cluster = Cluster(self.config.cluster)
        return [
            Assignment(spec=spec_a, unit_ids=cluster.half_unit_ids(0)),
            Assignment(spec=spec_b, unit_ids=cluster.half_unit_ids(1)),
        ]

    def _simulate(
        self,
        assignments: list[Assignment],
        manager: PowerManager,
        seed: int,
        cluster_spec: ClusterSpec | None = None,
        record_telemetry: bool = False,
    ) -> SimulationResult:
        sim = Simulation(
            cluster_spec=cluster_spec or self.config.cluster,
            manager=manager,
            assignments=assignments,
            target_runs=self.config.repeats,
            sim_config=self.config.sim,
            perf_config=self.config.perf,
            rapl_config=self.config.rapl,
            seed=seed,
            record_telemetry=record_telemetry,
        )
        result = sim.run()
        if result.truncated:
            names = [a.spec.name for a in assignments]
            raise RuntimeError(
                f"simulation of {names} under {manager.name} hit the "
                f"{self.config.sim.max_steps}-step limit; raise max_steps "
                "or time_scale"
            )
        return result

    # ------------------------------------------------------------------
    # Reference and baseline runs
    # ------------------------------------------------------------------

    def uncapped_reference(self, workload: str) -> ReferenceStats:
        """Solo run of a workload with every cap at TDP (cached).

        Implemented as a constant manager on a budget of 100 % of aggregate
        TDP, so the "cap" never binds — the paper's "average power under no
        cap" condition.
        """
        if workload in self._reference_cache:
            return self._reference_cache[workload]
        from repro.experiments.jobs import reference_job  # Avoid a cycle.

        cached = self._cache_load(reference_job(workload))
        if isinstance(cached, ReferenceStats):
            self._reference_cache[workload] = cached
            return cached
        spec = get_workload(workload)
        uncapped_cluster = ClusterSpec(
            n_nodes=self.config.cluster.n_nodes,
            sockets_per_node=self.config.cluster.sockets_per_node,
            tdp_w=self.config.cluster.tdp_w,
            min_cap_w=self.config.cluster.min_cap_w,
            budget_fraction=1.0,
            idle_power_w=self.config.cluster.idle_power_w,
        )
        from repro.cluster.cluster import Cluster

        cluster = Cluster(uncapped_cluster)
        assignments = [
            Assignment(spec=spec, unit_ids=cluster.half_unit_ids(0))
        ]
        result = self._simulate(
            assignments,
            self.config.make_manager("constant"),
            seed=self.config.derive_seed("reference", workload),
            cluster_spec=uncapped_cluster,
        )
        execution = result.execution(workload)
        stats = ReferenceStats(
            mean_duration_s=execution.mean_duration_s(),
            mean_power_w=execution.mean_power_w(),
        )
        self._reference_cache[workload] = stats
        self._cache_store(reference_job(workload), stats)
        return stats

    def constant_baseline(self, workload_a: str, workload_b: str) -> PairOutcome:
        """The pair's constant-allocation run (cached; the speedup baseline)."""
        key = (workload_a, workload_b)
        if key not in self._baseline_cache:
            self._baseline_cache[key] = self.run_pair(
                workload_a, workload_b, "constant"
            )
        return self._baseline_cache[key]

    # ------------------------------------------------------------------
    # Pair runs and evaluation
    # ------------------------------------------------------------------

    def run_pair(
        self,
        workload_a: str,
        workload_b: str,
        manager_name: str,
        record_telemetry: bool = False,
    ) -> PairOutcome | tuple[PairOutcome, SimulationResult]:
        """Run one pair under one manager and collect raw timings.

        Args:
            workload_a / workload_b: names, placed on halves 0 / 1.
            manager_name: registry name (``constant``/``slurm``/``oracle``/
                ``dps``).
            record_telemetry: also return the full
                :class:`SimulationResult` (with traces) alongside the
                outcome.

        Returns:
            The :class:`PairOutcome`, or ``(outcome, result)`` when
            telemetry was requested.
        """
        from repro.experiments.jobs import pair_job  # Avoid a cycle.

        job = pair_job(workload_a, workload_b, manager_name)
        if not record_telemetry:
            cached = self._cache_load(job)
            if isinstance(cached, PairOutcome):
                return cached
        spec_a = get_workload(workload_a)
        spec_b = get_workload(workload_b)
        manager = self.config.make_manager(manager_name)
        result = self._simulate(
            self._assign_pair(spec_a, spec_b),
            manager,
            seed=self.config.derive_seed(workload_a, workload_b, manager_name),
            record_telemetry=record_telemetry,
        )
        exec_a = result.execution(workload_a)
        exec_b = result.execution(workload_b)
        outcome = PairOutcome(
            manager=manager_name,
            workload_a=workload_a,
            workload_b=workload_b,
            times_a_s=tuple(r.duration_s for r in exec_a.records),
            times_b_s=tuple(r.duration_s for r in exec_b.records),
            power_a_w=exec_a.mean_power_w(),
            power_b_w=exec_b.mean_power_w(),
            max_caps_sum_w=result.max_caps_sum_w,
            sim_time_s=result.sim_time_s,
        )
        if record_telemetry:
            return outcome, result
        self._cache_store(job, outcome)
        return outcome

    def evaluate_pair(
        self, workload_a: str, workload_b: str, manager_name: str
    ) -> PairEvaluation:
        """Run (or reuse) the baseline, run the manager, normalize.

        Returns:
            A fully normalized :class:`PairEvaluation`.
        """
        baseline = self.constant_baseline(workload_a, workload_b)
        if manager_name == "constant":
            outcome = baseline
        else:
            maybe = self.run_pair(workload_a, workload_b, manager_name)
            assert isinstance(maybe, PairOutcome)
            outcome = maybe
        return evaluate_outcome(
            baseline,
            outcome,
            self.uncapped_reference(workload_a),
            self.uncapped_reference(workload_b),
        )

    def evaluate_managers(
        self,
        workload_a: str,
        workload_b: str,
        manager_names: tuple[str, ...] = ("slurm", "dps"),
    ) -> dict[str, PairEvaluation]:
        """Evaluate several managers on the same pair.

        Returns:
            Mapping manager name → :class:`PairEvaluation`.
        """
        return {
            m: self.evaluate_pair(workload_a, workload_b, m)
            for m in manager_names
        }

"""Data generators for every figure in the paper (DESIGN.md §4).

Each ``figure*`` function returns a plain dataclass of labels and numeric
series — the exact rows/series the paper plots — computed through the
harness.  Rendering to text is in :mod:`repro.experiments.reporting`; the
benchmarks call these functions directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.simulator import Assignment, Simulation
from repro.core.config import ClusterSpec
from repro.experiments.harness import ExperimentConfig, ExperimentHarness
from repro.experiments.setups import (
    demanding_spark_names,
    low_utility_pairs,
    spark_npb_pairs,
)
from repro.metrics.fairness import fairness_performance_correlation
from repro.metrics.speedup import hmean
from repro.workloads.registry import get_workload, workload_names

__all__ = [
    "Figure1Data",
    "FigureBars",
    "Figure7Data",
    "figure1",
    "figure2",
    "figure4",
    "figure5a",
    "figure5b",
    "figure6",
    "figure7",
]


# ---------------------------------------------------------------------------
# Figure 1 — motivational two-node example
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure1Data:
    """Cap schedules of the motivational example (paper Figure 1).

    Attributes:
        timesteps: the T0..T4 axis.
        demand: true per-node demand at each timestep, shape ``(T, 2)``.
        caps: manager name → cap matrix, shape ``(T, 2)``.
        budget_w: the two-node budget.
    """

    timesteps: tuple[int, ...]
    demand: np.ndarray
    caps: dict[str, np.ndarray]
    budget_w: float


def figure1(
    managers: tuple[str, ...] = ("constant", "oracle", "slurm", "dps"),
    config: ExperimentConfig | None = None,
) -> Figure1Data:
    """Re-create the Figure 1 scenario by direct manager stepping.

    Two nodes; node 0 raises its demand to maximum at T1, node 1 follows at
    T3; the budget covers 1.5x the per-node maximum, so once both are high
    the budget binds.  Managers are stepped on the *true* power sequence
    that results from their own caps (a 2-unit closed loop without noise),
    exposing exactly the stateless-starvation story of the figure.
    """
    cfg = config or ExperimentConfig()
    max_w, low_w = 160.0, 30.0
    budget = 1.5 * max_w
    # Demand per node per timestep (T0..T4): node 0 rises at T1, node 1 at T3.
    demand = np.array(
        [
            [low_w, low_w],
            [max_w, low_w],
            [max_w, low_w],
            [max_w, max_w],
            [max_w, max_w],
        ]
    )
    # Give the stateful manager a short prefix so its history exists,
    # mirroring the paper's assumption of an already-running system.  The
    # prefix demand sits just under the initial cap's decrease threshold so
    # no manager walks its caps down before T0 (the figure starts from the
    # constant allocation, per the paper's top row).
    warmup = 6
    warmup_w = budget / 2 * 0.9
    full_demand = np.vstack([np.full((warmup, 2), warmup_w), demand])

    caps_out: dict[str, np.ndarray] = {}
    for name in managers:
        manager = cfg.make_manager(name)
        manager.bind(
            n_units=2,
            budget_w=budget,
            max_cap_w=max_w,
            min_cap_w=0.0,
            dt_s=1.0,
            rng=np.random.default_rng(cfg.derive_seed("figure1", name)),
        )
        trajectory = []
        caps = np.asarray(manager.caps)
        for t in range(full_demand.shape[0]):
            power = np.minimum(full_demand[t], caps)
            caps = manager.step(power, full_demand[t])
            trajectory.append(caps.copy())
        caps_out[name] = np.asarray(trajectory[warmup:])
    return Figure1Data(
        timesteps=tuple(range(demand.shape[0])),
        demand=demand,
        caps=caps_out,
        budget_w=budget,
    )


# ---------------------------------------------------------------------------
# Figure 2 — uncapped power phases
# ---------------------------------------------------------------------------


def figure2(
    workloads: tuple[str, ...] = ("lda", "bayes", "lr"),
    config: ExperimentConfig | None = None,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Measured uncapped power traces of the Figure 2 applications.

    Each workload runs solo with every cap at TDP; the returned trace is one
    active socket's true power over time — the same measurement the paper
    plots.

    Returns:
        Mapping workload name → ``(time_s, power_w)``.
    """
    cfg = config or ExperimentConfig()
    uncapped = ClusterSpec(
        n_nodes=cfg.cluster.n_nodes,
        sockets_per_node=cfg.cluster.sockets_per_node,
        tdp_w=cfg.cluster.tdp_w,
        min_cap_w=cfg.cluster.min_cap_w,
        budget_fraction=1.0,
        idle_power_w=cfg.cluster.idle_power_w,
    )
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name in workloads:
        from repro.cluster.cluster import Cluster

        cluster = Cluster(uncapped)
        sim = Simulation(
            cluster_spec=uncapped,
            manager=cfg.make_manager("constant"),
            assignments=[
                Assignment(
                    spec=get_workload(name),
                    unit_ids=cluster.half_unit_ids(0),
                )
            ],
            target_runs=1,
            sim_config=cfg.sim,
            perf_config=cfg.perf,
            rapl_config=cfg.rapl,
            seed=cfg.derive_seed("figure2", name),
            record_telemetry=True,
        )
        result = sim.run()
        assert result.telemetry is not None
        out[name] = (result.telemetry.time_s, result.telemetry.power_w[:, 0])
    return out


# ---------------------------------------------------------------------------
# Bar figures (4, 5, 6): per-workload hmean speedups per manager
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FigureBars:
    """A grouped-bar figure: one value per (workload label, manager).

    Attributes:
        labels: x-axis workload labels, in order.
        series: manager name → per-label speedups (aligned with labels).
        pair_values: manager name → {(a, b) pair → hmean speedup}; the raw
            per-pair values the bars aggregate, kept for the summary-stat
            assertions (e.g. "DPS outperforms SLURM ... mean 8.0 %").
    """

    labels: tuple[str, ...]
    series: dict[str, tuple[float, ...]]
    pair_values: dict[str, dict[tuple[str, str], float]] = field(
        default_factory=dict
    )


def figure4(
    harness: ExperimentHarness,
    managers: tuple[str, ...] = ("slurm", "dps", "oracle"),
    pairs: list[tuple[str, str]] | None = None,
) -> FigureBars:
    """Figure 4: Spark low-utility hmean gain, grouped by demanding workload.

    Each demanding workload is paired with every low-power micro workload;
    the bar is the harmonic mean of the demanding workload's speedups over
    its pairs, normalized to constant allocation.
    """
    pair_list = pairs if pairs is not None else low_utility_pairs()
    labels = tuple(dict.fromkeys(a for a, _ in pair_list))
    series: dict[str, tuple[float, ...]] = {}
    pair_values: dict[str, dict[tuple[str, str], float]] = {}
    for manager in managers:
        per_label: dict[str, list[float]] = {l: [] for l in labels}
        raw: dict[tuple[str, str], float] = {}
        for a, b in pair_list:
            ev = harness.evaluate_pair(a, b, manager)
            per_label[a].append(ev.speedup_a)
            raw[(a, b)] = ev.hmean_speedup
        series[manager] = tuple(hmean(per_label[l]) for l in labels)
        pair_values[manager] = raw
    return FigureBars(labels=labels, series=series, pair_values=pair_values)


def figure5a(
    harness: ExperimentHarness,
    managers: tuple[str, ...] = ("slurm", "dps"),
    mid_workloads: tuple[str, ...] | None = None,
) -> FigureBars:
    """Figure 5(a): each mid-power workload's own speedup when paired with
    the high-power workload (GMM)."""
    mids = (
        mid_workloads
        if mid_workloads is not None
        else tuple(workload_names(suite="spark", power_class="mid"))
    )
    series: dict[str, tuple[float, ...]] = {}
    pair_values: dict[str, dict[tuple[str, str], float]] = {}
    for manager in managers:
        vals = []
        raw: dict[tuple[str, str], float] = {}
        for mid in mids:
            ev = harness.evaluate_pair(mid, "gmm", manager)
            vals.append(ev.speedup_a)
            raw[(mid, "gmm")] = ev.hmean_speedup
        series[manager] = tuple(vals)
        pair_values[manager] = raw
    return FigureBars(labels=mids, series=series, pair_values=pair_values)


def figure5b(
    harness: ExperimentHarness,
    managers: tuple[str, ...] = ("slurm", "dps"),
    workloads: tuple[str, ...] | None = None,
) -> FigureBars:
    """Figure 5(b): harmonic mean of each workload's and its paired GMM's
    speedups."""
    loads = (
        workloads
        if workloads is not None
        else tuple(demanding_spark_names())
    )
    series: dict[str, tuple[float, ...]] = {}
    pair_values: dict[str, dict[tuple[str, str], float]] = {}
    for manager in managers:
        vals = []
        raw: dict[tuple[str, str], float] = {}
        for w in loads:
            ev = harness.evaluate_pair(w, "gmm", manager)
            vals.append(ev.hmean_speedup)
            raw[(w, "gmm")] = ev.hmean_speedup
        series[manager] = tuple(vals)
        pair_values[manager] = raw
    return FigureBars(labels=loads, series=series, pair_values=pair_values)


def figure6(
    harness: ExperimentHarness,
    managers: tuple[str, ...] = ("slurm", "dps"),
    pairs: list[tuple[str, str]] | None = None,
) -> tuple[FigureBars, FigureBars]:
    """Figure 6: Spark x NPB paired hmean gains.

    Returns:
        ``(by_spark, by_npb)`` — the same per-pair hmean speedups grouped by
        the Spark workload (a) and by the NPB workload (b).
    """
    pair_list = pairs if pairs is not None else spark_npb_pairs()
    spark_labels = tuple(dict.fromkeys(a for a, _ in pair_list))
    npb_labels = tuple(dict.fromkeys(b for _, b in pair_list))

    series_spark: dict[str, tuple[float, ...]] = {}
    series_npb: dict[str, tuple[float, ...]] = {}
    pair_values: dict[str, dict[tuple[str, str], float]] = {}
    for manager in managers:
        by_spark: dict[str, list[float]] = {l: [] for l in spark_labels}
        by_npb: dict[str, list[float]] = {l: [] for l in npb_labels}
        raw: dict[tuple[str, str], float] = {}
        for a, b in pair_list:
            ev = harness.evaluate_pair(a, b, manager)
            by_spark[a].append(ev.hmean_speedup)
            by_npb[b].append(ev.hmean_speedup)
            raw[(a, b)] = ev.hmean_speedup
        series_spark[manager] = tuple(hmean(by_spark[l]) for l in spark_labels)
        series_npb[manager] = tuple(hmean(by_npb[l]) for l in npb_labels)
        pair_values[manager] = raw
    return (
        FigureBars(
            labels=spark_labels, series=series_spark, pair_values=pair_values
        ),
        FigureBars(
            labels=npb_labels, series=series_npb, pair_values=pair_values
        ),
    )


# ---------------------------------------------------------------------------
# Figure 7 — fairness distributions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure7Data:
    """Fairness of the contended workload groups (paper Figure 7 / §6.4).

    Attributes:
        fairness: manager → per-pair fairness values.
        hmean_speedups: manager → matching per-pair hmean speedups.
        mean_fairness: manager → mean fairness.
        correlation: manager → Pearson correlation between fairness and
            hmean speedup (the §6.4 observation).
    """

    fairness: dict[str, tuple[float, ...]]
    hmean_speedups: dict[str, tuple[float, ...]]
    mean_fairness: dict[str, float]
    correlation: dict[str, float]


def figure7(
    harness: ExperimentHarness,
    managers: tuple[str, ...] = ("slurm", "dps"),
    pairs: list[tuple[str, str]] | None = None,
) -> Figure7Data:
    """Fairness distribution over the high-utility (+ optionally Spark-NPB)
    pairs.

    Args:
        harness: the campaign harness.
        managers: managers to compare.
        pairs: pair list; defaults to every demanding workload paired with
            GMM plus a Spark x NPB sample (the groups of Figure 7).
    """
    if pairs is None:
        pairs = [(w, "gmm") for w in demanding_spark_names()] + [
            (w, n)
            for w in ("kmeans", "lr")
            for n in ("ep", "ft")
        ]
    fairness_out: dict[str, tuple[float, ...]] = {}
    speedups_out: dict[str, tuple[float, ...]] = {}
    means: dict[str, float] = {}
    corr: dict[str, float] = {}
    for manager in managers:
        f_vals, s_vals = [], []
        for a, b in pairs:
            ev = harness.evaluate_pair(a, b, manager)
            f_vals.append(ev.fairness)
            s_vals.append(ev.hmean_speedup)
        fairness_out[manager] = tuple(f_vals)
        speedups_out[manager] = tuple(s_vals)
        means[manager] = float(np.mean(f_vals))
        corr[manager] = fairness_performance_correlation(
            np.asarray(f_vals), np.asarray(s_vals)
        )
    return Figure7Data(
        fairness=fairness_out,
        hmean_speedups=speedups_out,
        mean_fairness=means,
        correlation=corr,
    )

"""Parameter sweeps the paper could not afford (§6 preamble).

The paper notes that "experiments with multiple power limits lower than
the TDP can provide a more comprehensive evaluation of DPS", but ran only
the 66.7 % budget because each configuration costs >1,000 machine-hours.
The simulator removes that constraint; this module provides:

* :func:`budget_sweep` — the manager comparison across cluster budget
  fractions, exposing where dynamic management matters most (tight
  budgets) and where every manager converges (ample budgets);
* :func:`noise_sweep` — DPS robustness across RAPL measurement-noise
  levels (complements the Kalman ablation).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.config import ClusterSpec, RaplConfig
from repro.experiments.harness import ExperimentConfig, ExperimentHarness

__all__ = ["SweepPoint", "budget_sweep", "noise_sweep"]


def _point_evaluations(
    point_config: ExperimentConfig,
    pair: tuple[str, str],
    managers: tuple[str, ...],
    cache: object | None,
    jobs: int,
    backend: object | None,
) -> dict:
    """Evaluate one sweep point's managers, sequentially or engine-fanned.

    The engine path (``jobs != 1`` or an explicit backend) runs every
    manager's simulations through one
    :class:`~repro.experiments.engine.ExperimentEngine` run — references
    and the baseline are shared across managers — and is bit-identical
    to the sequential harness path.
    """
    from repro.experiments.harness import evaluate_outcome

    if jobs == 1 and backend is None:
        harness = ExperimentHarness(point_config, cache=cache)
        return {
            manager: harness.evaluate_pair(pair[0], pair[1], manager)
            for manager in managers
        }
    from repro.experiments.engine import ExperimentEngine
    from repro.experiments.jobs import (
        baseline_job,
        evaluation_jobs,
        pair_job,
        reference_job,
    )

    engine = ExperimentEngine(
        point_config, jobs=jobs, cache=cache, backend=backend
    )
    sim_jobs = []
    for manager in managers:
        sim_jobs.extend(evaluation_jobs(pair[0], pair[1], manager))
    results = engine.run(sim_jobs)
    a, b = pair
    baseline = results[baseline_job(a, b)]
    ref_a = results[reference_job(a)]
    ref_b = results[reference_job(b)]
    return {
        manager: evaluate_outcome(
            baseline,
            baseline
            if manager == "constant"
            else results[pair_job(a, b, manager)],
            ref_a,
            ref_b,
        )
        for manager in managers
    }


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, manager) measurement of a sweep.

    Attributes:
        parameter: swept value (budget fraction or noise std).
        manager: manager name.
        hmean_speedup: paired harmonic-mean speedup vs constant allocation
            *at the same parameter value*.
        fairness: Eq. 2 fairness of the pair.
    """

    parameter: float
    manager: str
    hmean_speedup: float
    fairness: float


def budget_sweep(
    config: ExperimentConfig,
    pair: tuple[str, str] = ("kmeans", "gmm"),
    budget_fractions: tuple[float, ...] = (0.5, 0.6, 2 / 3, 0.8, 0.9),
    managers: tuple[str, ...] = ("slurm", "dps"),
    cache: object | None = None,
    jobs: int = 1,
    backend: object | None = None,
) -> list[SweepPoint]:
    """Compare managers across cluster budget fractions.

    Each budget fraction gets its own constant-allocation baseline (the
    per-socket constant cap moves with the budget), exactly as the paper
    normalizes within its single 66.7 % configuration.

    Args:
        config: base campaign configuration (cluster/sim/perf settings).
        pair: the workload pair swept.
        budget_fractions: cluster budget as fractions of aggregate TDP.
        managers: managers evaluated at each point.
        cache: optional persistent result cache shared by every point
            (each point's config replaces knobs, so digests stay distinct).
        jobs: engine worker-process count per point; 1 runs the
            sequential harness path (bit-identical either way).
        backend: optional
            :class:`~repro.experiments.engine.ExecutionBackend` shared
            by every point (the engine restarts it per point).

    Returns:
        One :class:`SweepPoint` per (fraction, manager), sweep order.
    """
    if not budget_fractions:
        raise ValueError("budget_fractions must be non-empty")
    points = []
    for fraction in budget_fractions:
        if not 0 < fraction <= 1:
            raise ValueError(
                f"budget fractions must be in (0, 1], got {fraction}"
            )
        cluster = ClusterSpec(
            n_nodes=config.cluster.n_nodes,
            sockets_per_node=config.cluster.sockets_per_node,
            tdp_w=config.cluster.tdp_w,
            min_cap_w=config.cluster.min_cap_w,
            budget_fraction=fraction,
            idle_power_w=config.cluster.idle_power_w,
        )
        evals = _point_evaluations(
            dataclasses.replace(config, cluster=cluster),
            pair,
            managers,
            cache,
            jobs,
            backend,
        )
        for manager in managers:
            ev = evals[manager]
            points.append(
                SweepPoint(
                    parameter=fraction,
                    manager=manager,
                    hmean_speedup=ev.hmean_speedup,
                    fairness=ev.fairness,
                )
            )
    return points


def noise_sweep(
    config: ExperimentConfig,
    pair: tuple[str, str] = ("kmeans", "gmm"),
    noise_stds_w: tuple[float, ...] = (0.0, 1.5, 4.0, 8.0, 16.0),
    managers: tuple[str, ...] = ("slurm", "dps"),
    cache: object | None = None,
    jobs: int = 1,
    backend: object | None = None,
) -> list[SweepPoint]:
    """Compare managers across RAPL measurement-noise levels.

    Args:
        config: base campaign configuration.
        pair: the workload pair swept.
        noise_stds_w: Gaussian measurement-noise standard deviations.
        managers: managers evaluated at each point.
        cache: optional persistent result cache shared by every point.
        jobs: engine worker-process count per point; 1 runs the
            sequential harness path (bit-identical either way).
        backend: optional
            :class:`~repro.experiments.engine.ExecutionBackend` shared
            by every point (the engine restarts it per point).

    Returns:
        One :class:`SweepPoint` per (noise, manager), sweep order.
    """
    if not noise_stds_w:
        raise ValueError("noise_stds_w must be non-empty")
    points = []
    for noise in noise_stds_w:
        if noise < 0:
            raise ValueError(f"noise stds must be >= 0, got {noise}")
        rapl = RaplConfig(
            noise_std_w=noise,
            lag_tau_s=config.rapl.lag_tau_s,
            counter_wrap_uj=config.rapl.counter_wrap_uj,
        )
        evals = _point_evaluations(
            dataclasses.replace(config, rapl=rapl),
            pair,
            managers,
            cache,
            jobs,
            backend,
        )
        for manager in managers:
            ev = evals[manager]
            points.append(
                SweepPoint(
                    parameter=noise,
                    manager=manager,
                    hmean_speedup=ev.hmean_speedup,
                    fairness=ev.fairness,
                )
            )
    return points

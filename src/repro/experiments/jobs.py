"""Simulation job specs and the campaign job graph.

A campaign is >100 (group, pair, manager) evaluations, but the simulations
behind them are heavily shared: every evaluation of a pair divides by the
same constant-allocation baseline, and every satisfaction number divides by
the per-*workload* uncapped reference.  This module turns a campaign into
an explicit, deduplicated set of :class:`SimJob` descriptions — small,
picklable, order-able value objects the parallel engine can fan out over a
process pool — plus the dependency bookkeeping that orders them into
waves (prerequisites before the evaluations that normalize against them).

Job kinds
---------

``reference``
    Uncapped solo run of one workload (caps at TDP) — the denominator of
    satisfaction (Eq. 1).  Needed once per distinct workload.
``baseline``
    Constant-allocation run of a pair — the denominator of every speedup.
    Needed once per distinct pair.
``pair``
    One pair under one non-constant manager — the actual evaluation run.

Each job names exactly one :class:`~repro.cluster.simulator.Simulation`;
its seed derives deterministically from the campaign seed and the job's
workload/manager names (``ExperimentConfig.derive_seed``, exactly as the
sequential harness derives them), so the same job always runs the same
simulation regardless of which worker executes it or in which order.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SimJob",
    "reference_job",
    "baseline_job",
    "pair_job",
    "evaluation_jobs",
    "JobGraph",
]

#: Job kinds with no prerequisites (wave 0).
_PREREQ_KINDS = ("reference", "baseline")


@dataclass(frozen=True, order=True)
class SimJob:
    """One simulation a campaign needs, as a picklable value object.

    Attributes:
        kind: ``"reference"``, ``"baseline"``, or ``"pair"``.
        workload_a: first (or only, for references) workload name.
        workload_b: second workload name (empty for references).
        manager: manager registry name (``"constant"`` for references and
            baselines).
    """

    kind: str
    workload_a: str
    workload_b: str = ""
    manager: str = "constant"

    def __post_init__(self) -> None:
        if self.kind not in ("reference", "baseline", "pair"):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if not self.workload_a:
            raise ValueError("workload_a must be non-empty")
        if self.kind == "reference" and self.workload_b:
            raise ValueError("reference jobs take a single workload")
        if self.kind in ("baseline", "pair") and not self.workload_b:
            raise ValueError(f"{self.kind} jobs need a workload pair")
        if self.kind in ("reference", "baseline") and self.manager != "constant":
            raise ValueError(
                f"{self.kind} jobs always run the constant manager, "
                f"got {self.manager!r}"
            )
        if self.kind == "pair" and self.manager == "constant":
            raise ValueError(
                "a constant pair run IS the baseline; use baseline_job()"
            )

    @property
    def key(self) -> str:
        """Stable human-readable identity, e.g. ``pair:kmeans/gmm:dps``."""
        if self.kind == "reference":
            return f"reference:{self.workload_a}"
        return f"{self.kind}:{self.workload_a}/{self.workload_b}:{self.manager}"

    @property
    def tokens(self) -> tuple[str, ...]:
        """The digest/seed token tuple identifying this job's simulation."""
        if self.kind == "reference":
            return ("reference", self.workload_a)
        return (self.kind, self.workload_a, self.workload_b, self.manager)

    @classmethod
    def from_tokens(cls, tokens: "tuple[str, ...] | list[str]") -> "SimJob":
        """Reconstruct a job from its :attr:`tokens` (the wire form).

        Raises:
            ValueError: token tuple of the wrong arity or content
                (validation runs in ``__post_init__``).
        """
        tokens = tuple(str(t) for t in tokens)
        if len(tokens) == 2 and tokens[0] == "reference":
            return cls(kind="reference", workload_a=tokens[1])
        if len(tokens) == 4:
            return cls(
                kind=tokens[0],
                workload_a=tokens[1],
                workload_b=tokens[2],
                manager=tokens[3],
            )
        raise ValueError(f"malformed job tokens {tokens!r}")

    def prerequisites(self) -> tuple["SimJob", ...]:
        """Jobs whose results this job's *evaluation* normalizes against.

        The simulations themselves are shared-nothing; the dependency is in
        the downstream math (speedups divide by the baseline, satisfactions
        by the references), so evaluations are scheduled a wave after their
        prerequisites and the normalization never waits mid-wave.
        """
        if self.kind in _PREREQ_KINDS:
            return ()
        return (
            baseline_job(self.workload_a, self.workload_b),
            reference_job(self.workload_a),
            reference_job(self.workload_b),
        )


def reference_job(workload: str) -> SimJob:
    """The uncapped solo reference run of one workload."""
    return SimJob(kind="reference", workload_a=workload)


def baseline_job(workload_a: str, workload_b: str) -> SimJob:
    """The constant-allocation baseline run of one pair."""
    return SimJob(kind="baseline", workload_a=workload_a, workload_b=workload_b)


def pair_job(workload_a: str, workload_b: str, manager: str) -> SimJob:
    """One pair under one non-constant manager.

    A request for the ``constant`` manager resolves to the baseline job —
    the evaluation reuses the baseline outcome rather than re-running it.
    """
    if manager == "constant":
        return baseline_job(workload_a, workload_b)
    return SimJob(
        kind="pair",
        workload_a=workload_a,
        workload_b=workload_b,
        manager=manager,
    )


def evaluation_jobs(
    workload_a: str, workload_b: str, manager: str
) -> tuple[SimJob, ...]:
    """Every job one (pair, manager) evaluation needs, prerequisites first."""
    run = pair_job(workload_a, workload_b, manager)
    return (*run.prerequisites(), run) if run.kind == "pair" else (
        run,
        reference_job(workload_a),
        reference_job(workload_b),
    )


class JobGraph:
    """Deduplicated job set with dependency-aware wave ordering.

    Args:
        jobs: any iterable of :class:`SimJob` (duplicates collapse; first
            occurrence wins the ordering within a wave).  Prerequisites of
            listed jobs are added implicitly so the graph is always closed.
    """

    def __init__(self, jobs) -> None:
        ordered: dict[SimJob, None] = {}
        for job in jobs:
            for dep in job.prerequisites():
                ordered.setdefault(dep, None)
            ordered.setdefault(job, None)
        self._jobs = tuple(ordered)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self):
        return iter(self._jobs)

    @property
    def jobs(self) -> tuple[SimJob, ...]:
        """All jobs, deduplicated, prerequisites-closed."""
        return self._jobs

    def waves(self) -> tuple[tuple[SimJob, ...], ...]:
        """Topological layering of the graph.

        Kahn-style: wave ``k`` holds every job whose prerequisites all sit
        in earlier waves.  With the current three job kinds this is exactly
        two waves (references + baselines, then manager runs), but the
        layering is computed, not assumed, so richer graphs keep working.
        """
        placed: dict[SimJob, int] = {}
        remaining = list(self._jobs)
        waves: list[tuple[SimJob, ...]] = []
        while remaining:
            ready = [
                j
                for j in remaining
                if all(dep in placed for dep in j.prerequisites())
            ]
            if not ready:  # pragma: no cover - guarded by SimJob validation
                raise ValueError(
                    f"dependency cycle among {[j.key for j in remaining]}"
                )
            for j in ready:
                placed[j] = len(waves)
            waves.append(tuple(ready))
            remaining = [j for j in remaining if j not in placed]
        return tuple(waves)

"""Command-line entry point (the artifact's ``exp.py`` / plot scripts).

Examples::

    dps-repro pair kmeans gmm --manager dps --manager slurm
    dps-repro figure fig1
    dps-repro figure fig4 --time-scale 0.25 --repeats 2
    dps-repro tables
    dps-repro overhead
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.config import SimulationConfig
from repro.experiments import figures as figmod
from repro.experiments import reporting, tables as tabmod
from repro.experiments.harness import ExperimentConfig, ExperimentHarness

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="dps-repro",
        description=(
            "Reproduction of DPS: Adaptive Power Management for "
            "Overprovisioned Systems (SC '23)"
        ),
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=0.25,
        help="workload duration multiplier (1.0 = paper-scale runs)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="runs per workload per pair"
    )
    parser.add_argument("--seed", type=int, default=42, help="campaign seed")

    sub = parser.add_subparsers(dest="command", required=True)

    pair = sub.add_parser("pair", help="run one workload pair")
    pair.add_argument("workload_a")
    pair.add_argument("workload_b")
    pair.add_argument(
        "--manager",
        action="append",
        default=None,
        help="manager to evaluate (repeatable; default slurm + dps)",
    )
    pair.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help=(
            "inject faults: comma-separated stuck/dropout/spike "
            "probabilities and a node-kill schedule, e.g. "
            "'stuck=0.05,dropout=0.05,spike=0.02,kill=1@30-60+2@45' "
            "(kill is node@start[-end] in sim seconds; no end = permanent)"
        ),
    )
    pair.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="PATH",
        help=(
            "run the controller checkpointed: journal every cycle and "
            "write durable snapshots under PATH (one subdirectory per "
            "manager); a crashed run continues with `dps-repro resume "
            "PATH`"
        ),
    )
    pair.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        metavar="N",
        help="control cycles between checkpoint generations (default 10)",
    )

    fig = sub.add_parser("figure", help="regenerate one figure's data")
    fig.add_argument(
        "which",
        choices=["fig1", "fig2", "fig4", "fig5a", "fig5b", "fig6", "fig7"],
    )

    sub.add_parser("tables", help="regenerate Tables 2-4")
    sub.add_parser("overhead", help="run the §6.5 overhead analysis")
    sub.add_parser("list", help="list workloads and managers")

    camp = sub.add_parser(
        "campaign", help="run benchmark groups end to end (run_experiment.sh)"
    )
    camp.add_argument(
        "--group",
        action="append",
        choices=["low_utility", "high_utility", "spark_npb"],
        default=None,
        help="group to run (repeatable; default all three)",
    )
    camp.add_argument(
        "--limit-pairs",
        type=int,
        default=None,
        help="cap on pairs per group (smoke-campaign mode)",
    )
    camp.add_argument(
        "--out", default=None, help="write the campaign JSON to this path"
    )
    camp.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the parallel engine (default 1 = inline; "
            "records are bit-identical for any value)"
        ),
    )
    camp.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "persistent result cache: finished simulations are stored "
            "under PATH keyed by a config+job digest, so re-running the "
            "campaign only simulates what changed"
        ),
    )
    _add_worker_options(camp)

    sweep = sub.add_parser(
        "sweep", help="budget/noise sweeps the paper could not afford"
    )
    sweep.add_argument("which", choices=["budget", "noise"])
    sweep.add_argument("--pair", nargs=2, default=["kmeans", "gmm"])
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per sweep point (default 1 = inline)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persistent result cache shared by every sweep point",
    )
    _add_worker_options(sweep)

    worker = sub.add_parser(
        "worker",
        help="serve campaign jobs to a distributed coordinator",
        description=(
            "Run one remote execution node for `campaign --workers` / "
            "`sweep --workers`.  The worker listens on ADDRESS, verifies "
            "every leased job's digest against its own config and code "
            "version, heartbeats while simulating, and keeps serving "
            "across coordinator reconnects."
        ),
    )
    worker.add_argument(
        "address",
        metavar="HOST:PORT",
        help="bind address (port 0 picks a free port and prints it)",
    )
    worker.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "worker-side persistent result cache (point several workers "
            "at a shared directory to deduplicate across campaigns)"
        ),
    )
    worker.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="exit after completing N jobs (tests/demos)",
    )
    worker.add_argument(
        "--concurrency",
        type=int,
        default=1,
        metavar="N",
        help=(
            "jobs to run at once (thread-per-job with shared heartbeats; "
            "the coordinator fills up to N leases on this worker)"
        ),
    )
    worker.add_argument(
        "--chaos-kill-after",
        type=int,
        default=0,
        metavar="N",
        help="fault injection: crash (RST, no farewell) after N jobs",
    )
    worker.add_argument(
        "--chaos-hang-before",
        type=int,
        default=0,
        metavar="N",
        help="fault injection: go silent before serving the Nth job",
    )
    worker.add_argument(
        "--chaos-hang-for",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="duration of the injected hang (default 30)",
    )

    shards = sub.add_parser(
        "shards",
        help="run the sharded control plane over loopback TCP",
        description=(
            "Run N shard servers (each a crash-recoverable deploy "
            "server owning a slice of a simulated cluster) under one "
            "budget arbiter, with optional shard-level chaos.  Every "
            "failure and recovery step is reported from the structured "
            "event log."
        ),
    )
    shards.add_argument(
        "--shards", type=int, default=4, metavar="N", help="shard servers"
    )
    shards.add_argument(
        "--nodes", type=int, default=16, metavar="N", help="cluster nodes"
    )
    shards.add_argument(
        "--cycles", type=int, default=24, metavar="N", help="control cycles"
    )
    shards.add_argument(
        "--manager",
        default="constant",
        help="power manager every shard runs (default constant)",
    )
    shards.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="PATH",
        help=(
            "shard + arbiter checkpoint root (default: a temporary "
            "directory discarded after the run)"
        ),
    )
    shards.add_argument(
        "--kill",
        action="append",
        default=None,
        metavar="SHARD@CYCLE",
        help="crash a shard's controller at a cycle (repeatable)",
    )
    shards.add_argument(
        "--hang",
        action="append",
        default=None,
        metavar="SHARD@CYCLE",
        help="hang a shard's controller at a cycle (repeatable)",
    )
    shards.add_argument(
        "--partition",
        action="append",
        default=None,
        metavar="SHARD@START-END",
        help="sever a shard's arbiter link over a cycle range (repeatable)",
    )
    shards.add_argument(
        "--arbiter-outage",
        default=None,
        metavar="START-END",
        help="kill the arbiter at START and restart it from checkpoint at END",
    )
    shards.add_argument(
        "--lease-timeline",
        default=None,
        metavar="PATH",
        help="write the per-shard lease timeline (.json or .csv by suffix)",
    )
    shards.add_argument(
        "--mode",
        choices=("thread", "process"),
        default="thread",
        help=(
            "thread: in-process shards over loopback links; process: "
            "each shard a real `shard-server` subprocess behind TCP"
        ),
    )
    shards.add_argument(
        "--codec",
        choices=("json", "binary"),
        default="json",
        help=(
            "clock-plane bulk encoding in process mode: json float "
            "lists or raw binary array frames"
        ),
    )
    shards.add_argument(
        "--admit-at",
        type=int,
        default=None,
        metavar="CYCLE",
        help="admit one extra shard live at CYCLE (process mode)",
    )
    shards.add_argument(
        "--drain",
        action="append",
        default=None,
        metavar="SHARD@CYCLE",
        help="drain a shard gracefully (SIGTERM) at a cycle (process mode)",
    )

    shard_server = sub.add_parser(
        "shard-server",
        help="host one shard of the control plane behind a TCP listener",
        description=(
            "Run a single shard server as its own OS process: a private "
            "sub-cluster, a crash-recoverable controller, and one TCP "
            "listener serving the supervisor's clock and the arbiter's "
            "shard link.  SIGTERM triggers a graceful drain (checkpoint, "
            "freeze at the last confirmed committed power, final "
            "summary, exit 0).  Normally spawned by `shards "
            "--mode process`, not by hand."
        ),
    )
    from repro.shard.process import add_shard_server_args

    add_shard_server_args(shard_server)

    report = sub.add_parser(
        "report", help="render a saved campaign JSON as markdown"
    )
    report.add_argument("campaign_json", help="path from `campaign --out`")

    resume = sub.add_parser(
        "resume",
        help="continue a checkpointed `pair --checkpoint-dir` session",
    )
    resume.add_argument(
        "checkpoint_dir",
        help="the --checkpoint-dir of the interrupted pair run",
    )
    return parser


def _add_worker_options(cmd: argparse.ArgumentParser) -> None:
    """Distributed-execution options shared by campaign and sweep."""
    cmd.add_argument(
        "--workers",
        default=None,
        metavar="HOST:PORT,...",
        help=(
            "lease jobs to these `dps-repro worker` processes instead of "
            "the local pool; unreachable workers are warned about and "
            "skipped, and if every worker is lost the remaining jobs run "
            "locally (records are bit-identical either way)"
        ),
    )
    cmd.add_argument(
        "--worker-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "lease timeout: a worker silent this long forfeits its job, "
            "which is re-dispatched elsewhere (default 30)"
        ),
    )
    cmd.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help=(
            "consecutive failures before a worker is given up on, and "
            "re-dispatches before a job falls back to local execution "
            "(default 3)"
        ),
    )


def _make_backend(args: argparse.Namespace) -> "object | None":
    """A DistributedBackend from --workers, or None for the local pool."""
    if getattr(args, "workers", None) is None:
        return None
    from repro.experiments.distributed import (
        CoordinatorConfig,
        DistributedBackend,
        parse_workers,
    )

    try:
        addresses = parse_workers(args.workers)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.worker_timeout <= 0:
        raise SystemExit(
            f"--worker-timeout must be > 0, got {args.worker_timeout}"
        )
    if args.max_retries < 1:
        raise SystemExit(f"--max-retries must be >= 1, got {args.max_retries}")
    coordinator = CoordinatorConfig(
        lease_timeout_s=args.worker_timeout,
        heartbeat_s=min(0.5, args.worker_timeout / 4),
        max_retries=args.max_retries,
        seed=args.seed,
    )

    def _on_event(event) -> None:
        stream = sys.stderr if event.kind == "worker_skipped" else sys.stdout
        prefix = "warning: " if event.kind == "worker_skipped" else ""
        print(f"  {prefix}[{event.kind}] {event.detail}", file=stream)

    return DistributedBackend(
        addresses, coordinator=coordinator, on_event=_on_event
    )


def _cmd_worker(args: argparse.Namespace) -> str:
    from repro.experiments.distributed import (
        DistributedWorker,
        WorkerChaos,
        _split_address,
    )

    try:
        host, port = _split_address(args.address)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    cache = None
    if args.cache_dir is not None:
        from repro.experiments.engine import ResultCache

        cache = ResultCache(args.cache_dir)
    chaos = WorkerChaos(
        kill_after_jobs=args.chaos_kill_after,
        hang_before_job=args.chaos_hang_before,
        hang_s=args.chaos_hang_for,
    )

    def _log(line: str) -> None:
        print(line, flush=True)

    if args.concurrency < 1:
        raise SystemExit(f"--concurrency must be >= 1, got {args.concurrency}")
    worker = DistributedWorker(
        host,
        port,
        cache=cache,
        chaos=chaos,
        max_jobs=args.max_jobs,
        concurrency=args.concurrency,
        log=_log,
    )

    # SIGTERM/SIGINT request a graceful drain: in-flight jobs finish and
    # report, new leases are declined (the coordinator requeues them
    # instantly), then the worker exits 0.  A second SIGINT still kills
    # via KeyboardInterrupt if the drain wedges.
    def _on_signal(signum: int, frame: object) -> None:
        worker.drain()

    import signal

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        worker.stop()
    return f"worker {worker.address} served {worker.jobs_done} job(s)"


def _config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        sim=SimulationConfig(time_scale=args.time_scale, max_steps=2_000_000),
        repeats=args.repeats,
        seed=args.seed,
    )


def _cmd_pair(args: argparse.Namespace) -> str:
    managers = tuple(args.manager) if args.manager else ("slurm", "dps")
    if args.chaos is not None and args.checkpoint_dir is not None:
        raise SystemExit(
            "--chaos and --checkpoint-dir cannot be combined (chaos runs "
            "through the fault-injection path, which owns its own manager)"
        )
    if args.chaos is not None:
        return _cmd_pair_chaos(args, managers)
    if args.checkpoint_dir is not None:
        return _cmd_pair_checkpointed(args, managers, resume=False)
    harness = ExperimentHarness(_config(args))
    rows = []
    for m in managers:
        ev = harness.evaluate_pair(args.workload_a, args.workload_b, m)
        rows.append(
            [
                m,
                f"{ev.speedup_a:.3f}",
                f"{ev.speedup_b:.3f}",
                f"{ev.hmean_speedup:.3f}",
                f"{ev.fairness:.3f}",
            ]
        )
    headers = [
        "manager",
        f"speedup {args.workload_a}",
        f"speedup {args.workload_b}",
        "hmean",
        "fairness",
    ]
    return reporting.render_table(headers, rows)


def _cmd_pair_chaos(
    args: argparse.Namespace, managers: tuple[str, ...]
) -> str:
    # Chaos pulls in the resilience + simulator stack; import lazily so
    # the plain CLI paths stay light.
    from repro.resilience.chaos import parse_chaos, run_chaos_pair

    chaos = parse_chaos(args.chaos)
    cfg = _config(args)
    rows = []
    for m in managers:
        outcome = run_chaos_pair(
            cfg, args.workload_a, args.workload_b, m, chaos
        )
        res = outcome.result
        completed = sum(e.runs_completed for e in res.executions)
        rows.append(
            [
                m,
                str(completed),
                "yes" if res.truncated else "no",
                "yes" if outcome.budget_respected else "NO",
                str(outcome.node_failures),
                str(outcome.node_recoveries),
                str(outcome.safe_mode_entries),
            ]
        )
    header = (
        f"chaos pair {args.workload_a}/{args.workload_b} "
        f"({args.chaos}):"
    )
    table = reporting.render_table(
        [
            "manager",
            "runs done",
            "truncated",
            "budget ok",
            "node fails",
            "recoveries",
            "safe-mode",
        ],
        rows,
    )
    return header + "\n" + table


def _cmd_pair_checkpointed(
    args: argparse.Namespace, managers: tuple[str, ...], resume: bool
) -> str:
    # The checkpointed path pulls in the recovery + simulator stack;
    # import lazily so the plain CLI paths stay light.
    import json
    from pathlib import Path

    from repro.cluster.cluster import Cluster
    from repro.cluster.simulator import Assignment, Simulation
    from repro.workloads.registry import get_workload

    root = Path(args.checkpoint_dir)
    meta_path = root / "session.json"
    if resume:
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise SystemExit(
                f"{meta_path}: not a resumable session ({exc}); "
                "start one with `pair --checkpoint-dir`"
            ) from None
        workload_a = meta["workload_a"]
        workload_b = meta["workload_b"]
        managers = tuple(meta["managers"])
        args.time_scale = meta["time_scale"]
        args.repeats = meta["repeats"]
        args.seed = meta["seed"]
        checkpoint_every = meta["checkpoint_every"]
    else:
        workload_a = args.workload_a
        workload_b = args.workload_b
        checkpoint_every = args.checkpoint_every
        root.mkdir(parents=True, exist_ok=True)
        meta_path.write_text(
            json.dumps(
                {
                    "workload_a": workload_a,
                    "workload_b": workload_b,
                    "managers": list(managers),
                    "time_scale": args.time_scale,
                    "repeats": args.repeats,
                    "seed": args.seed,
                    "checkpoint_every": checkpoint_every,
                }
            ),
            encoding="utf-8",
        )

    cfg = _config(args)
    cluster = Cluster(cfg.cluster)
    rows = []
    for m in managers:
        sim = Simulation(
            cluster_spec=cfg.cluster,
            manager=cfg.make_manager(m),
            assignments=[
                Assignment(
                    spec=get_workload(workload_a),
                    unit_ids=cluster.half_unit_ids(0),
                ),
                Assignment(
                    spec=get_workload(workload_b),
                    unit_ids=cluster.half_unit_ids(1),
                ),
            ],
            target_runs=cfg.repeats,
            sim_config=cfg.sim,
            perf_config=cfg.perf,
            rapl_config=cfg.rapl,
            seed=cfg.derive_seed("recover", workload_a, workload_b, m),
            checkpoint_dir=root / m,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )
        res = sim.run()
        budget_ok = res.max_caps_sum_w <= res.budget_w * (1 + 1e-6)
        completed = sum(e.runs_completed for e in res.executions)
        rows.append(
            [
                m,
                str(completed),
                str(res.checkpoints_written),
                (
                    "cold"
                    if res.resumed_at_cycle is None
                    else f"cycle {res.resumed_at_cycle}"
                ),
                str(res.journal_replayed),
                "yes" if budget_ok else "NO",
            ]
        )
    verb = "resumed" if resume else "checkpointed"
    header = (
        f"{verb} pair {workload_a}/{workload_b} "
        f"(state under {root}, every {checkpoint_every} cycles):"
    )
    table = reporting.render_table(
        [
            "manager",
            "runs done",
            "ckpts written",
            "resumed at",
            "replayed",
            "budget ok",
        ],
        rows,
    )
    return header + "\n" + table


def _cmd_resume(args: argparse.Namespace) -> str:
    return _cmd_pair_checkpointed(args, (), resume=True)


def _cmd_figure(args: argparse.Namespace) -> str:
    cfg = _config(args)
    harness = ExperimentHarness(cfg)
    if args.which == "fig1":
        return reporting.render_figure1(figmod.figure1(config=cfg))
    if args.which == "fig2":
        from repro.experiments.charts import sparkline

        traces = figmod.figure2(config=cfg)
        lines = ["Figure 2 — uncapped power phases"]
        for name, (t, p) in traces.items():
            lines.append(
                f"  {name}: {t[-1]:.0f}s trace, power {p.min():.0f}-"
                f"{p.max():.0f} W, {100 * (p > 110).mean():.1f}% above 110 W"
            )
            lines.append(f"    {sparkline(p, width=70)}")
        return "\n".join(lines)
    if args.which == "fig4":
        return reporting.render_bars(
            figmod.figure4(harness), "Figure 4 — Spark low utility"
        )
    if args.which == "fig5a":
        return reporting.render_bars(
            figmod.figure5a(harness), "Figure 5(a) — Spark high utility"
        )
    if args.which == "fig5b":
        return reporting.render_bars(
            figmod.figure5b(harness), "Figure 5(b) — paired with GMM"
        )
    if args.which == "fig6":
        by_spark, by_npb = figmod.figure6(harness)
        return (
            reporting.render_bars(by_spark, "Figure 6(a) — by Spark workload")
            + "\n\n"
            + reporting.render_bars(by_npb, "Figure 6(b) — by NPB workload")
        )
    if args.which == "fig7":
        return reporting.render_figure7(figmod.figure7(harness))
    raise AssertionError(args.which)


def _cmd_tables(args: argparse.Namespace) -> str:
    cfg = _config(args)
    parts = [
        reporting.render_workload_rows(
            tabmod.table2(cfg), "Table 2 — Spark workloads"
        ),
        "Table 3 — Spark resources\n"
        + reporting.render_table(
            ["power type", "executors", "cores/executor"],
            [[c, e, k] for c, e, k in tabmod.table3()],
        ),
        reporting.render_workload_rows(
            tabmod.table4(cfg), "Table 4 — NPB workloads"
        ),
    ]
    return "\n\n".join(parts)


def _cmd_overhead(args: argparse.Namespace) -> str:
    rows = tabmod.overhead_analysis(config=_config(args))
    return reporting.render_overhead_rows(rows)


def _cmd_campaign(args: argparse.Namespace) -> str:
    from repro.experiments.campaign import Campaign

    groups = tuple(args.group) if args.group else (
        "low_utility", "high_utility", "spark_npb",
    )
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    cache = None
    if args.cache_dir is not None:
        from repro.experiments.engine import ResultCache

        cache = ResultCache(args.cache_dir)
    campaign = Campaign(
        _config(args), groups=groups, limit_pairs=args.limit_pairs
    )

    def _job_progress(done, total, job, wall_s, cached, eta_s):
        how = "cache" if cached else f"{wall_s:5.1f}s"
        print(f"  [{done}/{total}] {job.key} ({how}, eta {eta_s:.0f}s)")

    result = campaign.run(jobs=args.jobs, cache=cache,
                          engine_progress=_job_progress,
                          backend=_make_backend(args))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(result.to_json())
    lines = ["campaign summary (hmean speedup over constant):"]
    fairness = result.mean_fairness()
    for (group, manager), stats in result.summary().items():
        lines.append(
            f"  {group:13s} {manager:8s} hmean={stats.hmean:.3f} "
            f"min={stats.min:.3f} max={stats.max:.3f} n={stats.n} "
            f"fairness={fairness[(group, manager)]:.3f}"
        )
    eng = result.engine
    if eng is not None:
        lines.append(
            f"engine: {eng.n_jobs} jobs on {eng.workers} worker(s) in "
            f"{eng.total_wall_s:.1f}s; cache {eng.cache_hits} hits / "
            f"{eng.cache_misses} misses / {eng.cache_invalid} invalid"
        )
    if args.out:
        lines.append(f"written to {args.out}")
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> str:
    from repro.experiments.sweeps import budget_sweep, noise_sweep

    cfg = _config(args)
    pair = (args.pair[0], args.pair[1])
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    cache = None
    if args.cache_dir is not None:
        from repro.experiments.engine import ResultCache

        cache = ResultCache(args.cache_dir)
    backend = _make_backend(args)
    if args.which == "budget":
        points = budget_sweep(
            cfg, pair=pair, cache=cache, jobs=args.jobs, backend=backend
        )
        param_label = "budget fraction"
    else:
        points = noise_sweep(
            cfg, pair=pair, cache=cache, jobs=args.jobs, backend=backend
        )
        param_label = "noise std (W)"
    lines = [f"{args.which} sweep on {pair[0]}/{pair[1]}:"]
    rows = [
        [f"{p.parameter:.2f}", p.manager, f"{p.hmean_speedup:.3f}",
         f"{p.fairness:.3f}"]
        for p in points
    ]
    lines.append(
        reporting.render_table(
            [param_label, "manager", "hmean speedup", "fairness"], rows
        )
    )
    return "\n".join(lines)


def _parse_at(spec: str, label: str) -> tuple[int, int]:
    """Parse a ``SHARD@CYCLE`` chaos token."""
    shard, sep, cycle = spec.partition("@")
    if not sep:
        raise SystemExit(f"--{label} must be SHARD@CYCLE, got {spec!r}")
    try:
        return int(shard), int(cycle)
    except ValueError:
        raise SystemExit(
            f"--{label} must be SHARD@CYCLE, got {spec!r}"
        ) from None


def _parse_range(spec: str, label: str) -> tuple[int, int]:
    """Parse a ``START-END`` cycle range."""
    start, sep, end = spec.partition("-")
    if not sep:
        raise SystemExit(f"--{label} must be START-END, got {spec!r}")
    try:
        lo, hi = int(start), int(end)
    except ValueError:
        raise SystemExit(f"--{label} must be START-END, got {spec!r}") from None
    if hi <= lo:
        raise SystemExit(f"--{label} needs END > START, got {spec!r}")
    return lo, hi


def _cmd_shards(args: argparse.Namespace) -> str:
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro.cluster.cluster import Cluster
    from repro.core.config import ClusterSpec
    from repro.core.managers import available_managers, create_manager
    from repro.deploy.loopback import RecoveryOptions
    from repro.experiments import reporting
    from repro.shard import ShardChaosSchedule, run_sharded
    from repro.telemetry.export import leases_to_csv, leases_to_json

    if args.manager not in available_managers():
        raise SystemExit(
            f"unknown manager {args.manager!r}; one of "
            f"{', '.join(available_managers())}"
        )
    try:
        probe = create_manager(args.manager)
    except TypeError as exc:
        raise SystemExit(
            f"manager {args.manager!r} needs constructor arguments "
            f"({exc}); pick a standalone manager"
        ) from None
    if probe.requires_demand:
        raise SystemExit(
            f"manager {args.manager!r} needs demand estimates, which the "
            "shard harness does not feed; pick a power-only manager"
        )
    if args.cycles < 1:
        raise SystemExit(f"--cycles must be >= 1, got {args.cycles}")

    kill = dict(_parse_at(s, "kill") for s in (args.kill or ()))
    hang = dict(_parse_at(s, "hang") for s in (args.hang or ()))
    partition: dict[int, int] = {}
    heal: dict[int, int] = {}
    for spec in args.partition or ():
        shard, sep, rng = spec.partition("@")
        if not sep:
            raise SystemExit(
                f"--partition must be SHARD@START-END, got {spec!r}"
            )
        try:
            shard_id = int(shard)
        except ValueError:
            raise SystemExit(
                f"--partition must be SHARD@START-END, got {spec!r}"
            ) from None
        lo, hi = _parse_range(rng, "partition")
        partition[shard_id] = lo
        heal[shard_id] = hi
    arbiter_kill = arbiter_restart = None
    if args.arbiter_outage is not None:
        arbiter_kill, arbiter_restart = _parse_range(
            args.arbiter_outage, "arbiter-outage"
        )
    drain = dict(_parse_at(s, "drain") for s in (args.drain or ()))
    try:
        chaos = ShardChaosSchedule(
            shard_kill_at=kill,
            shard_hang_at=hang,
            partition_at=partition,
            heal_at=heal,
            arbiter_kill_at=arbiter_kill,
            arbiter_restart_at=arbiter_restart,
            admit_at=args.admit_at,
            drain_at=drain,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    cluster = Cluster(
        ClusterSpec(n_nodes=args.nodes), rng=np.random.default_rng(args.seed)
    )
    rng = np.random.default_rng(args.seed)
    tmp = None
    if args.checkpoint_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="dps-shards-")
        root = Path(tmp.name)
    else:
        root = Path(args.checkpoint_dir)
    try:
        result = run_sharded(
            cluster,
            n_shards=args.shards,
            manager_factory=lambda i: create_manager(args.manager),
            demand_fn=lambda step: np.full(cluster.n_units, 0.6),
            cycles=args.cycles,
            checkpoint_dir=root,
            chaos=chaos,
            recovery=RecoveryOptions(
                checkpoint_dir=root,
                hang_timeout_s=1.0 if args.mode == "thread" else 5.0,
            ),
            rng=rng,
            mode=args.mode,
            manager_name=args.manager,
            codec=args.codec,
        )
    except (ValueError, RuntimeError) as exc:
        raise SystemExit(str(exc)) from None
    finally:
        if tmp is not None:
            tmp.cleanup()

    lines = [
        f"sharded control plane ({result.mode} mode): {result.n_shards} "
        f"shards, {cluster.n_units} units, budget {result.budget_w:.0f} W, "
        f"{result.cycles} cycles"
    ]
    if result.admitted:
        lines.append(
            "admitted live: shard "
            + ", ".join(str(i) for i in result.admitted)
        )
    if result.drained:
        lines.append(
            "drained: "
            + ", ".join(
                f"shard {i} (rc={result.drained_rcs.get(i)})"
                for i in result.drained
            )
        )
    rows = []
    # Leases come from the timeline, keyed by shard id: with live
    # membership the arbiter's lease array covers current members only,
    # whose count can differ from the starting fleet's.
    for i in sorted(set(range(result.n_shards)) | set(result.admitted)):
        series = result.timeline.for_shard(i)
        last = series[-1] if series else None
        restarts = (
            result.shard_restarts[i]
            if i < len(result.shard_restarts)
            else 0
        )
        rows.append(
            [
                str(i),
                "-" if last is None else f"{last.lease_w:.1f}",
                "-" if last is None else f"{last.committed_w:.1f}",
                str(restarts),
                "yes" if i in result.failed_shards else "no",
            ]
        )
    lines.append(
        reporting.render_table(
            ["shard", "lease W", "committed W", "restarts", "failed"], rows
        )
    )
    lines.append(
        f"arbiter: {result.arbiter_cycles} cycles, "
        f"{result.arbiter_restarts} restart(s), "
        f"{result.invariant_sweeps} invariant sweeps, "
        f"{result.invariant_violations} violation(s)"
    )
    if result.mode == "process":
        lines.append(
            f"wire ({result.codec} codec): "
            f"{result.bytes_clock} clock bytes, "
            f"{result.bytes_links} link bytes, "
            f"{result.link_reconnects} link reconnect(s)"
        )
    if result.worst_case_w is not None:
        ok = result.worst_case_w <= result.budget_w * (1 + 1e-6)
        lines.append(
            f"committed power: worst-case {result.worst_case_w:.1f} W, "
            f"steady {result.steady_w:.1f} W, budget "
            f"{'respected' if ok else 'EXCEEDED'}"
        )
    counts: dict[str, int] = {}
    for event in result.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    interesting = [
        f"{kind}x{n}"
        for kind, n in sorted(counts.items())
        if kind.startswith(("shard_", "arbiter_"))
    ]
    if interesting:
        lines.append("events: " + ", ".join(interesting))
    if args.lease_timeline is not None:
        out = Path(args.lease_timeline)
        if out.suffix == ".csv":
            out.write_text(leases_to_csv(result.timeline), encoding="utf-8")
        else:
            out.write_text(leases_to_json(result.timeline), encoding="utf-8")
        lines.append(f"lease timeline written to {out}")
    return "\n".join(lines)


def _cmd_shard_server(args: argparse.Namespace) -> str:
    from repro.shard.process import run_shard_server

    rc = run_shard_server(args)
    if rc != 0:
        raise SystemExit(rc)
    return f"shard {args.shard_id} exited cleanly"


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.experiments.campaign import CampaignResult
    from repro.experiments.report import campaign_report

    with open(args.campaign_json, "r", encoding="utf-8") as fh:
        result = CampaignResult.from_json(fh.read())
    return campaign_report(result)


def _cmd_list(args: argparse.Namespace) -> str:
    del args
    from repro.core.managers import available_managers
    from repro.workloads.registry import all_workloads

    lines = ["managers: " + ", ".join(available_managers()), "workloads:"]
    for spec in all_workloads().values():
        lines.append(
            f"  {spec.name:12s} {spec.suite:5s} {spec.power_class:4s} "
            f"paper {spec.paper_duration_s:7.1f}s"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "pair": _cmd_pair,
        "figure": _cmd_figure,
        "tables": _cmd_tables,
        "overhead": _cmd_overhead,
        "list": _cmd_list,
        "campaign": _cmd_campaign,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "resume": _cmd_resume,
        "worker": _cmd_worker,
        "shards": _cmd_shards,
        "shard-server": _cmd_shard_server,
    }
    try:
        print(handlers[args.command](args))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())

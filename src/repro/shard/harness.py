"""Loopback multi-shard harness with shard-level chaos.

:func:`run_sharded` is the sharded analog of
:func:`repro.deploy.loopback.run_loopback`: one process, N real
:class:`~repro.deploy.server.DeployServer` instances (one per shard,
each on its own kernel-chosen ephemeral port, each with its own
:class:`~repro.deploy.client.DeployClient` threads over localhost TCP)
under one :class:`~repro.shard.arbiter.BudgetArbiter`.

Each shard runs on a worker thread under a *real*
:class:`~repro.recovery.supervisor.Supervisor`; the harness thread is
the lock-step clock: per control cycle it fires the chaos schedule,
advances the cluster physics exactly once, broadcasts the cycle command
to every shard, waits for every shard's acknowledgement, and then (on
the arbiter period) runs the arbiter cycle.  Physics are frozen while
control runs, so a session is reproducible cycle-for-cycle despite the
thread-per-shard concurrency — shards own disjoint nodes, sockets, and
checkpoint directories, and never touch shared state mid-cycle.

Shard-level chaos covers the full failure matrix: shard *kill* (the
controller process dies and is warm-restarted from its checkpoint),
shard *hang* (detected by the supervisor's watchdog, then restarted),
link *partition* (frames dropped both directions; the arbiter
quarantines the shard, the shard freezes on its lease term), and
arbiter *kill/restart* (shards run autonomously on their last leases
and freeze when the terms expire; the restarted arbiter resumes from
its checkpoint).  Every transition lands in the merged event log as a
structured ``SHARD_EVENT_KINDS`` event — there is no silent failover.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.cluster.cluster import Cluster
from repro.comm.shardlink import TcpShardLink
from repro.core.managers import PowerManager
from repro.deploy.client import DeployClient
from repro.deploy.loopback import RecoveryOptions, _await_cap_application
from repro.recovery.checkpoint import CheckpointStore, CycleJournal
from repro.recovery.controller import RecoverableController
from repro.recovery.supervisor import (
    ControllerCrash,
    ControllerHang,
    Heartbeat,
    Supervisor,
)
from repro.resilience.health import ResilienceConfig
from repro.safety import SafetyConfig
from repro.shard.arbiter import ArbiterShard, BudgetArbiter
from repro.shard.lease import ArbiterConfig, ShardLink
from repro.shard.process import event_from_doc
from repro.shard.server import ShardServer
from repro.shard.supervisor import (
    PendingCycle,
    ProcessShardSpec,
    ShardSupervisor,
)
from repro.telemetry.log import LeaseTimeline, ResilienceEventLog

__all__ = ["ShardChaosSchedule", "ShardedResult", "run_sharded"]

#: Seconds the harness waits for one shard acknowledgement before the
#: session is declared wedged (a watchdog on the watchdogs).
_ACK_TIMEOUT_S = 60.0


@dataclass(frozen=True)
class ShardChaosSchedule:
    """Failure plan of a sharded session (cycle indices, each fires once).

    Attributes:
        shard_kill_at: shard id → cycle at which that shard's controller
            crashes (supervised warm restart from its checkpoint).
        shard_hang_at: shard id → cycle at which that shard's controller
            stops making progress until its watchdog aborts it.
        partition_at: shard id → cycle at which the shard↔arbiter link
            is severed (both directions).
        heal_at: shard id → cycle at which the link is restored.
        arbiter_kill_at: cycle at which the arbiter crashes (None = never).
        arbiter_restart_at: cycle at which a fresh arbiter resumes from
            the checkpoint store (required when ``arbiter_kill_at`` is
            set and the session continues past it).
        admit_at: cycle at which one extra shard joins the fleet live
            (process mode only — a new shard-server is spawned and
            admitted through the HELLO/ADMIT handshake).
        drain_at: shard id → cycle at which that shard is drained
            gracefully (process mode only — SIGTERM; the arbiter
            reclaims the lease only after the final frozen summary).
    """

    shard_kill_at: Mapping[int, int] = field(default_factory=dict)
    shard_hang_at: Mapping[int, int] = field(default_factory=dict)
    partition_at: Mapping[int, int] = field(default_factory=dict)
    heal_at: Mapping[int, int] = field(default_factory=dict)
    arbiter_kill_at: int | None = None
    arbiter_restart_at: int | None = None
    admit_at: int | None = None
    drain_at: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for shard_id in self.drain_at:
            if shard_id in self.shard_kill_at or shard_id in self.shard_hang_at:
                raise ValueError(
                    f"shard {shard_id} is both drained and killed/hung in "
                    "one session"
                )
        if self.arbiter_kill_at is not None:
            lo = self.arbiter_kill_at
            hi = self.arbiter_restart_at

            def in_outage(cycle: int) -> bool:
                return cycle >= lo and (hi is None or cycle < hi)

            if self.admit_at is not None and in_outage(self.admit_at):
                raise ValueError(
                    f"admit at cycle {self.admit_at} falls inside the "
                    "arbiter outage"
                )
            for shard_id, cycle in self.drain_at.items():
                if in_outage(cycle):
                    raise ValueError(
                        f"shard {shard_id} drains at cycle {cycle}, inside "
                        "the arbiter outage"
                    )
        for shard_id, cycle in self.heal_at.items():
            if (
                shard_id in self.partition_at
                and cycle <= self.partition_at[shard_id]
            ):
                raise ValueError(
                    f"shard {shard_id} heals at cycle {cycle}, before its "
                    f"partition at cycle {self.partition_at[shard_id]}"
                )
        overlap = set(self.shard_kill_at) & set(self.shard_hang_at)
        for shard_id in overlap:
            if self.shard_kill_at[shard_id] == self.shard_hang_at[shard_id]:
                raise ValueError(
                    f"shard {shard_id} is killed and hung at the same cycle"
                )
        if (
            self.arbiter_restart_at is not None
            and self.arbiter_kill_at is not None
            and self.arbiter_restart_at <= self.arbiter_kill_at
        ):
            raise ValueError(
                f"arbiter restarts at cycle {self.arbiter_restart_at}, "
                f"before its kill at cycle {self.arbiter_kill_at}"
            )


@dataclass
class ShardedResult:
    """Outcome of a sharded session.

    Attributes:
        cycles: control cycles executed.
        n_shards: shard servers in the session.
        budget_w: the global budget that was arbitrated.
        events: merged structured events of the whole session — harness,
            arbiter, and every shard's deploy/recovery stack.
        timeline: per-shard lease timeline across every arbiter cycle
            (survives arbiter restarts).
        leases_w: final per-shard leases.
        power_history: true per-unit power per cycle, ``(cycles, units)``.
        caps_history: hardware-side per-unit caps per cycle.
        shard_restarts: supervised restarts per shard.
        failed_shards: shards whose restart budget was exhausted.
        arbiter_restarts: arbiter kill→restart transitions performed.
        arbiter_cycles: arbiter cycles executed (all instances).
        invariant_sweeps: arbiter invariant sweeps run (all instances).
        invariant_violations: violations found (0 for a correct run).
        worst_case_w: global worst-case committed power at the last
            arbiter cycle (None if the arbiter never ran).
        steady_w: global steady committed power at the last arbiter cycle.
        bytes_links: frame bytes over every shard link.
        checkpoint_dir: where shard and arbiter checkpoints live.
        cycle_wall_s: wall seconds of each lock-step control cycle
            (physics + every shard's cycle + any arbiter cycle).
        mode: ``"thread"`` (in-process loopback links) or ``"process"``
            (shard-server subprocesses behind real TCP links).
        admitted: shard ids admitted live during the session.
        drained: shard ids drained gracefully during the session.
        drained_rcs: drained shard id → subprocess exit code (0 on a
            clean SIGTERM drain).
        link_reconnects: TCP shard-link re-establishments (process mode).
        bytes_clock: frame bytes over every clock connection, both
            directions (process mode; 0 in thread mode where the clock
            is a queue).
        codec: clock-plane bulk encoding used (process mode).
    """

    cycles: int
    n_shards: int
    budget_w: float
    events: ResilienceEventLog
    timeline: LeaseTimeline
    leases_w: np.ndarray
    power_history: np.ndarray
    caps_history: np.ndarray
    shard_restarts: list[int] = field(default_factory=list)
    failed_shards: tuple[int, ...] = ()
    arbiter_restarts: int = 0
    arbiter_cycles: int = 0
    invariant_sweeps: int = 0
    invariant_violations: int = 0
    worst_case_w: float | None = None
    steady_w: float | None = None
    bytes_links: int = 0
    checkpoint_dir: Path | None = None
    cycle_wall_s: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )
    mode: str = "thread"
    admitted: tuple[int, ...] = ()
    drained: tuple[int, ...] = ()
    drained_rcs: dict[int, int | None] = field(default_factory=dict)
    link_reconnects: int = 0
    bytes_clock: int = 0
    codec: str = "json"


class _ShardWorker:
    """One shard's thread: a supervised control loop in lock step."""

    def __init__(
        self,
        shard: ShardServer,
        nodes: list,
        recovery: RecoveryOptions,
        dt_s: float,
        period_cycles: int,
        timeout_s: float,
    ) -> None:
        self.shard = shard
        self.nodes = nodes
        self.recovery = recovery
        self.dt_s = dt_s
        self.period_cycles = period_cycles
        self.timeout_s = timeout_s
        self.commands: queue.Queue = queue.Queue()
        self.supervisor = Supervisor(
            max_restarts=recovery.max_restarts,
            hang_timeout_s=recovery.hang_timeout_s,
            events=ResilienceEventLog(),  # controller_* detail log
        )
        self.failed = False
        #: Unexpected (non-chaos) exception that took the worker down.
        self.error: Exception | None = None
        self.thread = threading.Thread(
            target=self._run, name=f"shard-{shard.shard_id}", daemon=True
        )

    def start(self, acks: queue.Queue) -> None:
        self._acks = acks
        self.thread.start()

    def _ack(self, step: int, status: str) -> None:
        self._acks.put((self.shard.shard_id, step, status))

    def _run(self) -> None:
        try:
            self.supervisor.run(self._attempt)
            return
        except (ControllerCrash, ControllerHang):
            pass  # Restart budget exhausted.
        except Exception as exc:  # noqa: BLE001 - keep the clock answered
            self.error = exc
        self.failed = True
        # Keep answering the clock so the session completes; the shard's
        # hardware holds its last caps.
        while True:
            cmd = self.commands.get()
            if cmd[0] == "stop":
                return
            self._ack(cmd[1], "failed")

    def _attempt(self, index: int, heartbeat: Heartbeat) -> str:
        shard = self.shard
        if index > 0:
            consumed = 0
            while consumed < self.recovery.restart_delay_cycles:
                cmd = self.commands.get()
                if cmd[0] == "stop":
                    return "stopped"
                self._ack(cmd[1], "outage")
                consumed += 1
            if shard.controller.resume():
                shard.resume_lease_state()
            # Only this shard's meters re-anchor — the rest of the
            # cluster never went down.
            for node in self.nodes:
                for sock in node.sockets:
                    sock.meter.rebaseline()
            shard.events.emit(
                float(shard.controller.cycle),
                "shard_restarted",
                node_id=shard.shard_id,
                detail=f"attempt {index} of {self.recovery.max_restarts + 1}",
            )

        server = shard.start(timeout_s=self.timeout_s)
        clients: list[DeployClient] = []
        clients_by_id: dict[int, DeployClient] = {}
        try:
            for node in self.nodes:
                client = DeployClient(node, server.address, dt_s=self.dt_s)
                client.start()
                clients.append(client)
                clients_by_id[node.node_id] = client
            server.accept_clients(len(clients))

            while True:
                cmd = self.commands.get()
                if cmd[0] == "stop":
                    return "stopped"
                _, step, directive = cmd
                if directive == "kill":
                    self._ack(step, "crashed")
                    raise ControllerCrash(f"injected kill at cycle {step}")
                if directive == "hang":
                    self._ack(step, "hung")
                    while not heartbeat.aborted:
                        time.sleep(0.002)
                    raise ControllerHang(f"hang detected at cycle {step}")
                served_before = {
                    nid: c.cycles_served for nid, c in clients_by_id.items()
                }
                shard.run_cycle(now=float(step))
                _await_cap_application(server, clients_by_id, served_before)
                heartbeat.beat()
                if (step + 1) % self.period_cycles == 0:
                    shard.summarize(cycle=step)
                self._ack(step, "ok")
        finally:
            shard.stop()
            for client in clients:
                try:
                    client.join()
                except RuntimeError:
                    pass  # A crashed attempt's client dies on its socket.


def run_sharded(
    cluster: Cluster,
    n_shards: int,
    manager_factory: Callable[[int], PowerManager],
    demand_fn: Callable[[int], np.ndarray],
    cycles: int,
    checkpoint_dir: str | Path,
    dt_s: float = 1.0,
    config: ArbiterConfig | None = None,
    chaos: ShardChaosSchedule | None = None,
    recovery: RecoveryOptions | None = None,
    resilience: ResilienceConfig | None = None,
    safety: SafetyConfig | None = None,
    invariant_mode: str = "strict",
    timeout_s: float = 5.0,
    rng: np.random.Generator | None = None,
    mode: str = "thread",
    manager_name: str | None = None,
    codec: str = "json",
    max_ack_events: int = 256,
) -> ShardedResult:
    """Run a sharded control-plane session over localhost TCP.

    Args:
        cluster: the simulated hardware; its nodes are partitioned into
            ``n_shards`` contiguous groups.
        n_shards: shard servers to run (1 ≤ n_shards ≤ n_nodes).
        manager_factory: shard id → a fresh (unbound) power manager for
            that shard; bound here to the shard's slice topology with
            the shard's initial lease as its budget.
        demand_fn: step index → per-unit demand for the *whole* cluster.
        cycles: control cycles to run.
        checkpoint_dir: root for per-shard and arbiter checkpoints.
        dt_s: control period.
        config: arbiter/lease knobs.
        chaos: optional shard-level failure plan.
        recovery: checkpoint/supervisor knobs shared by every shard
            (``checkpoint_dir`` inside it is ignored — shards get
            subdirectories of this function's ``checkpoint_dir``).
        resilience: client quarantine knobs for every shard server.
        safety: deploy-layer safety config for every shard server.
        invariant_mode: the arbiter's invariant-monitor cadence
            (``"strict"`` raises — the chaos-test posture).
        timeout_s: per-shard deploy-server socket deadline.
        rng: manager randomness; child streams are spawned per shard.
        mode: ``"thread"`` runs shards on worker threads with loopback
            links (the default); ``"process"`` runs each shard as a
            ``dps-repro shard-server`` subprocess behind a real TCP
            link, supervised with OS signals.
        manager_name: power-manager registry name, required in process
            mode (the subprocess rebuilds the manager from its name;
            ``manager_factory`` is not picklable across an exec).
        codec: process-mode clock-plane bulk encoding — ``"json"``
            (float lists, the historical wire) or ``"binary"`` (raw
            array frames, :mod:`repro.comm.wire`).  Thread mode has no
            wire and accepts only ``"json"``.
        max_ack_events: per-ack structured-event cap each shard server
            enforces (overflow collapses into ``events_truncated``).

    Returns:
        A :class:`ShardedResult`; every thread and socket is shut down
        before returning, succeed or fail.
    """
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    if not 1 <= n_shards <= cluster.spec.n_nodes:
        raise ValueError(
            f"n_shards must be in [1, {cluster.spec.n_nodes}], got {n_shards}"
        )
    if mode not in ("thread", "process"):
        raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
    if codec not in ("json", "binary"):
        raise ValueError(f"codec must be 'json' or 'binary', got {codec!r}")
    if mode == "thread" and codec != "json":
        raise ValueError("codec='binary' needs a wire; run with mode='process'")
    cfg = config or ArbiterConfig()
    chaos = chaos or ShardChaosSchedule()
    recovery = recovery or RecoveryOptions(checkpoint_dir=checkpoint_dir)
    rng = rng if rng is not None else np.random.default_rng(0)
    root = Path(checkpoint_dir)
    _validate_chaos(chaos, n_shards)
    if mode == "process":
        if manager_name is None:
            raise ValueError("mode='process' requires manager_name")
        return _run_sharded_process(
            cluster=cluster,
            n_shards=n_shards,
            manager_name=manager_name,
            demand_fn=demand_fn,
            cycles=cycles,
            root=root,
            dt_s=dt_s,
            cfg=cfg,
            chaos=chaos,
            recovery=recovery,
            invariant_mode=invariant_mode,
            timeout_s=timeout_s,
            codec=codec,
            max_ack_events=max_ack_events,
        )
    if chaos.admit_at is not None or chaos.drain_at:
        raise ValueError(
            "admit/drain chaos needs real shard processes; run with "
            "mode='process'"
        )

    # Partition the nodes (and therefore the unit range) contiguously.
    n_nodes = cluster.spec.n_nodes
    bounds = [round(i * n_nodes / n_shards) for i in range(n_shards + 1)]
    groups = [
        list(cluster.nodes[bounds[i] : bounds[i + 1]]) for i in range(n_shards)
    ]
    if any(not g for g in groups):
        raise ValueError(
            f"{n_shards} shards leave some shard empty over {n_nodes} nodes"
        )
    slices: list[slice] = []
    cursor = 0
    for group in groups:
        width = sum(len(node.sockets) for node in group)
        slices.append(slice(cursor, cursor + width))
        cursor += width

    units = np.asarray(
        [s.stop - s.start for s in slices], dtype=np.float64
    )
    floor = units * cluster.spec.min_cap_w
    ceiling = units * cluster.spec.tdp_w
    initial = np.clip(
        cluster.budget_w * units / float(units.sum()), floor, ceiling
    )

    harness_events = ResilienceEventLog()
    timeline = LeaseTimeline()
    shard_rngs = rng.spawn(n_shards)
    shards: list[ShardServer] = []
    links: list[ShardLink] = []
    workers: list[_ShardWorker] = []
    for i in range(n_shards):
        manager = manager_factory(i)
        manager.bind(
            n_units=int(units[i]),
            budget_w=float(initial[i]),
            max_cap_w=cluster.spec.tdp_w,
            min_cap_w=cluster.spec.min_cap_w,
            dt_s=dt_s,
            rng=shard_rngs[i],
        )
        shard_dir = root / f"shard-{i}"
        controller = RecoverableController(
            manager,
            store=CheckpointStore(shard_dir, keep=recovery.keep_generations),
            journal=CycleJournal(shard_dir / "journal.log"),
            checkpoint_every=recovery.checkpoint_every,
        )
        link = ShardLink()
        shard = ShardServer(
            shard_id=i,
            controller=controller,
            link=link,
            config=cfg,
            events=ResilienceEventLog(),  # per-thread; merged at the end
            resilience=resilience,
            safety=safety,
        )
        shards.append(shard)
        links.append(link)
        workers.append(
            _ShardWorker(
                shard, groups[i], recovery, dt_s, cfg.period_cycles, timeout_s
            )
        )

    specs = [
        ArbiterShard(
            shard_id=i,
            link=links[i],
            n_units=int(units[i]),
            min_cap_w=cluster.spec.min_cap_w,
            max_cap_w=cluster.spec.tdp_w,
        )
        for i in range(n_shards)
    ]
    arbiter_store = CheckpointStore(
        root / "arbiter", keep=recovery.keep_generations
    )

    def make_arbiter() -> BudgetArbiter:
        return BudgetArbiter(
            budget_w=cluster.budget_w,
            shards=specs,
            initial_leases_w=initial,
            config=cfg,
            events=harness_events,
            timeline=timeline,
            store=arbiter_store,
            invariant_mode=invariant_mode,
        )

    arbiter: BudgetArbiter | None = make_arbiter()
    power_history = np.full((cycles, cluster.n_units), np.nan)
    caps_history = np.full((cycles, cluster.n_units), np.nan)
    counters = {
        "arbiter_restarts": 0,
        "arbiter_cycles": 0,
        "sweeps": 0,
        "violations": 0,
    }
    last_stats = None

    cycle_wall = np.zeros(cycles, dtype=np.float64)
    acks: queue.Queue = queue.Queue()
    for worker in workers:
        worker.start(acks)
    try:
        for step in range(cycles):
            wall_t0 = time.perf_counter()
            now = float(step)
            for shard_id, at in chaos.partition_at.items():
                if at == step:
                    links[shard_id].partition()
                    harness_events.emit(
                        now,
                        "shard_partitioned",
                        node_id=shard_id,
                        detail="link severed both directions",
                    )
            for shard_id, at in chaos.heal_at.items():
                if at == step:
                    links[shard_id].heal()
                    harness_events.emit(
                        now, "shard_partition_healed", node_id=shard_id
                    )
            if chaos.arbiter_kill_at == step and arbiter is not None:
                counters["arbiter_cycles"] += arbiter.cycle
                counters["sweeps"] += arbiter.monitor.sweeps_run
                counters["violations"] += len(arbiter.monitor.violations)
                arbiter = None
                harness_events.emit(
                    now, "arbiter_killed", detail="injected kill"
                )
            if chaos.arbiter_restart_at == step and arbiter is None:
                arbiter = make_arbiter()
                resumed = arbiter.resume()
                counters["arbiter_restarts"] += 1
                counters["arbiter_cycles"] -= arbiter.cycle
                harness_events.emit(
                    now,
                    "arbiter_restarted",
                    detail=f"resumed_from_checkpoint={resumed}",
                )

            cluster.step_physics(demand_fn(step), dt_s)
            for worker in workers:
                directive = None
                if chaos.shard_kill_at.get(worker.shard.shard_id) == step:
                    directive = "kill"
                elif chaos.shard_hang_at.get(worker.shard.shard_id) == step:
                    directive = "hang"
                worker.commands.put(("cycle", step, directive))
            statuses: dict[int, str] = {}
            while len(statuses) < n_shards:
                shard_id, ack_step, status = acks.get(timeout=_ACK_TIMEOUT_S)
                if ack_step != step:
                    raise RuntimeError(
                        f"shard {shard_id} acked cycle {ack_step} during "
                        f"cycle {step}"
                    )
                statuses[shard_id] = status
            for shard_id, status in sorted(statuses.items()):
                if status == "crashed":
                    harness_events.emit(
                        now,
                        "shard_killed",
                        node_id=shard_id,
                        detail="controller crash injected",
                    )
                elif status == "hung":
                    harness_events.emit(
                        now,
                        "shard_hung",
                        node_id=shard_id,
                        detail="watchdog abort pending",
                    )

            power_history[step] = cluster.true_power_w()
            caps_history[step] = cluster.caps_w()

            if arbiter is not None and (step + 1) % cfg.period_cycles == 0:
                last_stats = arbiter.cycle_once(now=now)
            cycle_wall[step] = time.perf_counter() - wall_t0
    finally:
        for worker in workers:
            worker.commands.put(("stop",))
        for worker in workers:
            worker.thread.join(timeout=30.0)

    if arbiter is not None:
        counters["arbiter_cycles"] += arbiter.cycle
        counters["sweeps"] += arbiter.monitor.sweeps_run
        counters["violations"] += len(arbiter.monitor.violations)

    for worker in workers:
        if worker.error is not None:
            harness_events.emit(
                float(cycles),
                "shard_dead",
                node_id=worker.shard.shard_id,
                detail=f"worker error: {worker.error}",
            )

    events = ResilienceEventLog()
    events.extend(harness_events)
    for shard in shards:
        events.extend(shard.events)
    for worker in workers:
        events.extend(worker.supervisor.events)

    return ShardedResult(
        cycles=cycles,
        n_shards=n_shards,
        budget_w=cluster.budget_w,
        events=events,
        timeline=timeline,
        leases_w=(
            arbiter.leases_w
            if arbiter is not None
            else np.asarray([s.lease_w for s in shards])
        ),
        power_history=power_history,
        caps_history=caps_history,
        shard_restarts=[w.supervisor.restarts for w in workers],
        failed_shards=tuple(
            w.shard.shard_id for w in workers if w.failed
        ),
        arbiter_restarts=counters["arbiter_restarts"],
        arbiter_cycles=counters["arbiter_cycles"],
        invariant_sweeps=counters["sweeps"],
        invariant_violations=counters["violations"],
        worst_case_w=last_stats.worst_case_w if last_stats else None,
        steady_w=last_stats.steady_w if last_stats else None,
        bytes_links=sum(link.bytes_total for link in links),
        checkpoint_dir=root,
        cycle_wall_s=cycle_wall,
    )


def _validate_chaos(chaos: ShardChaosSchedule, n_shards: int) -> None:
    for label, schedule in (
        ("shard_kill_at", chaos.shard_kill_at),
        ("shard_hang_at", chaos.shard_hang_at),
        ("partition_at", chaos.partition_at),
        ("heal_at", chaos.heal_at),
        ("drain_at", chaos.drain_at),
    ):
        for shard_id in schedule:
            if not 0 <= shard_id < n_shards:
                raise ValueError(
                    f"chaos {label} names unknown shard {shard_id}"
                )


def _run_sharded_process(
    cluster: Cluster,
    n_shards: int,
    manager_name: str,
    demand_fn: Callable[[int], np.ndarray],
    cycles: int,
    root: Path,
    dt_s: float,
    cfg: ArbiterConfig,
    chaos: ShardChaosSchedule,
    recovery: RecoveryOptions,
    invariant_mode: str,
    timeout_s: float,
    codec: str = "json",
    max_ack_events: int = 256,
) -> ShardedResult:
    """Process-mode session: shard-server subprocesses, real TCP links.

    The parent hosts only the :class:`~repro.shard.arbiter.BudgetArbiter`
    and the lock-step clock.  Each shard-server owns its slice of the
    hardware as a private sub-cluster, so the ``cluster`` argument
    contributes topology and the global budget, not live physics; the
    per-unit power/caps histories are assembled from the shards' cycle
    acknowledgements (NaN while a shard's process is down — a dead
    process reports nothing, unlike a thread whose hardware the parent
    can still read).

    Cycles are **pipelined one deep**: each step splits into a
    *dispatch* phase (cycle N+1's demand slices pushed to every shard,
    plus the clock-side chaos — kill/hang signals, admit spawn, drain
    SIGTERM) and a *finalize* phase (cycle N's acks collected in cycle
    order, histories scattered, arbiter-side chaos fired, the arbiter
    cycle run).  Dispatching N+1 before collecting N lets every shard
    compute while the parent is busy finalizing, without giving up
    lock-step determinism: acks are still applied strictly in cycle
    order, a chaos victim's outstanding ack is settled before the
    process is signalled, and every arbiter-relative ordering (chaos
    after arbiter cycle N-1, before arbiter cycle N) is exactly the
    sequential schedule's.  The pipeline deliberately breaks at arbiter
    period boundaries: the arbiter re-cuts leases there, and its grants
    must reach every shard before the next demand slice does, or grant
    application would race the cycle it funds.  The one observable
    shift: a shard's summary for cycle N is sent while the parent may
    not yet have fired cycle N's link chaos, so a partition/heal lands
    one summary later relative to the shard clock (arbiter-relative
    timing unchanged).
    """
    spec = cluster.spec
    n_nodes = spec.n_nodes
    bounds = [round(i * n_nodes / n_shards) for i in range(n_shards + 1)]
    node_counts = [bounds[i + 1] - bounds[i] for i in range(n_shards)]
    if any(count < 1 for count in node_counts):
        raise ValueError(
            f"{n_shards} shards leave some shard empty over {n_nodes} nodes"
        )
    units = np.asarray(
        [count * spec.sockets_per_node for count in node_counts],
        dtype=np.float64,
    )
    base_slices: list[slice] = []
    cursor = 0
    for width in units.astype(int):
        base_slices.append(slice(cursor, cursor + int(width)))
        cursor += int(width)
    floor = units * spec.min_cap_w
    ceiling = units * spec.tdp_w
    initial = np.clip(
        cluster.budget_w * units / float(units.sum()), floor, ceiling
    )

    harness_events = ResilienceEventLog()
    shard_events = ResilienceEventLog()
    timeline = LeaseTimeline()

    def make_pspec(
        shard_id: int, nodes: int, lease_w: float
    ) -> ProcessShardSpec:
        return ProcessShardSpec(
            shard_id=shard_id,
            n_nodes=nodes,
            sockets_per_node=spec.sockets_per_node,
            tdp_w=spec.tdp_w,
            min_cap_w=spec.min_cap_w,
            idle_power_w=spec.idle_power_w,
            manager=manager_name,
            lease_w=lease_w,
            dt_s=dt_s,
            seed=shard_id,
            dir=root / f"shard-{shard_id}",
            period_cycles=cfg.period_cycles,
            lease_term_cycles=cfg.lease_term_cycles,
            checkpoint_every=recovery.checkpoint_every,
            keep_generations=recovery.keep_generations,
            codec=codec,
            max_ack_events=max_ack_events,
        )

    pspecs = [
        make_pspec(i, node_counts[i], float(initial[i]))
        for i in range(n_shards)
    ]
    supervisor = ShardSupervisor(
        pspecs, recovery, events=harness_events, timeout_s=timeout_s
    )
    clock_now = {"now": 0.0}
    links: dict[int, TcpShardLink] = {}
    arb_specs: dict[int, ArbiterShard] = {}

    def make_link(shard_id: int, consume_hello: bool = True) -> TcpShardLink:
        proc = supervisor.fleet[shard_id]
        assert proc.address is not None
        link = TcpShardLink(
            proc.address,
            shard_id=shard_id,
            seed=shard_id,
            events=harness_events,
            clock=lambda: clock_now["now"],
        )
        # Kick the dial now so the shard holds an arbiter connection
        # before its first summary.  Member links also drain the shard's
        # answering HELLO here, leaving the buffer empty so the
        # pre-collection wait below latches onto the first real summary;
        # an admitted shard's HELLO is left in place — the arbiter's
        # admission path must see it.
        link.take_summaries()
        if consume_hello and link.wait_readable(2.0):
            link.take_summaries()
        return link

    arbiter_store = CheckpointStore(
        root / "arbiter", keep=recovery.keep_generations
    )

    def make_arbiter(
        shard_specs: list[ArbiterShard], leases: np.ndarray | None
    ) -> BudgetArbiter:
        return BudgetArbiter(
            budget_w=cluster.budget_w,
            shards=shard_specs,
            initial_leases_w=leases,
            config=cfg,
            events=harness_events,
            timeline=timeline,
            store=arbiter_store,
            invariant_mode=invariant_mode,
        )

    power_history = np.full((cycles, cluster.n_units), np.nan)
    caps_history = np.full((cycles, cluster.n_units), np.nan)
    counters = {
        "arbiter_restarts": 0,
        "arbiter_cycles": 0,
        "sweeps": 0,
        "violations": 0,
    }
    last_stats = None
    cycle_wall = np.zeros(cycles, dtype=np.float64)
    admitted: list[int] = []
    drained: list[int] = []
    drained_rcs: dict[int, int | None] = {}
    #: Clock-side chaos fires at dispatch time, but its arbiter-side
    #: half (admit registration, drain reclamation) must keep the
    #: sequential ordering — after arbiter cycle N-1, before arbiter
    #: cycle N — so it is deferred to the same cycle's finalize phase.
    deferred_admits: dict[int, list[int]] = {}
    deferred_drains: dict[int, list[int]] = {}
    saved_members: list[ArbiterShard] | None = None
    next_shard_id = n_shards
    arbiter: BudgetArbiter | None = None
    pending: PendingCycle | None = None

    def record_shard_events(docs) -> None:
        for doc in docs:
            event = event_from_doc(doc)
            shard_events.emit(
                event.time_s,
                event.kind,
                unit=event.unit,
                node_id=event.node_id,
                detail=event.detail,
            )

    def dispatch_phase(
        step: int, prior: PendingCycle | None
    ) -> PendingCycle:
        """Push cycle ``step`` to the fleet; clock-side chaos fires here."""
        nonlocal next_shard_id
        clock_now["now"] = float(step)
        if chaos.admit_at == step:
            shard_id = next_shard_id
            next_shard_id += 1
            new_units = node_counts[0] * spec.sockets_per_node
            pspec = make_pspec(
                shard_id,
                node_counts[0],
                float(new_units * spec.min_cap_w),
            )
            supervisor.admit(pspec)
            links[shard_id] = make_link(shard_id, consume_hello=False)
            arb_specs[shard_id] = ArbiterShard(
                shard_id=shard_id,
                link=links[shard_id],
                n_units=new_units,
                min_cap_w=spec.min_cap_w,
                max_cap_w=spec.tdp_w,
            )
            deferred_admits.setdefault(step, []).append(shard_id)
            admitted.append(shard_id)
        drains_now = sorted(
            sid for sid, at in chaos.drain_at.items() if at == step
        )
        for shard_id in drains_now:
            # Settle the victim's outstanding ack before SIGTERM: the
            # host could otherwise drain and exit with the previous
            # cycle document still queued, leaving its ack unsent.
            supervisor.settle(prior, shard_id)
            supervisor.begin_drain(shard_id)
        if drains_now:
            deferred_drains[step] = drains_now

        global_demand = np.asarray(demand_fn(step), dtype=np.float64)
        fill = float(global_demand.mean()) if global_demand.size else 0.0
        demands: dict[int, np.ndarray] = {}
        for shard_id, proc in supervisor.fleet.items():
            if shard_id in supervisor.draining:
                continue
            if shard_id < n_shards:
                demands[shard_id] = global_demand[base_slices[shard_id]]
            else:
                demands[shard_id] = np.full(proc.spec.n_units, fill)
        kills = {
            sid for sid, at in chaos.shard_kill_at.items() if at == step
        }
        hangs = {
            sid for sid, at in chaos.shard_hang_at.items() if at == step
        }
        return supervisor.dispatch(step, demands, kills, hangs, prior)

    def finalize_phase(step: int, pend: PendingCycle) -> None:
        """Collect cycle ``step``; arbiter-relative chaos fires here."""
        nonlocal arbiter, saved_members, last_stats
        now = float(step)
        clock_now["now"] = now
        for shard_id, at in chaos.partition_at.items():
            if at == step:
                links[shard_id].partition()
                harness_events.emit(
                    now,
                    "shard_partitioned",
                    node_id=shard_id,
                    detail="TCP link severed (dial suppressed)",
                )
        for shard_id, at in chaos.heal_at.items():
            if at == step:
                links[shard_id].heal()
                harness_events.emit(
                    now, "shard_partition_healed", node_id=shard_id
                )
        if chaos.arbiter_kill_at == step and arbiter is not None:
            counters["arbiter_cycles"] += arbiter.cycle
            counters["sweeps"] += arbiter.monitor.sweeps_run
            counters["violations"] += len(arbiter.monitor.violations)
            saved_members = list(arbiter.member_specs)
            arbiter = None
            harness_events.emit(now, "arbiter_killed", detail="injected kill")
        if chaos.arbiter_restart_at == step and arbiter is None:
            assert saved_members is not None
            arbiter = make_arbiter(saved_members, None)
            resumed = arbiter.resume()
            counters["arbiter_restarts"] += 1
            counters["arbiter_cycles"] -= arbiter.cycle
            harness_events.emit(
                now,
                "arbiter_restarted",
                detail=f"resumed_from_checkpoint={resumed}",
            )
            # Re-admit live fleet members the snapshot predates.
            for shard_id in sorted(supervisor.fleet):
                if (
                    shard_id not in arbiter.member_ids
                    and shard_id not in arbiter.pending_ids
                    and shard_id in arb_specs
                ):
                    arbiter.admit(arb_specs[shard_id], now)
        for shard_id in deferred_admits.pop(step, []):
            # The arbiter-restart path above may already have swept the
            # new shard in; only register a genuinely unknown member.
            if (
                arbiter is not None
                and shard_id not in arbiter.member_ids
                and shard_id not in arbiter.pending_ids
            ):
                arbiter.admit(arb_specs[shard_id], now)
        for shard_id in deferred_drains.get(step, []):
            if arbiter is not None:
                arbiter.drain(shard_id, now)

        statuses = supervisor.collect(pend)
        for shard_id, (status, ack) in sorted(statuses.items()):
            if status == "crashed":
                harness_events.emit(
                    now,
                    "shard_killed",
                    node_id=shard_id,
                    detail="SIGKILL delivered",
                )
            elif status == "hung":
                harness_events.emit(
                    now,
                    "shard_hung",
                    node_id=shard_id,
                    detail="silent past the ack deadline",
                )
            elif status == "ok" and ack is not None:
                if shard_id < n_shards:
                    sl = base_slices[shard_id]
                    power_history[step, sl] = ack["power"]
                    caps_history[step, sl] = ack["caps"]
                record_shard_events(ack.get("events", ()))
        for shard_id in deferred_drains.pop(step, []):
            doc = supervisor.finish_drain(shard_id)
            drained.append(shard_id)
            drained_rcs[shard_id] = doc.get("rc") if doc is not None else None
            record_shard_events((doc or {}).get("events", ()))

        if arbiter is not None and (step + 1) % cfg.period_cycles == 0:
            # Shards sent their summaries before their acks, but on a
            # different socket: wait for each live link's frame to land
            # before collecting, so healthy shards are never spuriously
            # quarantined by a scheduling race.
            for shard_id, (status, _ack) in statuses.items():
                if status == "ok" and shard_id in links:
                    links[shard_id].wait_readable(1.0)
            last_stats = arbiter.cycle_once(now=now)

    supervisor.start()
    try:
        for i in range(n_shards):
            links[i] = make_link(i)
            arb_specs[i] = ArbiterShard(
                shard_id=i,
                link=links[i],
                n_units=int(units[i]),
                min_cap_w=spec.min_cap_w,
                max_cap_w=spec.tdp_w,
            )
        arbiter = make_arbiter([arb_specs[i] for i in range(n_shards)], initial)

        # One-cycle pipeline: dispatch N+1, then finalize N while the
        # shards compute.  cycle_wall measures finalize-to-finalize (the
        # per-cycle throughput a deployment would see).  The pipeline
        # breaks at arbiter period boundaries: finalize N re-cuts leases
        # there, and its grants must be on the wire before demand N+1 or
        # grant application degrades into a scheduling race (applied at
        # N+1 on a fast shard, N+2 on a slow one).
        def close_cycle(pend: PendingCycle) -> None:
            nonlocal wall_anchor
            finalize_phase(pend.step, pend)
            wall_now = time.perf_counter()
            cycle_wall[pend.step] = wall_now - wall_anchor
            wall_anchor = wall_now

        wall_anchor = time.perf_counter()
        for step in range(cycles):
            if (
                pending is not None
                and (pending.step + 1) % cfg.period_cycles == 0
            ):
                close_cycle(pending)
                pending = None
            fresh = dispatch_phase(step, pending)
            if pending is not None:
                close_cycle(pending)
            pending = fresh
        if pending is not None:
            close_cycle(pending)
    finally:
        supervisor.stop()
        for link in links.values():
            link.close()

    if arbiter is not None:
        counters["arbiter_cycles"] += arbiter.cycle
        counters["sweeps"] += arbiter.monitor.sweeps_run
        counters["violations"] += len(arbiter.monitor.violations)

    events = ResilienceEventLog()
    events.extend(harness_events)
    events.extend(shard_events)

    return ShardedResult(
        cycles=cycles,
        n_shards=n_shards,
        budget_w=cluster.budget_w,
        events=events,
        timeline=timeline,
        leases_w=(
            arbiter.leases_w
            if arbiter is not None
            else np.full(n_shards, np.nan)
        ),
        power_history=power_history,
        caps_history=caps_history,
        shard_restarts=[supervisor.restarts.get(i, 0) for i in range(n_shards)],
        failed_shards=tuple(sorted(supervisor.failed)),
        arbiter_restarts=counters["arbiter_restarts"],
        arbiter_cycles=counters["arbiter_cycles"],
        invariant_sweeps=counters["sweeps"],
        invariant_violations=counters["violations"],
        worst_case_w=last_stats.worst_case_w if last_stats else None,
        steady_w=last_stats.steady_w if last_stats else None,
        bytes_links=sum(link.bytes_total for link in links.values()),
        checkpoint_dir=root,
        cycle_wall_s=cycle_wall,
        mode="process",
        admitted=tuple(admitted),
        drained=tuple(drained),
        drained_rcs=drained_rcs,
        link_reconnects=sum(link.reconnects for link in links.values()),
        bytes_clock=supervisor.bytes_clock,
        codec=codec,
    )

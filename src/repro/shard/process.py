"""Standalone shard-server process: ``dps-repro shard-server``.

:class:`ShardHost` is one shard of the control plane packaged as its own
OS process.  It owns a private sub-cluster (the shard's slice of the
simulated hardware), a full crash-recoverable stack —
:class:`~repro.recovery.controller.RecoverableController` + journal +
checkpoints under ``--dir`` — and a :class:`~repro.shard.server.
ShardServer` with its deploy server and node-agent clients, exactly the
stack a thread-mode shard runs in :mod:`repro.shard.harness`.

The host listens on one TCP port (kernel-chosen with ``--port 0``; the
bound address is published atomically through ``--port-file``) and
classifies each inbound connection by its first document:

* ``{"type": "hello", "role": "clock"}`` — the supervisor's lock-step
  clock.  It ships ``cycle`` documents carrying the per-unit demand
  slice and receives ``cycle_ack`` documents carrying the shard's true
  powers, hardware caps, and the structured events of the cycle.
* ``{"type": "hello", "role": "arbiter"}`` — a
  :class:`~repro.comm.shardlink.TcpShardLink` dialed by the
  :class:`~repro.shard.arbiter.BudgetArbiter`.  The host answers with
  its own shard HELLO (the admission handshake) and thereafter the
  connection carries grants in and summaries out.

Chaos enters through the same port: a ``hang`` document makes the host
go silent (the supervisor's ack deadline detects it and SIGKILLs the
process), SIGKILL needs no cooperation, and SIGTERM triggers the
graceful drain — checkpoint, freeze at the last confirmed committed
power, one final ``final=True`` summary to the arbiter, a ``drained``
document to the clock, exit 0.  ``--resume`` restarts the host from its
checkpoint store and persisted cluster state, the process-mode analog
of a supervised warm restart.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import select
import signal
import socket
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.cluster.cluster import Cluster
from repro.comm.net import bind_listener
from repro.comm.wire import (
    ArrayCache,
    FrameAssembler,
    FrameError,
    encode_frame,
)
from repro.core.config import ClusterSpec, RaplConfig
from repro.core.managers import available_managers, create_manager
from repro.deploy.client import DeployClient
from repro.deploy.loopback import _await_cap_application
from repro.recovery.checkpoint import CheckpointStore, CycleJournal
from repro.recovery.controller import RecoverableController
from repro.shard.lease import ArbiterConfig
from repro.shard.server import ShardServer
from repro.telemetry.log import ResilienceEvent, ResilienceEventLog

__all__ = ["ShardHost", "add_shard_server_args", "run_shard_server"]

#: Select poll interval — bounds signal-handling latency.
_POLL_S = 0.05


def event_to_doc(event: ResilienceEvent) -> dict:
    """Serialize one structured event for a cycle acknowledgement."""
    return {
        "time_s": event.time_s,
        "kind": event.kind,
        "unit": event.unit,
        "node_id": event.node_id,
        "detail": event.detail,
    }


def event_from_doc(doc: dict) -> ResilienceEvent:
    """Rebuild a shard-local event shipped through a cycle ack."""
    return ResilienceEvent(
        time_s=float(doc["time_s"]),
        kind=str(doc["kind"]),
        unit=doc.get("unit"),
        node_id=doc.get("node_id"),
        detail=str(doc.get("detail", "")),
    )


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class _HostLink:
    """The shard edge of the lease channel, backed by the arbiter conn.

    Grants parsed off the arbiter connection land in :attr:`inbox`; the
    shard's summaries are framed straight onto the same connection.  The
    object outlives any one TCP session — the host swaps the underlying
    socket on every (re)connect while the :class:`ShardServer` keeps one
    stable link reference.
    """

    def __init__(self, host: "ShardHost") -> None:
        self._host = host
        self.inbox: list[dict] = []
        self.bytes_total = 0

    def take_grants(self) -> list[dict]:
        docs, self.inbox = self.inbox, []
        return docs

    def send_summary(self, doc: dict) -> bool:
        return self._host.send_to_arbiter(doc)


class ShardHost:
    """One shard of the control plane, hosted behind a TCP listener."""

    def __init__(self, args: argparse.Namespace) -> None:
        self.shard_id = int(args.shard_id)
        self.dir = Path(args.dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.dt_s = float(args.dt)
        self.config = ArbiterConfig(
            period_cycles=args.period_cycles,
            lease_term_cycles=args.lease_term_cycles,
        )
        spec = ClusterSpec(
            n_nodes=args.nodes,
            sockets_per_node=args.sockets_per_node,
            tdp_w=args.tdp,
            min_cap_w=args.min_cap,
            idle_power_w=args.idle_power,
        )
        self.cluster = Cluster(
            spec,
            RaplConfig(noise_std_w=args.noise_std),
            rng=np.random.default_rng(args.seed),
        )
        floor = self.cluster.n_units * spec.min_cap_w
        ceiling = self.cluster.n_units * spec.tdp_w
        lease_w = float(np.clip(args.lease, floor, ceiling))

        manager = create_manager(args.manager)
        manager.bind(
            n_units=self.cluster.n_units,
            budget_w=lease_w,
            max_cap_w=spec.tdp_w,
            min_cap_w=spec.min_cap_w,
            dt_s=self.dt_s,
            rng=np.random.default_rng(args.seed + 1),
        )
        self.controller = RecoverableController(
            manager,
            store=CheckpointStore(self.dir, keep=args.keep_generations),
            journal=CycleJournal(self.dir / "journal.log"),
            checkpoint_every=args.checkpoint_every,
        )
        self.link = _HostLink(self)
        self.shard = ShardServer(
            shard_id=self.shard_id,
            controller=self.controller,
            link=self.link,
            config=self.config,
            events=ResilienceEventLog(),
        )
        self.state_path = self.dir / "cluster.json"
        if args.resume:
            self._resume()

        self.codec = str(getattr(args, "codec", "json"))
        self.max_ack_events = int(getattr(args, "max_ack_events", 256))
        self._persist_every = max(1, int(args.checkpoint_every))
        self._persist_queue: queue.Queue = queue.Queue()
        self._persist_worker: threading.Thread | None = None
        self._listener: socket.socket | None = None
        self._clock: socket.socket | None = None
        self._arbiter: socket.socket | None = None
        self._assemblers: dict[socket.socket, FrameAssembler] = {}
        #: Per-connection repeat-elision memos for outbound arrays,
        #: dropped with the connection exactly like its assembler.
        self._send_caches: dict[socket.socket, ArrayCache] = {}
        self._unassigned: list[socket.socket] = []
        self._events_sent = 0
        self._step = -1
        self._terminate = False
        self._clients: list[DeployClient] = []

    # -- lifecycle ------------------------------------------------------

    def _resume(self) -> None:
        """Warm-restart: checkpointed controller + persisted hardware."""
        if self.state_path.exists():
            state = json.loads(self.state_path.read_text(encoding="utf-8"))
            self._step = int(state["step"])
            self.cluster.restore(state["cluster"])
        if self.controller.resume():
            self.shard.resume_lease_state()
        # Meters re-anchor so the first post-restart reading is sane.
        self.cluster.rebaseline_meters()

    def _install_signals(self) -> None:
        def _on_term(signum: int, frame: object) -> None:
            self._terminate = True

        signal.signal(signal.SIGTERM, _on_term)
        signal.signal(signal.SIGINT, _on_term)

    def _start_stack(self, timeout_s: float) -> None:
        server = self.shard.start(timeout_s=timeout_s)
        for node in self.cluster.nodes:
            client = DeployClient(node, server.address, dt_s=self.dt_s)
            client.start()
            self._clients.append(client)
        server.accept_clients(len(self._clients))

    def _stop_stack(self) -> None:
        self.shard.stop()
        for client in self._clients:
            try:
                client.join()
            except RuntimeError:
                pass
        self._clients = []

    # -- connection plumbing -------------------------------------------

    def _publish_port(self, port_file: str | None) -> None:
        assert self._listener is not None
        host, port = self._listener.getsockname()[:2]
        if port_file:
            _atomic_write(Path(port_file), f"{host}:{port}\n")

    def _accept(self) -> None:
        assert self._listener is not None
        conn, _ = self._listener.accept()
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.setblocking(False)
        self._assemblers[conn] = FrameAssembler(cache=ArrayCache())
        self._send_caches[conn] = ArrayCache()
        self._unassigned.append(conn)

    def _drop(self, conn: socket.socket) -> None:
        self._assemblers.pop(conn, None)
        self._send_caches.pop(conn, None)
        if conn in self._unassigned:
            self._unassigned.remove(conn)
        if conn is self._clock:
            self._clock = None
        if conn is self._arbiter:
            self._arbiter = None
        try:
            conn.close()
        except OSError:
            pass

    def _assign_role(self, conn: socket.socket, doc: dict) -> None:
        role = doc.get("role")
        if conn in self._unassigned:
            self._unassigned.remove(conn)
        if role == "clock":
            if self._clock is not None:
                self._drop(self._clock)
            self._clock = conn
        elif role == "arbiter":
            if self._arbiter is not None:
                self._drop(self._arbiter)
            self._arbiter = conn
            # The admission handshake: identify ourselves so a pending
            # arbiter-side admit() can carve our lease.
            self._send(
                conn,
                {
                    "type": "hello",
                    "shard": self.shard_id,
                    "n_units": self.cluster.n_units,
                    "min_cap_w": self.cluster.spec.min_cap_w,
                    "max_cap_w": self.cluster.spec.tdp_w,
                },
            )
        else:
            self._drop(conn)

    def _send(
        self,
        conn: socket.socket,
        doc: dict,
        quantized: tuple[str, ...] = (),
    ) -> bool:
        frame = encode_frame(doc, quantized, self._send_caches.get(conn))
        try:
            conn.settimeout(2.0)
            conn.sendall(frame)
            return True
        except OSError:
            self._drop(conn)
            return False
        finally:
            try:
                conn.setblocking(False)
            except OSError:
                pass

    def send_to_arbiter(self, doc: dict) -> bool:
        if self._arbiter is None:
            return False
        return self._send(self._arbiter, doc)

    def _recv_docs(self, conn: socket.socket) -> list[dict] | None:
        """Drain one readable connection; None means it died."""
        assembler = self._assemblers.get(conn)
        if assembler is None:
            return None
        chunks: list[bytes] = []
        closed = False
        while True:
            try:
                data = conn.recv(65536)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                closed = True
                break
            if not data:
                closed = True
                break
            chunks.append(data)
        docs: list[dict] = []
        for data in chunks:
            try:
                docs.extend(assembler.feed(data))
            except FrameError:
                closed = True
                break
        if closed:
            self._drop(conn)
            return docs if docs else None
        return docs

    # -- the control cycle ---------------------------------------------

    def _drain_events(self) -> list[dict]:
        """Fresh events for the next ack, bounded by ``max_ack_events``.

        A chaos storm (mass quarantine, flapping clients) can emit far
        more structured events in one cycle than a frame should carry;
        past the cap the overflow collapses into one ``events_truncated``
        summary so the ack can never bloat past ``MAX_FRAME_BYTES`` and
        kill the clock link.
        """
        events = list(self.shard.events)
        fresh = events[self._events_sent :]
        self._events_sent = len(events)
        if len(fresh) > self.max_ack_events:
            dropped = len(fresh) - self.max_ack_events
            docs = [event_to_doc(e) for e in fresh[: self.max_ack_events]]
            docs.append(
                {
                    "time_s": fresh[-1].time_s,
                    "kind": "events_truncated",
                    "unit": None,
                    "node_id": self.shard_id,
                    "detail": (
                        f"{dropped} events over the per-ack cap of "
                        f"{self.max_ack_events} dropped"
                    ),
                }
            )
            return docs
        return [event_to_doc(e) for e in fresh]

    def _persist(self) -> None:
        """Synchronous persist: enqueue and wait for the write to land."""
        self._persist_async()
        self._persist_queue.join()

    def _persist_async(self) -> None:
        """Snapshot in-cycle, serialize and write off the critical path.

        The snapshot must be taken while the cycle's state is at rest,
        but turning it into JSON and pushing it to disk rides one
        long-lived writer thread: the host spends the tail of every
        cycle blocked in ``select`` waiting for the next demand slice,
        which is exactly when the writer runs.  (A thread *per* persist
        costs more in ``Thread.start`` than the serialization it
        offloads.)  The single writer drains its queue in order, so
        ``state_path`` always advances monotonically.
        """
        if self._persist_worker is None:
            self._persist_worker = threading.Thread(
                target=self._persist_loop, daemon=True
            )
            self._persist_worker.start()
        self._persist_queue.put(
            {"step": self._step, "cluster": self.cluster.snapshot()}
        )

    def _persist_loop(self) -> None:
        while True:
            state = self._persist_queue.get()
            try:
                if state is None:
                    return
                _atomic_write(self.state_path, json.dumps(state))
            finally:
                self._persist_queue.task_done()

    def _join_persist(self) -> None:
        """Flush pending writes and retire the writer thread."""
        if self._persist_worker is not None:
            self._persist_queue.put(None)
            self._persist_worker.join()
            self._persist_worker = None

    def _run_cycle(self, doc: dict) -> None:
        step = int(doc["step"])
        demand = np.asarray(doc["demand"], dtype=np.float64)
        self.cluster.step_physics(demand, self.dt_s)
        server = self.shard.server
        assert server is not None
        clients_by_id = {c.node.node_id: c for c in self._clients}
        served_before = {
            nid: c.cycles_served for nid, c in clients_by_id.items()
        }
        self.shard.run_cycle(now=float(step))
        _await_cap_application(server, clients_by_id, served_before)
        if (step + 1) % self.config.period_cycles == 0:
            self.shard.summarize(cycle=step)
        self._step = step
        # Full-cluster snapshots are the dominant per-cycle cost at
        # thousands of units; persist on the checkpoint cadence (the
        # controller's own granularity — resume is never fresher than
        # its checkpoint anyway) plus unconditionally on drain.  The
        # shard-id offset staggers the fleet so snapshots don't convoy
        # on the same cycle of every shard at once.
        if (step + 1 + self.shard_id) % self._persist_every == 0:
            self._persist_async()
        ack = {
            "type": "cycle_ack",
            "step": step,
            "status": "ok",
            "events": self._drain_events(),
        }
        if self.codec == "binary":
            # Vectorized ack: powers/caps ride as raw array frames —
            # f64 powers bit-exact, caps on the protocol's deci-watt
            # lattice packed as u16.
            ack["power"] = self.cluster.true_power_w()
            ack["caps"] = self.cluster.caps_w()
            if self._clock is not None:
                self._send(self._clock, ack, quantized=("caps",))
        else:
            ack["power"] = self.cluster.true_power_w().tolist()
            ack["caps"] = self.cluster.caps_w().tolist()
            if self._clock is not None:
                self._send(self._clock, ack)

    def _drain_and_exit(self) -> int:
        """SIGTERM path: freeze, final summary, notify the clock."""
        now = float(self._step + 1)
        self.shard.drain(now)
        self._persist()
        if self._clock is not None:
            self._send(
                self._clock,
                {
                    "type": "drained",
                    "step": self._step,
                    "events": self._drain_events(),
                },
            )
        self._stop_stack()
        return 0

    def _hang_forever(self) -> None:
        """Injected hang: stop answering everyone until SIGKILL."""
        while True:  # pragma: no cover - exits only by SIGKILL
            time.sleep(0.1)

    # -- main loop ------------------------------------------------------

    def serve(self, port: int, port_file: str | None, timeout_s: float) -> int:
        self._install_signals()
        self._listener = bind_listener("127.0.0.1", port)
        self._listener.setblocking(False)
        self._publish_port(port_file)
        self._start_stack(timeout_s)
        try:
            while True:
                if self._terminate:
                    return self._drain_and_exit()
                conns = [c for c in self._assemblers]
                readable, _, _ = select.select(
                    [self._listener] + conns, [], [], _POLL_S
                )
                # Grants outrank the clock: the supervisor sends arbiter
                # traffic before it dispatches the next demand slice, so
                # a grant that became readable in the same select round
                # must be applied before the cycle it funds is run.
                readable.sort(key=lambda s: s is self._clock)
                for sock in readable:
                    if sock is self._listener:
                        self._accept()
                        continue
                    docs = self._recv_docs(sock)
                    if docs is None:
                        continue
                    for doc in docs:
                        verdict = self._handle(sock, doc)
                        if verdict == "stop":
                            return 0
                        if verdict == "hang":
                            self._hang_forever()
        finally:
            self._join_persist()
            self._stop_stack()
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass

    def _handle(self, conn: socket.socket, doc: dict) -> str | None:
        kind = doc.get("type")
        if kind == "hello" and conn in self._unassigned:
            self._assign_role(conn, doc)
            return None
        if conn is self._arbiter:
            if kind == "grant":
                self.link.inbox.append(doc)
            return None
        if conn is self._clock:
            if kind == "cycle":
                self._run_cycle(doc)
                return None
            if kind == "hang":
                return "hang"
            if kind == "stop":
                return "stop"
        return None


def add_shard_server_args(parser: argparse.ArgumentParser) -> None:
    """CLI surface of ``dps-repro shard-server``."""
    parser.add_argument("--shard-id", type=int, required=True)
    parser.add_argument(
        "--nodes", type=int, required=True, help="nodes in this shard's slice"
    )
    parser.add_argument("--sockets-per-node", type=int, default=2)
    parser.add_argument("--tdp", type=float, default=165.0)
    parser.add_argument("--min-cap", type=float, default=30.0)
    parser.add_argument("--idle-power", type=float, default=12.0)
    parser.add_argument("--noise-std", type=float, default=0.0)
    parser.add_argument(
        "--manager", default="dps", help="power manager for this shard"
    )
    parser.add_argument(
        "--lease", type=float, required=True, help="initial lease (W)"
    )
    parser.add_argument("--dt", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--period-cycles", type=int, default=2)
    parser.add_argument("--lease-term-cycles", type=int, default=2)
    parser.add_argument("--checkpoint-every", type=int, default=2)
    parser.add_argument("--keep-generations", type=int, default=3)
    parser.add_argument(
        "--dir", required=True, help="checkpoint/journal/state directory"
    )
    parser.add_argument(
        "--codec",
        choices=("json", "binary"),
        default="json",
        help="clock-plane bulk encoding for demand/power/cap vectors",
    )
    parser.add_argument(
        "--max-ack-events",
        type=int,
        default=256,
        help="per-ack structured-event cap (overflow -> events_truncated)",
    )
    parser.add_argument(
        "--port", type=int, default=0, help="listener port (0 = kernel)"
    )
    parser.add_argument(
        "--port-file", default=None, help="publish host:port here atomically"
    )
    parser.add_argument("--timeout", type=float, default=5.0)
    parser.add_argument(
        "--resume",
        action="store_true",
        help="warm-restart from the checkpoint store and persisted cluster",
    )


def run_shard_server(args: argparse.Namespace) -> int:
    """Entry point behind ``dps-repro shard-server``."""
    if args.manager not in available_managers():
        print(
            f"unknown manager {args.manager!r}; one of "
            f"{', '.join(available_managers())}",
            file=sys.stderr,
        )
        return 2
    host = ShardHost(args)
    return host.serve(args.port, args.port_file, args.timeout)

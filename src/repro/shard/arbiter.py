"""The budget arbiter: the upper level of the sharded control plane.

:class:`BudgetArbiter` treats shards exactly as a
:class:`~repro.deploy.server.DeployServer` treats clients — the whole
safety stack is reused one level up:

* a :class:`~repro.safety.envelope.BudgetEnvelope` tracks per-shard
  commanded / dispatched / applied lease views (a grant is *dispatched*
  when the link accepts it and *applied* when a summary acknowledges its
  sequence number);
* a :class:`~repro.safety.guard.BudgetGuard` enforces the global budget
  on worst-case committed power, so a lease raise is deferred until the
  matching reclaim has been *acknowledged* — during a partition the
  reclaimed watts are provably not handed out twice;
* a :class:`~repro.resilience.health.ClientHealth` per shard drives
  quarantine (a shard missing one collection is DEGRADED and counted
  dark) and HELLO-style rejoin (any summary from a quarantined shard);
* an :class:`~repro.safety.invariants.InvariantMonitor` sweeps every
  arbiter cycle, including the ``shard-lease-conservation`` check over
  this object's :attr:`shard_worst_case_w` / :attr:`shard_steady_committed_w`.

The arbiter itself crash-recovers through a
:class:`~repro.recovery.checkpoint.CheckpointStore`: every cycle's state
(leases, sequence numbers, envelope views) is checkpointed, and
:meth:`resume` restores the newest valid generation.  While the arbiter
is down, shards freeze on their lease terms — safe-mode autonomy — so a
restored arbiter's conservative checkpoint view is always an upper bound
on what the shards actually hold.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

from repro.recovery.checkpoint import CheckpointStore
from repro.resilience.health import ClientHealth, HealthState, ResilienceConfig
from repro.safety import (
    BudgetEnvelope,
    BudgetGuard,
    InvariantContext,
    InvariantMonitor,
)
from repro.shard.lease import ArbiterConfig, BudgetLease, ShardLink, ShardSummary
from repro.shard.policy import redistribute
from repro.telemetry.log import (
    LeaseTimeline,
    ResilienceEventLog,
    ShardLeaseSample,
)

__all__ = ["ArbiterShard", "BudgetArbiter", "ArbiterCycleStats"]

def _num(value: float) -> float | None:
    """NaN-safe JSON scalar (NaN has no JSON encoding)."""
    return float(value) if np.isfinite(value) else None


def _denum(value: float | None) -> float:
    return np.nan if value is None else float(value)


#: Schema version of the arbiter checkpoint payload.  Version 2 keys
#: shard state (including each shard's envelope views) by ``shard_id``
#: so a restore tolerates membership changes between checkpoint and
#: recovery; version 1 payloads (positional, fixed membership) are still
#: accepted.
ARBITER_SNAPSHOT_VERSION = 2


class ArbiterShard(NamedTuple):
    """Static description of one shard under arbitration.

    Attributes:
        shard_id: the shard's index.
        link: the arbiter↔shard channel.
        n_units: power-capping units the shard owns.
        min_cap_w / max_cap_w: the shard's per-unit cap range (its lease
            floor is ``n_units * min_cap_w``, its ceiling
            ``n_units * max_cap_w``).
    """

    shard_id: int
    link: ShardLink
    n_units: int
    min_cap_w: float
    max_cap_w: float


class ArbiterCycleStats(NamedTuple):
    """Accounting of one arbiter cycle.

    Attributes:
        leases_w: per-shard leases after this cycle.
        dark: per-shard quarantine mask.
        reclaimed_w: watts drawn down from live shards this cycle.
        restored: True when the restore branch fired.
        guard_rung: degradation rung the arbiter guard took (None
            normally — the policy pre-fits the budget).
        worst_case_w: global worst-case committed power.
        steady_w: global steady committed power.
    """

    leases_w: np.ndarray
    dark: np.ndarray
    reclaimed_w: float
    restored: bool
    guard_rung: str | None
    worst_case_w: float
    steady_w: float


class _ShardRecord:
    """Mutable arbiter-side state of one shard."""

    def __init__(
        self, spec: ArbiterShard, lease_w: float, config: ResilienceConfig
    ) -> None:
        self.spec = spec
        self.lease_w = float(lease_w)
        self.seq = 0
        #: Grant values in flight, keyed by sequence number.
        self.sent: dict[int, float] = {}
        self.health = ClientHealth(config)
        self.last_summary: ShardSummary | None = None
        #: True once :meth:`BudgetArbiter.drain` marked this shard as
        #: leaving: it is treated as frozen (no grants, no reclaim) until
        #: its final frozen summary arrives, at which point the record is
        #: removed and its budget reclaimed.
        self.draining = False


class _PendingShard:
    """A shard admitted but not yet a member (HELLO/ADMIT handshake).

    The shard's hardware sits outside the budget boundary (racked but
    capped at its floor, the admission contract) until the arbiter can
    prove ``held + floor <= budget``; only then does it become a member
    and receive grants.
    """

    def __init__(self, spec: ArbiterShard) -> None:
        self.spec = spec
        self.floor_w = spec.n_units * spec.min_cap_w
        self.hello_seen = False
        self.newest_summary: ShardSummary | None = None


class BudgetArbiter:
    """Leases the global budget across shard servers.

    Args:
        budget_w: the global power budget (W).
        shards: the shard descriptions, in shard-id order.
        initial_leases_w: the per-shard budgets the shards were
            constructed with (granted synchronously at startup, so they
            seed the envelope's applied view); proportional-by-units
            shares are used when omitted.
        config: lease protocol knobs.
        events: structured event sink (``shard_*`` kinds; shared with
            the shards so one log tells the whole story).
        timeline: per-shard lease timeline to append to (owned by the
            caller so it survives arbiter restarts).
        store: checkpoint store for arbiter crash recovery (optional).
        resilience: shard quarantine/backoff knobs.
        invariant_mode: cadence of the arbiter's invariant monitor
            (``"strict"`` raises on violation — the chaos-test posture).
    """

    def __init__(
        self,
        budget_w: float,
        shards: Sequence[ArbiterShard],
        initial_leases_w: np.ndarray | None = None,
        config: ArbiterConfig | None = None,
        events: ResilienceEventLog | None = None,
        timeline: LeaseTimeline | None = None,
        store: CheckpointStore | None = None,
        resilience: ResilienceConfig | None = None,
        invariant_mode: str = "strict",
    ) -> None:
        if not shards:
            raise ValueError("arbiter needs at least one shard")
        if budget_w <= 0:
            raise ValueError(f"budget_w must be > 0, got {budget_w}")
        self.budget_w = float(budget_w)
        self.config = config or ArbiterConfig()
        self.events = events if events is not None else ResilienceEventLog()
        self.timeline = timeline if timeline is not None else LeaseTimeline()
        self.store = store
        self.cycle = 0

        units = np.asarray([s.n_units for s in shards], dtype=np.float64)
        self.floor_w = np.asarray(
            [s.n_units * s.min_cap_w for s in shards], dtype=np.float64
        )
        self.ceiling_w = np.asarray(
            [s.n_units * s.max_cap_w for s in shards], dtype=np.float64
        )
        if float(self.floor_w.sum()) > self.budget_w:
            raise ValueError(
                f"budget {self.budget_w} W cannot cover every shard's floor "
                f"({float(self.floor_w.sum())} W)"
            )
        if initial_leases_w is None:
            initial = np.clip(
                self.budget_w * units / float(units.sum()),
                self.floor_w,
                self.ceiling_w,
            )
        else:
            initial = np.asarray(initial_leases_w, dtype=np.float64)
            if initial.shape != (len(shards),):
                raise ValueError(
                    f"initial_leases_w shape {initial.shape} != "
                    f"({len(shards)},)"
                )

        res = resilience or ResilienceConfig()
        self._resilience = res
        self._pending: list[_PendingShard] = []
        self._records = [
            _ShardRecord(spec, initial[i], res)
            for i, spec in enumerate(shards)
        ]
        for i, spec in enumerate(shards):
            self.events.emit(
                0.0,
                "shard_registered",
                node_id=spec.shard_id,
                detail=f"units={spec.n_units} lease={initial[i]:.1f}W",
            )

        # The arbiter-level safety stack: one "unit" per shard.  The
        # applied view is seeded with the initial leases — the shards
        # were *constructed* holding them, which is exactly a confirmed
        # application (no pessimistic uncapped-hardware prior applies).
        self.envelope = BudgetEnvelope(
            len(shards), self.budget_w, float(self.ceiling_w.max())
        )
        self.envelope.record_dispatched(slice(None), initial)
        self.envelope.record_applied(slice(None), initial)
        self.guard = BudgetGuard(self.envelope, min_cap_w=0.0, events=self.events)
        self.monitor = InvariantMonitor(mode=invariant_mode, events=self.events)
        self._last_stats: ArbiterCycleStats | None = None

    # ------------------------------------------------------------------
    # Introspection the shard-lease-conservation invariant reads.
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._records)

    @property
    def leases_w(self) -> np.ndarray:
        """Current per-shard leases (last dispatched values)."""
        return np.asarray([r.lease_w for r in self._records])

    @property
    def dark_shards(self) -> tuple[int, ...]:
        """Shard ids currently quarantined (no summary at collection)."""
        return tuple(
            r.spec.shard_id for r in self._records if r.health.quarantined
        )

    @property
    def member_ids(self) -> tuple[int, ...]:
        """Shard ids currently under arbitration (admitted, not reaped)."""
        return tuple(r.spec.shard_id for r in self._records)

    @property
    def member_specs(self) -> tuple[ArbiterShard, ...]:
        """Specs of the current members (for reconstructing the arbiter
        after a crash when membership changed since construction)."""
        return tuple(r.spec for r in self._records)

    @property
    def pending_ids(self) -> tuple[int, ...]:
        """Shard ids admitted but still awaiting HELLO or headroom."""
        return tuple(p.spec.shard_id for p in self._pending)

    @property
    def shard_worst_case_w(self) -> float | None:
        """Global worst-case committed power of the last cycle (W)."""
        if self._last_stats is None:
            return None
        return self._last_stats.worst_case_w

    @property
    def shard_steady_committed_w(self) -> float | None:
        """Global steady committed power of the last cycle (W)."""
        if self._last_stats is None:
            return None
        return self._last_stats.steady_w

    # ------------------------------------------------------------------
    # Live membership.
    # ------------------------------------------------------------------

    def admit(self, spec: ArbiterShard, now: float) -> None:
        """Start the HELLO/ADMIT handshake for a joining shard.

        The shard becomes *pending*: its link is polled each cycle for a
        HELLO document (``{"type": "hello", "shard": id, ...}``, sent by
        the shard when the arbiter's link connects).  Once the HELLO has
        arrived *and* the proven held power plus the shard's floor fits
        the budget, the shard becomes a member — its lease is carved by
        the same :func:`redistribute` pass that shapes every other
        lease, with its floor reserved from the policy budget while it
        waits so live shards shrink to make room.

        Admission contract: the joining shard runs capped at its floor
        (``n_units * min_cap_w``) from before its HELLO until its first
        grant — that is what lets the arbiter book it at the floor
        instead of the pessimistic TDP prior.
        """
        taken = set(self.member_ids) | set(self.pending_ids)
        if spec.shard_id in taken:
            raise ValueError(f"shard {spec.shard_id} already known")
        pending = _PendingShard(spec)
        if float(self.floor_w.sum()) + pending.floor_w > self.budget_w:
            raise ValueError(
                f"budget {self.budget_w} W cannot cover shard "
                f"{spec.shard_id}'s floor on top of existing floors"
            )
        self._pending.append(pending)

    def drain(self, shard_id: int, now: float) -> None:
        """Begin draining a member shard (idempotent).

        The shard is marked draining — treated as frozen at its held
        power, granted nothing — and its budget is reclaimed only when a
        summary with ``final`` and ``frozen`` set arrives: the shard's
        acknowledgement that its hardware is pinned at the frozen power.
        Until then the watts stay booked, so a drain that never
        completes can never fund a double-spend.
        """
        record = self._record_for(shard_id)
        if record.draining:
            return
        active = sum(1 for r in self._records if not r.draining)
        if active <= 1:
            raise ValueError("cannot drain the last active shard")
        record.draining = True
        self.events.emit(
            now,
            "shard_draining",
            node_id=shard_id,
            detail=f"lease={record.lease_w:.1f}W held until final summary",
        )

    def _record_for(self, shard_id: int) -> _ShardRecord:
        for record in self._records:
            if record.spec.shard_id == shard_id:
                return record
        raise ValueError(f"unknown shard {shard_id}")

    def _held(self) -> np.ndarray:
        """Provable per-shard held power: the max of the last
        acknowledged lease and any unacknowledged grant in flight."""
        return np.where(
            np.isfinite(self.envelope.dispatched_w),
            np.maximum(self.envelope.applied_w, self.envelope.dispatched_w),
            self.envelope.applied_w,
        )

    def _rebuild_bounds(self) -> None:
        self.floor_w = np.asarray(
            [r.spec.n_units * r.spec.min_cap_w for r in self._records],
            dtype=np.float64,
        )
        self.ceiling_w = np.asarray(
            [r.spec.n_units * r.spec.max_cap_w for r in self._records],
            dtype=np.float64,
        )

    def _reap_drained(self, now: float) -> None:
        """Remove draining members whose final frozen summary arrived."""
        for i in reversed(range(len(self._records))):
            record = self._records[i]
            if not record.draining:
                continue
            summary = record.last_summary
            if summary is None or not (summary.final and summary.frozen):
                continue
            if len(self._records) <= 1:
                continue  # Never reap the last member.
            reclaimed = float(self._held()[i])
            self._records.pop(i)
            self.envelope.remove_unit(i)
            self._rebuild_bounds()
            self.events.emit(
                now,
                "shard_drained",
                node_id=record.spec.shard_id,
                detail=(
                    f"reclaimed={reclaimed:.1f}W after final frozen "
                    f"summary at shard cycle {summary.cycle}"
                ),
            )

    def _admit_pending(self, now: float) -> None:
        """Poll pending shards for HELLOs; finalize those that fit."""
        for pending in self._pending:
            for doc in pending.spec.link.take_summaries():
                kind = doc.get("type")
                if kind == "hello":
                    pending.hello_seen = True
                elif kind == "summary":
                    summary = ShardSummary.from_doc(doc)
                    newest = pending.newest_summary
                    if newest is None or summary.cycle >= newest.cycle:
                        pending.newest_summary = summary
        held_total = float(self._held().sum())
        for pending in list(self._pending):
            if not pending.hello_seen:
                continue
            fits = (
                held_total + pending.floor_w
                <= self.budget_w + self.config.budget_epsilon
            )
            if not fits:
                continue
            record = _ShardRecord(
                pending.spec, pending.floor_w, self._resilience
            )
            record.last_summary = pending.newest_summary
            self._records.append(record)
            # The admission contract pins the joining shard at its floor
            # before the HELLO, so the envelope books it there — not at
            # the uncapped-hardware TDP prior.
            self.envelope.append_unit(
                applied_w=pending.floor_w, dispatched_w=pending.floor_w
            )
            self._rebuild_bounds()
            self._pending.remove(pending)
            held_total += pending.floor_w
            self.events.emit(
                now,
                "shard_admitted",
                node_id=pending.spec.shard_id,
                detail=(
                    f"units={pending.spec.n_units} "
                    f"floor={pending.floor_w:.1f}W"
                ),
            )

    # ------------------------------------------------------------------
    # The arbiter cycle.
    # ------------------------------------------------------------------

    def cycle_once(self, now: float) -> ArbiterCycleStats:
        """Collect summaries, reshape membership, redistribute, grant,
        checkpoint, verify."""
        self.cycle += 1
        summaries = self._collect(now)
        # Membership changes happen between collection and policy: a
        # drained shard's final summary (just collected) releases its
        # budget for this very cycle, and an admitted shard joins the
        # redistribution that carves its first lease.
        self._reap_drained(now)
        self._admit_pending(now)
        dark = np.asarray(
            [r.health.quarantined for r in self._records], dtype=bool
        )

        # Held power per shard: what the envelope can prove about each
        # shard's budget — the max of the last acknowledged lease and any
        # unacknowledged grant still in flight.  Dark shards enter the
        # policy frozen at this value: the arbiter reclaims nothing it
        # cannot prove unused.  Draining shards and members that have
        # never reported are frozen the same way.
        held = self._held()
        frozen = dark | np.asarray(
            [r.draining or r.last_summary is None for r in self._records],
            dtype=bool,
        )
        lease_in = np.where(frozen, held, self.leases_w)
        committed = np.asarray(
            [
                r.last_summary.committed_w
                if r.last_summary is not None
                else np.nan
                for r in self._records
            ]
        )
        priority = np.asarray(
            [
                bool(r.last_summary.high_priority)
                if r.last_summary is not None
                else False
                for r in self._records
            ],
            dtype=bool,
        )
        units = np.asarray(
            [r.spec.n_units for r in self._records], dtype=np.float64
        )

        # Floors of helloed-but-unadmitted shards are reserved from the
        # policy budget, so live leases shrink toward making room; the
        # guard still enforces the *full* budget — reservation shapes
        # policy, never safety.  When the reservation is infeasible this
        # cycle (every live lease already protected), fall back to the
        # full budget and try again next cycle.
        reserved_w = sum(
            p.floor_w for p in self._pending if p.hello_seen
        )
        result = None
        if reserved_w > 0.0:
            try:
                result = redistribute(
                    lease_w=lease_in,
                    committed_w=committed,
                    floor_w=self.floor_w,
                    ceiling_w=self.ceiling_w,
                    n_units=units,
                    priority=priority,
                    frozen=frozen,
                    budget_w=self.budget_w - reserved_w,
                    config=self.config,
                )
            except ValueError:
                result = None
        if result is None:
            result = redistribute(
                lease_w=lease_in,
                committed_w=committed,
                floor_w=self.floor_w,
                ceiling_w=self.ceiling_w,
                n_units=units,
                priority=priority,
                frozen=frozen,
                budget_w=self.budget_w,
                config=self.config,
            )
        if result.reclaimed_w > self.config.budget_epsilon:
            self.events.emit(
                now,
                "shard_headroom_reclaimed",
                detail=f"{result.reclaimed_w:.1f}W from live shards",
            )

        # The guard paces lease raises against worst-case committed
        # power: a raise funded by a reclaim is deferred until the
        # lowered lease has been acknowledged, so the union of old and
        # new leases never exceeds the budget — the partition-safety
        # core.
        self.envelope.record_commanded(result.leases_w)
        decision = self.guard.enforce(
            result.leases_w,
            now=now,
            unreachable=dark,
            assume_tdp=False,
            grants_w=result.granted_w,
        )
        leases = decision.caps_w

        self._grant(leases, dark, summaries, now)
        self._sample(dark, frozen, committed)
        if self.store is not None:
            self.store.save(self.cycle, self.snapshot())

        stats = ArbiterCycleStats(
            leases_w=leases,
            dark=dark,
            reclaimed_w=result.reclaimed_w,
            restored=result.restored,
            guard_rung=decision.rung,
            worst_case_w=decision.committed.worst_case_total_w,
            steady_w=decision.committed.steady_total_w,
        )
        self._last_stats = stats
        self.monitor.run(
            InvariantContext(
                budget_w=self.budget_w,
                min_cap_w=float(self.floor_w.min()),
                max_cap_w=float(self.ceiling_w.max()),
                caps_w=decision.committed.steady_w,
                manager=self,
            ),
            now=now,
        )
        return stats

    def _collect(self, now: float) -> dict[int, ShardSummary]:
        """Drain every link; advance health from who reported."""
        summaries: dict[int, ShardSummary] = {}
        for i, record in enumerate(self._records):
            newest: ShardSummary | None = None
            for doc in record.spec.link.take_summaries():
                if doc.get("type") != "summary":
                    # E.g. the shard HELLO answering a TCP (re)connect.
                    continue
                summary = ShardSummary.from_doc(doc)
                if newest is None or summary.cycle >= newest.cycle:
                    newest = summary
            if newest is not None:
                if record.health.quarantined:
                    record.health.rejoin()
                    self.events.emit(
                        now,
                        "shard_rejoined",
                        node_id=record.spec.shard_id,
                        detail=f"summary at shard cycle {newest.cycle}",
                    )
                record.health.record_success()
                record.last_summary = newest
                summaries[record.spec.shard_id] = newest
                # The echoed seq acknowledges a grant: promote it to the
                # applied view and drop the in-flight entries it covers.
                if newest.seq in record.sent:
                    self.envelope.record_applied(
                        np.asarray([i]), record.sent[newest.seq]
                    )
                record.sent = {
                    s: v for s, v in record.sent.items() if s > newest.seq
                }
            else:
                if not record.health.quarantined:
                    state = record.health.record_failure()
                    self.events.emit(
                        now,
                        "shard_quarantined",
                        node_id=record.spec.shard_id,
                        detail="no summary at collection",
                    )
                    if state is HealthState.DEAD:
                        self.events.emit(
                            now,
                            "shard_dead",
                            node_id=record.spec.shard_id,
                            detail=(
                                "after "
                                f"{record.health.consecutive_failures} misses"
                            ),
                        )
                else:
                    before = record.health.state
                    after = record.health.tick()
                    if (
                        after is HealthState.DEAD
                        and before is not HealthState.DEAD
                    ):
                        self.events.emit(
                            now,
                            "shard_dead",
                            node_id=record.spec.shard_id,
                            detail="rejoin window expired",
                        )
        return summaries

    def _grant(
        self,
        leases: np.ndarray,
        dark: np.ndarray,
        summaries: dict[int, ShardSummary],
        now: float,
    ) -> None:
        """Send renewals/new grants to every live shard.

        Dark shards get nothing: a grant to a shard that cannot
        acknowledge it would only widen the in-flight window.  Draining
        shards get nothing either — their budget is on its way out, not
        up for renewal.  Every *accepted* send is recorded in the
        dispatched view; a drop at a just-partitioned link is not (it
        never reached the wire).
        """
        for i, record in enumerate(self._records):
            if dark[i] or record.draining:
                continue
            value = float(leases[i])
            changed = abs(value - record.lease_w) > 1e-9
            rejoining = record.spec.shard_id in summaries and summaries[
                record.spec.shard_id
            ].frozen
            record.seq += 1
            grant = BudgetLease(
                shard_id=record.spec.shard_id,
                seq=record.seq,
                budget_w=value,
                term_cycles=self.config.lease_term_cycles,
            )
            if not record.spec.link.send_grant(grant.to_doc()):
                record.seq -= 1  # Never hit the wire; reuse the number.
                continue
            record.sent[record.seq] = value
            record.lease_w = value
            self.envelope.record_dispatched(np.asarray([i]), value)
            if changed or rejoining:
                self.events.emit(
                    now,
                    "shard_lease_granted",
                    node_id=record.spec.shard_id,
                    detail=f"seq={record.seq} lease={value:.1f}W",
                )

    def _sample(
        self, dark: np.ndarray, frozen: np.ndarray, committed: np.ndarray
    ) -> None:
        for i, record in enumerate(self._records):
            c = float(committed[i])
            self.timeline.record(
                ShardLeaseSample(
                    cycle=self.cycle,
                    shard_id=record.spec.shard_id,
                    lease_w=record.lease_w,
                    committed_w=c,
                    headroom_w=record.lease_w - c,
                    seq=record.seq,
                    dark=bool(dark[i]),
                    frozen=bool(frozen[i]),
                )
            )

    # ------------------------------------------------------------------
    # Crash recovery.
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able document of the arbiter's durable state.

        Version 2: shard state — including each shard's slice of the
        envelope's three views — is keyed by ``shard_id``, so a restore
        after membership changed (a shard admitted or drained between
        the checkpoint and the crash) still lands every surviving
        shard's state where it belongs.
        """
        env = self.envelope
        return {
            "version": ARBITER_SNAPSHOT_VERSION,
            "cycle": self.cycle,
            "budget_w": self.budget_w,
            "shards": [
                {
                    "shard_id": r.spec.shard_id,
                    "lease_w": r.lease_w,
                    "seq": r.seq,
                    "sent": {str(s): v for s, v in r.sent.items()},
                    "draining": r.draining,
                    "commanded": _num(env.commanded_w[i]),
                    "dispatched": _num(env.dispatched_w[i]),
                    "applied": _num(env.applied_w[i]),
                }
                for i, r in enumerate(self._records)
            ],
        }

    def restore(self, state: dict) -> None:
        """Overwrite the durable state with a snapshot's content.

        Shard health deliberately restarts HEALTHY: the first
        post-restore collection re-learns liveness from who reports,
        while the restored envelope keeps the conservative held view —
        a shard that froze during the outage holds *less* than the
        checkpointed lease, never more.

        Version 2 payloads are matched by ``shard_id`` and tolerate
        membership drift: a member with no snapshot entry (admitted
        after the checkpoint) keeps its constructed state, and snapshot
        entries with no matching member (drained before the crash) are
        dropped.  Version 1 payloads (positional) are still accepted and
        require identical membership.
        """
        version = state.get("version")
        if version not in (1, ARBITER_SNAPSHOT_VERSION):
            raise ValueError(
                f"arbiter snapshot version {version!r} not in "
                f"(1, {ARBITER_SNAPSHOT_VERSION})"
            )
        docs = state["shards"]
        if version == 1:
            if len(docs) != len(self._records):
                raise ValueError(
                    f"snapshot holds {len(docs)} shards, arbiter has "
                    f"{len(self._records)}"
                )
            self.cycle = int(state["cycle"])
            for record, doc in zip(self._records, docs):
                if int(doc["shard_id"]) != record.spec.shard_id:
                    raise ValueError(
                        f"snapshot shard {doc['shard_id']} != "
                        f"{record.spec.shard_id}"
                    )
                self._restore_record(record, doc)
            self.envelope.restore(state["envelope"])
            return
        self.cycle = int(state["cycle"])
        by_id = {int(doc["shard_id"]): doc for doc in docs}
        for i, record in enumerate(self._records):
            doc = by_id.get(record.spec.shard_id)
            if doc is None:
                continue  # Admitted after the checkpoint.
            self._restore_record(record, doc)
            self.envelope.commanded_w[i] = _denum(doc["commanded"])
            self.envelope.dispatched_w[i] = _denum(doc["dispatched"])
            self.envelope.applied_w[i] = _denum(doc["applied"])

    @staticmethod
    def _restore_record(record: _ShardRecord, doc: dict) -> None:
        record.lease_w = float(doc["lease_w"])
        record.seq = int(doc["seq"])
        record.sent = {int(s): float(v) for s, v in doc["sent"].items()}
        record.draining = bool(doc.get("draining", False))
        record.last_summary = None

    def resume(self) -> bool:
        """Restore from the newest valid checkpoint, if any.

        Returns:
            True when a checkpoint was restored.
        """
        if self.store is None:
            return False
        ckpt = self.store.load_latest()
        if ckpt is None:
            return False
        self.restore(ckpt.payload)
        return True

"""Lease documents and the arbiter↔shard channel.

The arbiter and its shards speak framed JSON documents — the same
4-byte-length wire format the experiment plane uses
(:mod:`repro.comm.wire`) — over a :class:`ShardLink`.  The link is an
in-process loopback, but every document round-trips through
``encode_frame`` / ``FrameAssembler`` so the arbiter protocol is
wire-faithful byte for byte, and a link can be *partitioned*: frames
sent while partitioned are dropped at the sending edge in both
directions, exactly what a severed TCP path looks like to each end.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.comm.wire import FrameAssembler, encode_frame

__all__ = ["ArbiterConfig", "BudgetLease", "ShardLink", "ShardSummary"]


@dataclass(frozen=True)
class ArbiterConfig:
    """Knobs of the budget arbiter and its lease protocol.

    Attributes:
        period_cycles: control cycles between arbiter cycles (shards
            summarize and the arbiter redistributes on this cadence).
        lease_term_cycles: control cycles a lease stays valid without a
            renewal; a shard past the term freezes itself at its last
            confirmed committed power until a grant arrives.
        restore_threshold: when every shard's committed power is at or
            below this fraction of its proportional base lease, the
            arbiter *restores* all leases to base — the shard-level
            analog of :func:`repro.core.readjust.restore`.
        headroom_fraction: reclaim slack — a live shard's lease is drawn
            down toward ``committed * (1 + headroom_fraction)``, never
            to its exact committed power, so ordinary cycle-to-cycle
            variation does not thrash the leases.
        budget_epsilon: watts below which leftover budget is not worth
            redistributing (mirrors ``ReadjustConfig.budget_epsilon``).
    """

    period_cycles: int = 2
    lease_term_cycles: int = 6
    restore_threshold: float = 0.80
    headroom_fraction: float = 0.10
    budget_epsilon: float = 1.0

    def __post_init__(self) -> None:
        if self.period_cycles < 1:
            raise ValueError(
                f"period_cycles must be >= 1, got {self.period_cycles}"
            )
        if self.lease_term_cycles < self.period_cycles:
            raise ValueError(
                "lease_term_cycles must be >= period_cycles "
                f"({self.period_cycles}), got {self.lease_term_cycles}"
            )
        if not 0.0 < self.restore_threshold <= 1.0:
            raise ValueError(
                "restore_threshold must be in (0, 1], got "
                f"{self.restore_threshold}"
            )
        if self.headroom_fraction < 0.0:
            raise ValueError(
                "headroom_fraction must be >= 0, got "
                f"{self.headroom_fraction}"
            )
        if self.budget_epsilon <= 0.0:
            raise ValueError(
                f"budget_epsilon must be > 0, got {self.budget_epsilon}"
            )


@dataclass(frozen=True)
class BudgetLease:
    """One budget grant from the arbiter to a shard.

    Attributes:
        shard_id: the lessee.
        seq: per-shard monotonic grant sequence number; a shard applies
            only grants newer than its last applied one, and echoes the
            applied ``seq`` in every summary as the acknowledgement the
            arbiter's applied-view accounting keys on.
        budget_w: the leased budget (W).
        term_cycles: control cycles the lease stays valid without
            renewal.
    """

    shard_id: int
    seq: int
    budget_w: float
    term_cycles: int

    def to_doc(self) -> dict:
        return {
            "type": "grant",
            "shard": self.shard_id,
            "seq": self.seq,
            "budget_w": self.budget_w,
            "term": self.term_cycles,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "BudgetLease":
        if doc.get("type") != "grant":
            raise ValueError(f"expected a grant document, got {doc.get('type')!r}")
        return cls(
            shard_id=int(doc["shard"]),
            seq=int(doc["seq"]),
            budget_w=float(doc["budget_w"]),
            term_cycles=int(doc["term"]),
        )


@dataclass(frozen=True)
class ShardSummary:
    """One shard's periodic report to the arbiter.

    Attributes:
        shard_id: the reporter.
        cycle: the shard's control cycle the report describes.
        seq: the lease sequence number the shard has applied (the
            acknowledgement; 0 before any grant beyond the initial one).
        lease_w: the shard's current lease (a frozen shard still reports
            the lease it will return to — its operating budget is the
            lower frozen value, recoverable as ``min(lease_w,
            committed_w)`` since freezing clamps the budget there).
        committed_w: steady-state committed power of the shard's
            envelope (W) — what its hardware will hold once this cycle's
            dispatch lands.
        worst_w: worst-case committed power of the shard's envelope (W).
        headroom_w: ``lease_w - committed_w``.
        high_priority: True when the shard is running high-priority
            demand (its manager reports priority units, or utilization
            is near the lease).
        n_units: power-capping units the shard owns.
        frozen: True while the shard has frozen itself after a lease
            expiry.
        final: True on the last summary of a draining shard — the
            arbiter reclaims the shard's budget only once a summary with
            both ``final`` and ``frozen`` set has arrived (the shard's
            acknowledgement that its hardware is pinned at the frozen
            power and will never rise again).
    """

    shard_id: int
    cycle: int
    seq: int
    lease_w: float
    committed_w: float
    worst_w: float
    headroom_w: float
    high_priority: bool
    n_units: int
    frozen: bool
    final: bool = False

    def to_doc(self) -> dict:
        return {
            "type": "summary",
            "shard": self.shard_id,
            "cycle": self.cycle,
            "seq": self.seq,
            "lease_w": self.lease_w,
            "committed_w": self.committed_w,
            "worst_w": self.worst_w,
            "headroom_w": self.headroom_w,
            "high_priority": self.high_priority,
            "n_units": self.n_units,
            "frozen": self.frozen,
            "final": self.final,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ShardSummary":
        if doc.get("type") != "summary":
            raise ValueError(
                f"expected a summary document, got {doc.get('type')!r}"
            )
        return cls(
            shard_id=int(doc["shard"]),
            cycle=int(doc["cycle"]),
            seq=int(doc["seq"]),
            lease_w=float(doc["lease_w"]),
            committed_w=float(doc["committed_w"]),
            worst_w=float(doc["worst_w"]),
            headroom_w=float(doc["headroom_w"]),
            high_priority=bool(doc["high_priority"]),
            n_units=int(doc["n_units"]),
            frozen=bool(doc["frozen"]),
            final=bool(doc.get("final", False)),
        )


class ShardLink:
    """Duplex arbiter↔shard channel with wire-faithful framing.

    Thread-safe: the arbiter runs on the harness thread while each shard
    runs on its own worker thread.  Documents are serialized to real
    frames at the sending edge and reassembled at the receiving edge, so
    a protocol bug (oversized frame, malformed body) fails here exactly
    as it would over TCP.

    A partitioned link drops frames at send time in both directions —
    the sender learns nothing (``send_*`` still returns False so the
    *caller* can account for the unsent grant; a real sender would learn
    it only later, which is why the arbiter's envelope records a
    dispatch only for accepted sends).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._to_shard: list[bytes] = []
        self._to_arbiter: list[bytes] = []
        self._shard_assembler = FrameAssembler()
        self._arbiter_assembler = FrameAssembler()
        self._partitioned = False
        #: Frame bytes accepted in both directions.
        self.bytes_total = 0

    @property
    def partitioned(self) -> bool:
        """True while the link drops every frame."""
        with self._lock:
            return self._partitioned

    def partition(self) -> None:
        """Sever the link (idempotent)."""
        with self._lock:
            self._partitioned = True

    def heal(self) -> None:
        """Restore the link (idempotent).  Frames dropped while
        partitioned are gone — the protocol must re-send, not replay."""
        with self._lock:
            self._partitioned = False

    # -- arbiter edge ---------------------------------------------------

    def send_grant(self, doc: dict) -> bool:
        """Frame and enqueue one grant toward the shard.

        Returns False when the link is partitioned (frame dropped).
        """
        frame = encode_frame(doc)
        with self._lock:
            if self._partitioned:
                return False
            self._to_shard.append(frame)
            self.bytes_total += len(frame)
        return True

    def take_summaries(self) -> list[dict]:
        """Drain and decode every summary frame queued toward the arbiter.

        Frames are drained under the lock but decoded outside it: a
        malformed frame raising from the assembler must never leave the
        lock held in a way that wedges senders, and decode work (JSON
        parsing) must not serialize against ``send_*`` on other threads.
        """
        with self._lock:
            frames = self._to_arbiter
            self._to_arbiter = []
        docs: list[dict] = []
        for frame in frames:
            docs.extend(self._arbiter_assembler.feed(frame))
        return docs

    # -- shard edge -----------------------------------------------------

    def send_summary(self, doc: dict) -> bool:
        """Frame and enqueue one summary toward the arbiter.

        Returns False when the link is partitioned (frame dropped).
        """
        frame = encode_frame(doc)
        with self._lock:
            if self._partitioned:
                return False
            self._to_arbiter.append(frame)
            self.bytes_total += len(frame)
        return True

    def take_grants(self) -> list[dict]:
        """Drain and decode every grant frame queued toward the shard.

        Same locking discipline as :meth:`take_summaries`: drain under
        the lock, decode outside it.
        """
        with self._lock:
            frames = self._to_shard
            self._to_shard = []
        docs: list[dict] = []
        for frame in frames:
            docs.extend(self._shard_assembler.feed(frame))
        return docs

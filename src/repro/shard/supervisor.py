"""Subprocess fleet management for process-mode sharded sessions.

:class:`ShardSupervisor` is the OS-process analog of the thread-per-
shard :class:`~repro.recovery.supervisor.Supervisor` loop in
:mod:`repro.shard.harness`: it spawns each shard as a real
``dps-repro shard-server`` subprocess (``python -m repro shard-server``),
drives the fleet in lock step over per-shard TCP clock connections, and
applies the chaos plan with the operating system's own weapons —
``SIGKILL`` for a crash, an injected silent hang detected by the ack
deadline, ``SIGTERM`` for a graceful drain, and a checkpoint ``--resume``
respawn for the warm restart.

Respawns pin the port the shard first learned from the kernel so the
arbiter's :class:`~repro.comm.shardlink.TcpShardLink` can keep dialing
one stable address across restarts; the listener's ``SO_REUSEADDR``
bind-retry loop absorbs the TIME_WAIT window.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

import repro
from repro.comm.wire import (
    ArrayCache,
    FrameAssembler,
    FrameError,
    encode_frame,
)
from repro.deploy.loopback import RecoveryOptions
from repro.telemetry.log import ResilienceEventLog

__all__ = [
    "PendingCycle",
    "ProcessShardSpec",
    "ShardProcess",
    "ShardSupervisor",
]

#: Seconds a fresh subprocess gets to publish its port file.
_SPAWN_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class ProcessShardSpec:
    """Launch description of one shard-server subprocess.

    Attributes:
        shard_id: the shard's index (stable across restarts).
        n_nodes / sockets_per_node: the shard's private sub-cluster.
        tdp_w / min_cap_w / idle_power_w: per-unit hardware envelope.
        manager: power-manager registry name for the shard.
        lease_w: the initial lease the shard is constructed holding.
        dt_s: control period.
        seed: sub-cluster / manager randomness seed.
        dir: the shard's checkpoint/journal/state directory.
        noise_std_w: RAPL measurement-noise sigma (0 for drills).
        period_cycles / lease_term_cycles: lease protocol knobs.
        checkpoint_every / keep_generations: recovery knobs.
        codec: clock-plane bulk encoding — ``"json"`` ships demand/
            power/cap vectors as JSON float lists, ``"binary"`` as raw
            array frames (:mod:`repro.comm.wire`).
        max_ack_events: per-ack structured-event cap forwarded to the
            shard server (overflow collapses into ``events_truncated``).
    """

    shard_id: int
    n_nodes: int
    sockets_per_node: int
    tdp_w: float
    min_cap_w: float
    idle_power_w: float
    manager: str
    lease_w: float
    dt_s: float
    seed: int
    dir: Path
    noise_std_w: float = 0.0
    period_cycles: int = 2
    lease_term_cycles: int = 2
    checkpoint_every: int = 2
    keep_generations: int = 3
    codec: str = "json"
    max_ack_events: int = 256

    @property
    def n_units(self) -> int:
        return self.n_nodes * self.sockets_per_node


class ShardProcess:
    """Handle on one shard-server subprocess and its clock connection."""

    def __init__(self, spec: ProcessShardSpec, timeout_s: float = 5.0) -> None:
        self.spec = spec
        self.timeout_s = timeout_s
        self.proc: subprocess.Popen | None = None
        self.address: tuple[str, int] | None = None
        self._clock: socket.socket | None = None
        self._assembler = FrameAssembler(cache=ArrayCache())
        #: Repeat-elision memo for outbound demand slices; fresh per
        #: clock connection, like the assembler's receive-side cache.
        self._send_cache = ArrayCache()
        #: Decoded-but-unclaimed clock documents.  With pipelined cycles
        #: two acks can land in one recv batch; whatever a read pass
        #: decodes beyond the document it wants must be kept, in arrival
        #: order, for the next pass.
        self._inbox: list[dict] = []
        self._log_path = spec.dir / f"shard-{spec.shard_id}.log"
        self._port_file = spec.dir / "port"
        #: Frame bytes over the clock connection, both directions,
        #: accumulated across respawns (the handle outlives the process).
        self.bytes_clock = 0

    # -- spawning -------------------------------------------------------

    def _command(self, resume: bool) -> list[str]:
        spec = self.spec
        # Respawns pin the originally learned port so the arbiter link's
        # dial address survives the restart.
        port = self.address[1] if self.address is not None else 0
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "shard-server",
            "--shard-id", str(spec.shard_id),
            "--nodes", str(spec.n_nodes),
            "--sockets-per-node", str(spec.sockets_per_node),
            "--tdp", str(spec.tdp_w),
            "--min-cap", str(spec.min_cap_w),
            "--idle-power", str(spec.idle_power_w),
            "--noise-std", str(spec.noise_std_w),
            "--manager", spec.manager,
            "--lease", str(spec.lease_w),
            "--dt", str(spec.dt_s),
            "--seed", str(spec.seed),
            "--period-cycles", str(spec.period_cycles),
            "--lease-term-cycles", str(spec.lease_term_cycles),
            "--checkpoint-every", str(spec.checkpoint_every),
            "--keep-generations", str(spec.keep_generations),
            "--dir", str(spec.dir),
            "--codec", spec.codec,
            "--max-ack-events", str(spec.max_ack_events),
            "--port", str(port),
            "--port-file", str(self._port_file),
            "--timeout", str(self.timeout_s),
        ]
        if resume:
            cmd.append("--resume")
        return cmd

    def launch(self, resume: bool = False) -> None:
        """Start the subprocess without waiting for it to come up.

        Pair with :meth:`complete`; :meth:`spawn` does both.  Splitting
        the two lets a supervisor overlap the interpreter start-up of a
        whole fleet instead of paying it serially per shard.
        """
        self.close_clock()
        self.spec.dir.mkdir(parents=True, exist_ok=True)
        if self._port_file.exists():
            self._port_file.unlink()
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else f"{src_root}{os.pathsep}{existing}"
        )
        log = open(self._log_path, "ab")
        try:
            self.proc = subprocess.Popen(
                self._command(resume), stdout=log, stderr=log, env=env
            )
        finally:
            log.close()

    def complete(self) -> None:
        """Wait for the launched subprocess's port and dial its clock."""
        self.address = self._await_port()
        self._connect_clock()

    def spawn(self, resume: bool = False) -> None:
        """Launch (or relaunch) the subprocess and dial its clock port."""
        self.launch(resume)
        self.complete()

    def _await_port(self) -> tuple[str, int]:
        deadline = time.monotonic() + _SPAWN_TIMEOUT_S
        while time.monotonic() < deadline:
            assert self.proc is not None
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"shard {self.spec.shard_id} exited rc={self.proc.returncode} "
                    f"before publishing its port (see {self._log_path})"
                )
            if self._port_file.exists():
                text = self._port_file.read_text(encoding="utf-8").strip()
                if text:
                    host, _, port = text.rpartition(":")
                    return (host, int(port))
            time.sleep(0.02)
        raise RuntimeError(
            f"shard {self.spec.shard_id} did not publish a port within "
            f"{_SPAWN_TIMEOUT_S}s (see {self._log_path})"
        )

    def _connect_clock(self) -> None:
        assert self.address is not None
        sock = socket.create_connection(self.address, timeout=self.timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = encode_frame({"type": "hello", "role": "clock"})
        sock.sendall(hello)
        self.bytes_clock += len(hello)
        self._clock = sock
        self._assembler = FrameAssembler(cache=ArrayCache())
        self._send_cache = ArrayCache()
        self._inbox.clear()

    # -- clock traffic --------------------------------------------------

    def _send(self, doc: dict) -> bool:
        if self._clock is None:
            return False
        frame = encode_frame(doc, cache=self._send_cache)
        try:
            self._clock.sendall(frame)
            self.bytes_clock += len(frame)
            return True
        except OSError:
            self.close_clock()
            return False

    def command_cycle(self, step: int, demand: np.ndarray) -> bool:
        if self.spec.codec == "binary":
            payload = np.ascontiguousarray(demand, dtype=np.float64)
        else:
            payload = demand.tolist()
        return self._send(
            {"type": "cycle", "step": int(step), "demand": payload}
        )

    def send_hang(self) -> bool:
        return self._send({"type": "hang"})

    def send_stop(self) -> bool:
        return self._send({"type": "stop"})

    def _claim(self, want: str) -> dict | None:
        """Pop the oldest inbox document of the wanted type, if any."""
        for i, doc in enumerate(self._inbox):
            if doc.get("type") == want:
                return self._inbox.pop(i)
        return None

    def _read_until(self, want: str, timeout_s: float) -> dict | None:
        """Read clock docs until one of type ``want`` arrives (or not).

        Documents of other types (and any *extra* documents of the
        wanted type decoded from the same batch) are queued in arrival
        order for later reads — with one cycle in flight ahead of the
        collector, ack N and ack N+1 routinely share a recv batch.
        """
        claimed = self._claim(want)
        if claimed is not None:
            return claimed
        if self._clock is None:
            return None
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            self._clock.settimeout(remaining)
            try:
                data = self._clock.recv(65536)
            except socket.timeout:
                return None
            except OSError:
                self.close_clock()
                return None
            if not data:
                self.close_clock()
                return None
            self.bytes_clock += len(data)
            try:
                docs = self._assembler.feed(data)
            except FrameError:
                self.close_clock()
                return None
            self._inbox.extend(docs)
            claimed = self._claim(want)
            if claimed is not None:
                return claimed

    def await_ack(self, step: int, timeout_s: float) -> dict | None:
        doc = self._read_until("cycle_ack", timeout_s)
        if doc is not None and int(doc.get("step", -1)) != step:
            raise RuntimeError(
                f"shard {self.spec.shard_id} acked cycle {doc.get('step')} "
                f"during cycle {step}"
            )
        return doc

    def read_drained(self, timeout_s: float) -> dict | None:
        return self._read_until("drained", timeout_s)

    # -- process control ------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL — the no-cooperation crash."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10.0)
        self.close_clock()

    def terminate(self) -> None:
        """SIGTERM — request the graceful drain."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)

    def wait(self, timeout_s: float) -> int | None:
        if self.proc is None:
            return None
        try:
            return self.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            return None

    def close_clock(self) -> None:
        if self._clock is not None:
            try:
                self._clock.close()
            except OSError:
                pass
            self._clock = None

    def shutdown(self) -> None:
        """Best-effort teardown: polite stop, then SIGKILL."""
        if self.alive:
            self.send_stop()
            if self.wait(2.0) is None:
                self.kill()
        self.close_clock()


@dataclass
class PendingCycle:
    """One dispatched-but-uncollected fleet cycle.

    :meth:`ShardSupervisor.dispatch` returns one of these after pushing
    a cycle's demand slices to every healthy shard; the shards compute
    concurrently while the parent does other work (in the pipelined
    harness: finalizing the *previous* cycle).  :meth:`ShardSupervisor.
    collect` turns it into the familiar status map.  Chaos-struck shards
    (killed, hung, in outage, failed) get their status at dispatch time;
    ``awaiting`` holds the shards whose acks are still on the wire.
    """

    step: int
    statuses: dict[int, tuple[str, dict | None]] = field(default_factory=dict)
    awaiting: list[int] = field(default_factory=list)


class ShardSupervisor:
    """Lock-step fleet driver with restart bookkeeping and chaos hooks.

    Args:
        specs: launch descriptions, one per initial shard.
        recovery: restart budget, outage length, and the hang deadline
            (``hang_timeout_s`` doubles as the per-cycle ack deadline
            after which a silent shard is declared hung and SIGKILLed).
        events: structured sink for ``shard_restarted`` /
            ``controller_*`` transitions (merged by the harness).
        timeout_s: shard-server deploy-socket deadline, passed through.
    """

    def __init__(
        self,
        specs: list[ProcessShardSpec],
        recovery: RecoveryOptions,
        events: ResilienceEventLog | None = None,
        timeout_s: float = 5.0,
    ) -> None:
        self.recovery = recovery
        self.events = events if events is not None else ResilienceEventLog()
        self.timeout_s = timeout_s
        self.fleet: dict[int, ShardProcess] = {
            spec.shard_id: ShardProcess(spec, timeout_s) for spec in specs
        }
        self.restarts: dict[int, int] = {sid: 0 for sid in self.fleet}
        self.failed: set[int] = set()
        self.draining: set[int] = set()
        self._outage: dict[int, int] = {}
        self._hung: set[int] = set()
        #: Clock bytes of shards already retired from the fleet (drained).
        self._bytes_retired = 0

    @property
    def bytes_clock(self) -> int:
        """Frame bytes over every clock connection, both directions."""
        return self._bytes_retired + sum(
            proc.bytes_clock for proc in self.fleet.values()
        )

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        # Launch the whole fleet first, then collect ports: interpreter
        # start-up overlaps across shards instead of paying it serially.
        for proc in self.fleet.values():
            proc.launch()
        for proc in self.fleet.values():
            proc.complete()

    def admit(self, spec: ProcessShardSpec) -> ShardProcess:
        """Spawn an additional shard joining the fleet mid-session."""
        if spec.shard_id in self.fleet:
            raise ValueError(f"shard {spec.shard_id} already in the fleet")
        proc = ShardProcess(spec, self.timeout_s)
        proc.spawn()
        self.fleet[spec.shard_id] = proc
        self.restarts[spec.shard_id] = 0
        return proc

    def begin_drain(self, shard_id: int) -> None:
        """SIGTERM the shard; it freezes, reports, and exits on its own."""
        self.draining.add(shard_id)
        self.fleet[shard_id].terminate()

    def finish_drain(self, shard_id: int, timeout_s: float = 10.0) -> dict | None:
        """Collect the drained notice and reap the exited process.

        Returns:
            The ``drained`` document (with the shard's trailing events),
            or None when the shard never reported; ``rc`` is attached.
        """
        proc = self.fleet.pop(shard_id)
        self.draining.discard(shard_id)
        doc = proc.read_drained(timeout_s)
        rc = proc.wait(timeout_s)
        if rc is None:
            proc.kill()
            rc = proc.proc.returncode if proc.proc is not None else None
        proc.close_clock()
        self._bytes_retired += proc.bytes_clock
        if doc is not None:
            doc["rc"] = rc
        return doc

    def stop(self) -> None:
        for proc in self.fleet.values():
            proc.shutdown()

    # -- the lock-step cycle --------------------------------------------

    def command(
        self,
        step: int,
        demands: dict[int, np.ndarray],
        kill_ids: set[int] | None = None,
        hang_ids: set[int] | None = None,
    ) -> dict[int, tuple[str, dict | None]]:
        """Drive every fleet shard through one cycle, start to finish.

        The sequential convenience around :meth:`dispatch` +
        :meth:`collect`.  Mirrors the thread harness's ack statuses:
        ``ok`` (with the ack document), ``crashed`` (SIGKILL landed this
        cycle), ``hung`` (injected or detected silence), ``outage``
        (restart in progress), ``failed`` (restart budget exhausted).
        """
        return self.collect(self.dispatch(step, demands, kill_ids, hang_ids))

    def dispatch(
        self,
        step: int,
        demands: dict[int, np.ndarray],
        kill_ids: set[int] | None = None,
        hang_ids: set[int] | None = None,
        pending: PendingCycle | None = None,
    ) -> PendingCycle:
        """Push one cycle's demands to the fleet without awaiting acks.

        The pipelined harness calls ``dispatch(N+1, ..., pending=prev)``
        before ``collect(prev)``: every shard computes cycle N+1 while
        the parent finalizes cycle N.  Shards struck by chaos *this*
        cycle are handled here — a SIGKILL or SIGTERM destroys the
        process (and, through the kernel's RST, any acked-but-unread
        bytes), so a victim's outstanding ack from ``pending`` is
        settled (:meth:`settle`) before the signal goes out.  An
        injected hang needs no settling: the ``hang`` document is
        ordered after the previous cycle document on the clock socket,
        so the previous ack is already on its way.
        """
        kill_ids = kill_ids or set()
        hang_ids = hang_ids or set()
        out = PendingCycle(step=step)
        statuses = out.statuses
        for shard_id, proc in sorted(self.fleet.items()):
            if shard_id in self.draining:
                continue
            if shard_id in self.failed:
                statuses[shard_id] = ("failed", None)
                continue
            if shard_id in self._hung:
                # The watchdog half of the injected hang: the shard went
                # silent last cycle; SIGKILL it after the hang deadline.
                time.sleep(self.recovery.hang_timeout_s)
                self.events.emit(
                    float(step),
                    "controller_hung",
                    node_id=shard_id,
                    detail=(
                        f"no ack within {self.recovery.hang_timeout_s}s; "
                        "SIGKILL"
                    ),
                )
                proc.kill()
                self._hung.discard(shard_id)
                self._crash(shard_id)
                statuses[shard_id] = (
                    ("failed", None)
                    if shard_id in self.failed
                    else ("outage", None)
                )
                continue
            if shard_id in self._outage:
                statuses[shard_id] = ("outage", None)
                self._tick_outage(shard_id)
                continue
            if shard_id in kill_ids:
                self.settle(pending, shard_id)
                proc.kill()
                self._crash(shard_id)
                statuses[shard_id] = ("crashed", None)
                continue
            if shard_id in hang_ids:
                proc.send_hang()
                self._hung.add(shard_id)
                statuses[shard_id] = ("hung", None)
                continue
            if not proc.alive or not proc.command_cycle(
                step, demands[shard_id]
            ):
                # Unexpected death (not scheduled chaos) — treat as a
                # crash and consume the restart budget.
                self.settle(pending, shard_id)
                self._crash(shard_id)
                statuses[shard_id] = ("crashed", None)
                continue
            out.awaiting.append(shard_id)
        return out

    def settle(self, pending: PendingCycle | None, shard_id: int) -> None:
        """Collect one shard's outstanding ack ahead of the others.

        Called before anything that destroys the shard's buffered clock
        traffic — SIGKILL (kill chaos, kernel RST drops received-but-
        unread bytes) or SIGTERM (the host may drain before processing a
        queued cycle document).  A shard that never acks is recorded
        ``hung`` for the pending cycle *without* crash bookkeeping: the
        caller is about to account the process's death itself.
        """
        if pending is None or shard_id not in pending.awaiting:
            return
        pending.awaiting.remove(shard_id)
        proc = self.fleet.get(shard_id)
        ack = (
            proc.await_ack(pending.step, self.recovery.hang_timeout_s)
            if proc is not None
            else None
        )
        pending.statuses[shard_id] = (
            ("ok", ack) if ack is not None else ("hung", None)
        )

    def collect(
        self, pending: PendingCycle
    ) -> dict[int, tuple[str, dict | None]]:
        """Await every outstanding ack of a dispatched cycle."""
        for shard_id in list(pending.awaiting):
            proc = self.fleet.get(shard_id)
            ack = (
                proc.await_ack(pending.step, self.recovery.hang_timeout_s)
                if proc is not None
                else None
            )
            if ack is None:
                # Silent past the deadline: the real watchdog. SIGKILL
                # and restart from the checkpoint.
                self.events.emit(
                    float(pending.step),
                    "controller_hung",
                    node_id=shard_id,
                    detail=(
                        f"no ack within {self.recovery.hang_timeout_s}s; "
                        "SIGKILL"
                    ),
                )
                if proc is not None:
                    proc.kill()
                self._crash(shard_id)
                pending.statuses[shard_id] = ("hung", None)
            else:
                pending.statuses[shard_id] = ("ok", ack)
        pending.awaiting = []
        return pending.statuses

    # -- restart bookkeeping --------------------------------------------

    def _crash(self, shard_id: int) -> None:
        self.restarts[shard_id] += 1
        self.events.emit(
            float(self.restarts[shard_id]),
            "controller_killed",
            node_id=shard_id,
            detail=f"shard-server process down (restart {self.restarts[shard_id]})",
        )
        if self.restarts[shard_id] > self.recovery.max_restarts:
            self.failed.add(shard_id)
            return
        if self.recovery.restart_delay_cycles > 0:
            self._outage[shard_id] = self.recovery.restart_delay_cycles
        else:
            self._respawn(shard_id)

    def _tick_outage(self, shard_id: int) -> None:
        self._outage[shard_id] -= 1
        if self._outage[shard_id] <= 0:
            del self._outage[shard_id]
            self._respawn(shard_id)

    def _respawn(self, shard_id: int) -> None:
        proc = self.fleet[shard_id]
        proc.spawn(resume=True)
        self.events.emit(
            float(self.restarts[shard_id]),
            "controller_restarted",
            node_id=shard_id,
            detail=(
                f"attempt {self.restarts[shard_id]} of "
                f"{self.recovery.max_restarts + 1}, resumed from checkpoint"
            ),
        )
        self.events.emit(
            float(self.restarts[shard_id]),
            "shard_restarted",
            node_id=shard_id,
            detail=(
                f"shard-server respawned with --resume "
                f"(attempt {self.restarts[shard_id]} of "
                f"{self.recovery.max_restarts + 1})"
            ),
        )

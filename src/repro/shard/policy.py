"""Budget redistribution across shards — DPS's readjust shape, one level up.

:func:`redistribute` is the arbiter's decision step.  It is deliberately
the same three-branch shape :mod:`repro.core.readjust` applies to units:

* **restore** — when every shard's committed power sits comfortably
  below its proportional base lease, all leases return to base (the
  analog of :func:`repro.core.readjust.restore`);
* **hand out** — otherwise, live shards are drawn down toward their
  committed power plus a headroom allowance, and the reclaimed watts are
  water-filled to high-priority shards below their ceilings with
  inverse-per-unit-lease weights (smaller per-unit leases fill first,
  exactly the readjusting module's fairness);
* **equalize** — with no leftover to hand out, high-priority shards are
  equalized per unit, the analog of the readjust equalization branch.

The function is **pure and deterministic**: same inputs, same leases —
no RNG, no wall clock, no hidden state.  Frozen shards (dark, or holding
an expired lease) are never touched: their entry in ``lease_w`` is the
power the arbiter must assume they hold (its envelope's held view), and
the function fits every live shard around that.

Two properties hold for every return value (the Hypothesis suite in
``tests/shard/test_policy.py`` drives them):

1. ``sum(leases) <= budget_w`` (within float tolerance);
2. a live shard's lease never falls below its *protected* power —
   ``clip(committed, floor, old_lease)`` — so the arbiter only reclaims
   headroom the shard has proven unused.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.shard.lease import ArbiterConfig

__all__ = ["Redistribution", "redistribute"]

#: Relative budget tolerance (matches the manager-level invariant).
_REL_TOL = 1e-9
#: Water-fill rounds before giving up on distributing a residue.
_MAX_FILL_ROUNDS = 64


class Redistribution(NamedTuple):
    """Outcome of one arbiter decision.

    Attributes:
        leases_w: new per-shard leases (frozen shards keep their input
            value untouched).
        granted_w: per-shard lease increase over the input (0 where the
            lease shrank or the shard is frozen) — the arbiter guard's
            shaveable grants.
        reclaimed_w: total watts drawn down from live shards.
        restored: True when the restore branch fired.
    """

    leases_w: np.ndarray
    granted_w: np.ndarray
    reclaimed_w: float
    restored: bool


def redistribute(
    lease_w: np.ndarray,
    committed_w: np.ndarray,
    floor_w: np.ndarray,
    ceiling_w: np.ndarray,
    n_units: np.ndarray,
    priority: np.ndarray,
    frozen: np.ndarray,
    budget_w: float,
    config: ArbiterConfig | None = None,
) -> Redistribution:
    """Redistribute the global budget across shards.

    Args:
        lease_w: current lease per shard; for frozen shards, the power
            the arbiter must assume held (its envelope's held view).
        committed_w: steady committed power per shard from the latest
            summary (NaN where no summary exists — such shards must be
            flagged frozen).
        floor_w: hard per-shard lease floor (``n_units * min_cap_w``).
        ceiling_w: per-shard lease ceiling (``n_units * max_cap_w``).
        n_units: units per shard.
        priority: True for shards running high-priority demand.
        frozen: True for shards the arbiter must not touch (dark, or
            self-frozen on an expired lease).
        budget_w: the global budget.
        config: thresholds (defaults if omitted).

    Returns:
        The new leases and their accounting.

    Raises:
        ValueError: inconsistent shapes, a live shard with NaN committed
            power, or an infeasible input (frozen holds plus live
            protected power exceed the budget — the caller's invariant
            already failed upstream).
    """
    cfg = config or ArbiterConfig()
    lease = np.asarray(lease_w, dtype=np.float64)
    committed = np.asarray(committed_w, dtype=np.float64)
    floor = np.asarray(floor_w, dtype=np.float64)
    ceiling = np.asarray(ceiling_w, dtype=np.float64)
    units = np.asarray(n_units, dtype=np.float64)
    prio = np.asarray(priority, dtype=bool)
    dark = np.asarray(frozen, dtype=bool)
    n = lease.shape[0]
    for name, arr in (
        ("committed_w", committed),
        ("floor_w", floor),
        ("ceiling_w", ceiling),
        ("n_units", units),
        ("priority", prio),
        ("frozen", dark),
    ):
        if arr.shape != (n,):
            raise ValueError(f"{name} shape {arr.shape} != ({n},)")
    if n == 0:
        raise ValueError("redistribute needs at least one shard")
    live = ~dark
    if np.any(live & ~np.isfinite(committed)):
        raise ValueError(
            "live shards "
            f"{np.flatnonzero(live & ~np.isfinite(committed)).tolist()} "
            "have no committed power — flag them frozen"
        )

    tol = budget_w * _REL_TOL + 1e-9
    # Protected power: what a live shard has proven it uses.  Reclaiming
    # below it would cut a shard off mid-commitment, so it is the lower
    # bound for every draw-down and shave below.
    protected = np.where(
        live, np.clip(committed, floor, np.maximum(lease, floor)), lease
    )
    if float(protected.sum()) > budget_w + tol:
        raise ValueError(
            f"infeasible: frozen holds plus live protected power "
            f"{float(protected.sum()):.3f} W exceed budget {budget_w:.3f} W"
        )

    # Restore branch: every shard comfortably below its proportional base.
    base = budget_w * units / float(units.sum())
    if not np.any(dark) and np.all(
        committed <= cfg.restore_threshold * base + tol
    ):
        new = np.clip(base, floor, ceiling)
        new = _fit(new, protected, live, budget_w, tol)
        return _package(new, lease, live, restored=True)

    # Draw live shards toward committed power plus the headroom
    # allowance; a lease never grows in this step and never drops below
    # the protected power.
    target = np.where(
        live,
        np.maximum(
            protected,
            np.minimum(lease, committed * (1.0 + cfg.headroom_fraction)),
        ),
        lease,
    )

    leftover = budget_w - float(target.sum())
    if leftover > cfg.budget_epsilon:
        target = _water_fill(
            target, ceiling, units, live, prio, leftover, cfg
        )
    elif int(np.count_nonzero(live & prio)) >= 2:
        # Equalize the per-unit lease across high-priority shards (the
        # readjust equalization branch): redistribute their own total.
        sel = live & prio
        per_unit = float(target[sel].sum()) / float(units[sel].sum())
        target = target.copy()
        target[sel] = np.clip(per_unit * units[sel], protected[sel], ceiling[sel])

    new = _fit(target, protected, live, budget_w, tol)
    return _package(new, lease, live, restored=False)


def _water_fill(
    target: np.ndarray,
    ceiling: np.ndarray,
    units: np.ndarray,
    live: np.ndarray,
    prio: np.ndarray,
    leftover: float,
    cfg: ArbiterConfig,
) -> np.ndarray:
    """Hand leftover watts to eligible shards, smaller per-unit lease first.

    Weights are ``n_units**2 / lease`` — proportional allocation of
    per-unit watts by inverse per-unit lease, the shard-level analog of
    the readjusting module's inverse-cap weighting.  High-priority
    shards fill first; remaining watts spill to every live shard.
    """
    new = target.copy()
    for eligible_mask in (live & prio, live):
        for _ in range(_MAX_FILL_ROUNDS):
            eligible = eligible_mask & (new < ceiling - 1e-12)
            if leftover <= cfg.budget_epsilon or not np.any(eligible):
                break
            weights = np.where(
                eligible, units**2 / np.maximum(new, 1e-9), 0.0
            )
            share = leftover * weights / float(weights.sum())
            room = ceiling - new
            add = np.minimum(share, room)
            new = new + add
            leftover -= float(add.sum())
        if leftover <= cfg.budget_epsilon:
            break
    return new


def _fit(
    new: np.ndarray,
    protected: np.ndarray,
    live: np.ndarray,
    budget_w: float,
    tol: float,
) -> np.ndarray:
    """Shave live leases proportionally to their slack above protected
    power until the total fits the budget (feasibility was validated)."""
    total = float(new.sum())
    if total <= budget_w + tol:
        return new
    over = total - budget_w
    slack = np.where(live, new - protected, 0.0)
    total_slack = float(slack.sum())
    if total_slack <= 0.0:
        return new  # Already at protected everywhere; input was feasible.
    return new - slack * min(1.0, over / total_slack)


def _package(
    new: np.ndarray, lease: np.ndarray, live: np.ndarray, restored: bool
) -> Redistribution:
    granted = np.where(live, np.maximum(new - lease, 0.0), 0.0)
    reclaimed = float(np.where(live, np.maximum(lease - new, 0.0), 0.0).sum())
    return Redistribution(
        leases_w=new,
        granted_w=granted,
        reclaimed_w=reclaimed,
        restored=restored,
    )

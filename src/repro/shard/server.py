"""One shard of the sharded control plane.

A :class:`ShardServer` owns a contiguous slice of the cluster's clients
and runs them under a full crash-recoverable stack: a
:class:`~repro.recovery.controller.RecoverableController` (journal +
checkpoints) driving a :class:`~repro.deploy.server.DeployServer` with
the budget-safety envelope enabled.  Its budget is a **lease** from the
:class:`~repro.shard.arbiter.BudgetArbiter`: renewals arrive over the
shard's :class:`~repro.shard.lease.ShardLink` ahead of every control
cycle, and a lease that outlives its term without renewal makes the
shard *freeze itself* — it drops its own budget to its last confirmed
committed power (never below its floor) and holds there until grants
flow again.  Freezing is the shard-local half of partition safety: even
with the arbiter dark forever, a frozen shard cannot grow into budget
another shard may have been handed.

The durable parts (controller, lease state, link) live on this object
across crashes; the :class:`~repro.deploy.server.DeployServer` and its
sockets are per-attempt and rebuilt by :meth:`start` after every
supervised restart.
"""

from __future__ import annotations

import numpy as np

from repro.deploy.server import DeployCycleStats, DeployServer
from repro.recovery.controller import RecoverableController
from repro.resilience.health import ResilienceConfig
from repro.safety import SafetyConfig
from repro.shard.lease import ArbiterConfig, BudgetLease, ShardLink, ShardSummary
from repro.telemetry.log import ResilienceEventLog

__all__ = ["ShardServer"]


class ShardServer:
    """A leased, crash-recoverable slice of the control plane.

    Args:
        shard_id: this shard's index (rides shard events as ``node_id``).
        controller: the shard's recoverable controller, already bound to
            the shard's slice topology with the initial lease as budget.
        link: the channel to the arbiter.
        config: the lease protocol's shared knobs.
        events: structured event sink shared with the arbiter/harness.
        resilience: client quarantine configuration for the deploy
            server (defaults applied when omitted).
        safety: deploy-server safety envelope configuration; the
            envelope must be enabled (it is both the source of the
            shard's committed-power summaries and the budget enforcement
            at the shard's actuation boundary), so a config with
            ``guard=True`` is substituted when omitted.
    """

    def __init__(
        self,
        shard_id: int,
        controller: RecoverableController,
        link: ShardLink,
        config: ArbiterConfig | None = None,
        events: ResilienceEventLog | None = None,
        resilience: ResilienceConfig | None = None,
        safety: SafetyConfig | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.controller = controller
        self.link = link
        self.config = config or ArbiterConfig()
        self.events = events if events is not None else ResilienceEventLog()
        self.resilience = resilience or ResilienceConfig()
        self.safety = safety or SafetyConfig(guard=True)
        #: The budget currently leased to this shard (W).
        self.lease_w = float(controller.budget_w)
        #: Sequence number of the last applied grant (0 = the initial
        #: lease the shard was constructed with).
        self.lease_seq = 0
        #: Control cycles since the last applied grant.
        self.lease_age = 0
        #: True while the shard has frozen itself on an expired lease.
        self.frozen = False
        self.server: DeployServer | None = None
        self._last_stats: DeployCycleStats | None = None

    @property
    def n_units(self) -> int:
        return self.controller.n_units

    @property
    def floor_w(self) -> float:
        """The lowest budget this shard can operate under."""
        return self.controller.n_units * self.controller.min_cap_w

    # ------------------------------------------------------------------
    # Per-attempt lifecycle.
    # ------------------------------------------------------------------

    def start(self, host: str = "127.0.0.1", timeout_s: float = 5.0) -> DeployServer:
        """Build this attempt's deploy server (always on an ephemeral port).

        The previous attempt's server, if any, is shut down first — its
        sockets are dead after a crash either way.
        """
        if self.server is not None:
            self.server.shutdown()
        self.server = DeployServer(
            self.controller,
            host=host,
            port=0,
            timeout_s=timeout_s,
            resilience=self.resilience,
            events=self.events,
            safety=self.safety,
        )
        return self.server

    def stop(self) -> None:
        """Shut down the current attempt's server (idempotent)."""
        if self.server is not None:
            self.server.shutdown()
            self.server = None

    # ------------------------------------------------------------------
    # The lease state machine.
    # ------------------------------------------------------------------

    def poll_grants(self, now: float) -> bool:
        """Apply the newest pending grant, if any.

        Grants are idempotent renewals: any grant with a sequence number
        at or below the last applied one only resets the lease age (the
        arbiter re-sends the current value as the renewal); a newer one
        also re-leases the budget through the whole stack — controller,
        manager, and the deploy server's envelope/guard.

        Returns:
            True when any grant (renewal or new) was consumed.
        """
        newest: BudgetLease | None = None
        for doc in self.link.take_grants():
            grant = BudgetLease.from_doc(doc)
            if newest is None or grant.seq > newest.seq:
                newest = grant
        if newest is None:
            return False
        self.lease_age = 0
        if newest.seq > self.lease_seq:
            self.lease_seq = newest.seq
            self._apply_budget(newest.budget_w)
            self.lease_w = newest.budget_w
            self.events.emit(
                now,
                "shard_lease_applied",
                node_id=self.shard_id,
                detail=f"seq={newest.seq} lease={newest.budget_w:.1f}W",
            )
        elif self.frozen or self.controller.budget_w != self.lease_w:
            # A renewal after a freeze restores the full lease.
            self._apply_budget(self.lease_w)
        if self.frozen:
            self.frozen = False
            self.events.emit(
                now,
                "shard_unfrozen",
                node_id=self.shard_id,
                detail=f"lease renewed at seq={self.lease_seq}",
            )
        return True

    def resume_lease_state(self) -> None:
        """Rebuild the lease state machine after a crash-restore.

        In-memory lease state dies with the process; what survives is
        the checkpointed manager budget (re-converged through the
        journal's per-step budget records by
        :meth:`~repro.recovery.controller.RecoverableController.resume`).
        That budget *is* the recovered lease.  The sequence number
        restarts at 0 — any grant the arbiter sends is newer by
        definition, and the arbiter's applied view stays at its own
        conservative value until the shard echoes a fresh sequence.
        """
        self.lease_w = float(self.controller.budget_w)
        self.lease_seq = 0
        self.lease_age = 0
        self.frozen = False

    def _apply_budget(self, budget_w: float) -> None:
        """Push a budget through controller, manager, and safety stack."""
        self.controller.set_budget_w(budget_w)
        if self.server is not None and self.server.envelope is not None:
            self.server.envelope.budget_w = float(budget_w)

    def _expire_lease(self, now: float) -> None:
        """Freeze at the last confirmed committed power (floor-clipped)."""
        self.events.emit(
            now,
            "shard_lease_expired",
            node_id=self.shard_id,
            detail=(
                f"seq={self.lease_seq} age={self.lease_age} "
                f"term={self.config.lease_term_cycles}"
            ),
        )
        self._freeze(now)

    def _freeze(self, now: float) -> None:
        committed = self._steady_committed_w()
        frozen_w = float(
            np.clip(
                committed if np.isfinite(committed) else self.lease_w,
                self.floor_w,
                self.lease_w,
            )
        )
        self.frozen = True
        self._apply_budget(frozen_w)
        self.events.emit(
            now,
            "shard_frozen",
            node_id=self.shard_id,
            detail=f"held at {frozen_w:.1f}W of {self.lease_w:.1f}W lease",
        )

    def drain(self, now: float) -> bool:
        """Graceful shutdown: checkpoint, freeze, send the final summary.

        The SIGTERM half of the drain protocol: the shard checkpoints
        its controller, pins its budget at the last confirmed committed
        power (so its hardware can never rise again), and reports one
        last summary with ``final=True`` — the acknowledgement the
        arbiter's :meth:`~repro.shard.arbiter.BudgetArbiter.drain` waits
        for before reclaiming the lease.

        Returns:
            True when the final summary was accepted by the link.
        """
        self.events.emit(
            now,
            "shard_draining",
            node_id=self.shard_id,
            detail="graceful drain requested",
        )
        self.controller.checkpoint()
        if not self.frozen:
            self._freeze(now)
        return self.summarize(cycle=int(now), final=True)

    # ------------------------------------------------------------------
    # The control cycle and the summary.
    # ------------------------------------------------------------------

    def run_cycle(self, now: float) -> DeployCycleStats:
        """One shard control cycle: grants → deploy cycle → lease aging."""
        if self.server is None:
            raise RuntimeError("shard server not started")
        self.poll_grants(now)
        stats = self.server.control_cycle()
        self._last_stats = stats
        self.lease_age += 1
        if not self.frozen and self.lease_age > self.config.lease_term_cycles:
            self._expire_lease(now)
        return stats

    def _committed(self) -> tuple[float, float]:
        """(steady, worst-case) committed power of the shard (W)."""
        assert self.server is not None and self.server.envelope is not None
        env = self.server.envelope
        unreachable = np.zeros(self.n_units, dtype=bool)
        for record in self.server._clients:
            if record.health.quarantined:
                unreachable[record.base : record.base + record.n_units] = True
        candidate = np.where(
            np.isfinite(env.dispatched_w), env.dispatched_w, env.applied_w
        )
        cp = env.assess(
            candidate_w=candidate,
            unreachable=unreachable,
            assume_tdp=self.resilience.fallback == "assume-tdp",
        )
        return cp.steady_total_w, cp.worst_case_total_w

    def _steady_committed_w(self) -> float:
        if self.server is None or self.server.envelope is None:
            return float("nan")
        return self._committed()[0]

    def _high_priority(self) -> bool:
        """Whether this shard carries high-priority demand.

        Prefers the manager stack's own priority introspection (the DPS
        step info); falls back to a utilization heuristic — committed
        power near the lease means the shard would use more.
        """
        seen: set[int] = set()
        node: object | None = self.controller.manager
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            info = getattr(node, "last_info", None)
            if info is not None and hasattr(info, "priority"):
                return bool(np.any(np.asarray(info.priority, dtype=bool)))
            node = getattr(node, "manager", None) or getattr(node, "inner", None)
        steady = self._steady_committed_w()
        budget = float(self.controller.budget_w)
        return bool(np.isfinite(steady) and steady >= 0.85 * budget)

    def summarize(self, cycle: int, final: bool = False) -> bool:
        """Build and send this cycle's summary to the arbiter.

        Args:
            cycle: the shard control cycle the summary describes.
            final: True on a drain's last summary (the shard's frozen
                state will never change again).

        Returns:
            True when the summary was accepted by the link (False under
            a partition — the shard cannot tell a dropped frame from a
            dead arbiter; the lease term handles both identically).
        """
        steady, worst = self._committed()
        summary = ShardSummary(
            shard_id=self.shard_id,
            cycle=cycle,
            seq=self.lease_seq,
            lease_w=self.lease_w,
            committed_w=steady,
            worst_w=worst,
            headroom_w=self.lease_w - steady,
            high_priority=self._high_priority(),
            n_units=self.n_units,
            frozen=self.frozen,
            final=final,
        )
        return self.link.send_summary(summary.to_doc())

"""Sharded control plane: N shard servers under one budget arbiter.

One :class:`~repro.deploy.server.DeployServer` scales to a few hundred
clients per cycle; beyond that the control plane itself must shard.  This
package splits the cluster into N *shards* — each a crash-recoverable
deploy server plus :class:`~repro.recovery.controller.
RecoverableController` owning a contiguous slice of the clients — and
puts them under one :class:`~repro.shard.arbiter.BudgetArbiter` that
periodically collects shard summaries and redistributes the global
budget with the same restore / hand-out / equalize shape DPS applies to
units (:mod:`repro.core.readjust`), one level up.

Shard budgets are **leases with deadlines**, not grants: a shard missing
its renewal freezes itself at its last confirmed committed power, the
arbiter only reclaims headroom it can prove unused (acknowledged through
the lease sequence numbers in shard summaries), and the global
worst-case committed power tracked by the arbiter's
:class:`~repro.safety.envelope.BudgetEnvelope` never exceeds the budget
even with a dark shard.
"""

from repro.shard.arbiter import ArbiterShard, BudgetArbiter
from repro.shard.harness import ShardChaosSchedule, ShardedResult, run_sharded
from repro.shard.lease import (
    ArbiterConfig,
    BudgetLease,
    ShardLink,
    ShardSummary,
)
from repro.shard.policy import Redistribution, redistribute
from repro.shard.server import ShardServer
from repro.shard.supervisor import (
    ProcessShardSpec,
    ShardProcess,
    ShardSupervisor,
)

__all__ = [
    "ArbiterConfig",
    "ArbiterShard",
    "BudgetArbiter",
    "BudgetLease",
    "ProcessShardSpec",
    "Redistribution",
    "ShardChaosSchedule",
    "ShardLink",
    "ShardProcess",
    "ShardServer",
    "ShardSummary",
    "ShardSupervisor",
    "ShardedResult",
    "redistribute",
    "run_sharded",
]

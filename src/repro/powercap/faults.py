"""Measurement- and actuation-fault injection for robustness testing.

The paper "assume[s] pessimistically that RAPL bares certain measurement
noise" (§4.3) and builds the Kalman filter against it.  Real telemetry
fails in more ways than Gaussian noise: counters stall (stuck readings),
samplers drop (zero readings), and transients spike.  :class:`FaultyMeter`
wraps any power meter with those three fault modes so the test suite can
verify the managers degrade gracefully — budgets still respected, no
crashes, recovery after the fault clears.

The write path fails too: a powercap sysfs write can be silently dropped
(EAGAIN under MSR contention, firmware-clamped limits, stale cached
values).  :class:`FlakyDomain` wraps a :class:`RaplDomain` so a
``set_cap_w`` sometimes does not take, which is exactly the fault the
actuator's read-back verification exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.powercap.rapl import PowerMeter, RaplDomain

__all__ = ["FaultConfig", "FaultyMeter", "FlakyDomain"]


@dataclass(frozen=True)
class FaultConfig:
    """Per-reading fault probabilities and magnitudes.

    Attributes:
        stuck_prob: probability a reading repeats the previous value
            (counter stall).
        dropout_prob: probability a reading is 0.0 (sampler miss).
        spike_prob: probability a reading is multiplied by ``spike_gain``
            (electrical transient / decode glitch).
        spike_gain: multiplier applied on a spike.
    """

    stuck_prob: float = 0.0
    dropout_prob: float = 0.0
    spike_prob: float = 0.0
    spike_gain: float = 3.0

    def __post_init__(self) -> None:
        for name in ("stuck_prob", "dropout_prob", "spike_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        total = self.stuck_prob + self.dropout_prob + self.spike_prob
        if total > 1.0:
            raise ValueError(
                f"fault probabilities sum to {total}, must be <= 1"
            )
        if self.spike_gain <= 0:
            raise ValueError(f"spike_gain must be > 0, got {self.spike_gain}")


class FaultyMeter:
    """A power meter wrapper injecting stuck/dropout/spike faults.

    Exposes the same ``read_power_w`` interface as
    :class:`~repro.powercap.rapl.PowerMeter`, so it drops into any code
    that meters sockets.

    Args:
        meter: the healthy meter being wrapped.
        config: fault probabilities.
        rng: fault randomness (seed for reproducibility).
    """

    def __init__(
        self,
        meter: PowerMeter,
        config: FaultConfig,
        rng: np.random.Generator,
    ) -> None:
        self.meter = meter
        self.config = config
        self._rng = rng
        self._last_w = 0.0
        self._has_last = False
        self.faults_injected = 0

    def read_power_w(self, dt_s: float) -> float:
        """Read the underlying meter, possibly corrupted.

        The healthy meter is *always* advanced (its energy-counter cursor
        must track real time), then the returned value may be replaced.
        A stuck fault needs a previous value to repeat; on the very first
        reading it passes the healthy value through instead of returning
        the meaningless 0.0 initial state (which would be a dropout, not
        a stall).
        """
        healthy = self.meter.read_power_w(dt_s)
        roll = self._rng.random()
        cfg = self.config
        if roll < cfg.stuck_prob:
            if self._has_last:
                self.faults_injected += 1
                return self._last_w
            self._last_w = healthy
            self._has_last = True
            return healthy
        roll -= cfg.stuck_prob
        if roll < cfg.dropout_prob:
            self.faults_injected += 1
            self._last_w = 0.0
            self._has_last = True
            return 0.0
        roll -= cfg.dropout_prob
        if roll < cfg.spike_prob:
            self.faults_injected += 1
            self._last_w = healthy * cfg.spike_gain
            self._has_last = True
            return self._last_w
        self._last_w = healthy
        self._has_last = True
        return healthy

    def rebaseline(self) -> None:
        """Re-anchor the wrapped meter's energy cursor (see PowerMeter)."""
        self.meter.rebaseline()


class FlakyDomain:
    """A RAPL domain wrapper whose cap writes sometimes do not take.

    Drops each ``set_cap_w`` with probability ``drop_prob`` (the limit
    silently keeps its previous value, as a failed sysfs write leaves it),
    optionally only for the first ``max_drops`` writes so tests can model
    transient contention that a bounded retry rides out.  Reads and
    physics pass straight through to the wrapped domain.

    Args:
        domain: the healthy domain being wrapped.
        drop_prob: probability any given write is silently dropped.
        rng: fault randomness (seed for reproducibility).
        max_drops: total writes ever dropped (None = unlimited).
    """

    def __init__(
        self,
        domain: RaplDomain,
        drop_prob: float,
        rng: np.random.Generator,
        max_drops: int | None = None,
    ) -> None:
        if not 0.0 <= drop_prob <= 1.0:
            raise ValueError(f"drop_prob must be in [0, 1], got {drop_prob}")
        if max_drops is not None and max_drops < 0:
            raise ValueError(f"max_drops must be >= 0, got {max_drops}")
        self.domain = domain
        self.drop_prob = drop_prob
        self._rng = rng
        self.max_drops = max_drops
        #: Writes silently dropped so far.
        self.writes_dropped = 0

    @property
    def name(self) -> str:
        return self.domain.name

    @property
    def max_power_w(self) -> float:
        return self.domain.max_power_w

    @property
    def min_power_w(self) -> float:
        return self.domain.min_power_w

    @property
    def cap_w(self) -> float:
        return self.domain.cap_w

    @property
    def power_w(self) -> float:
        return self.domain.power_w

    def set_cap_w(self, cap_w: float) -> float:
        """Program a limit — unless this write is the one that fails."""
        budget_left = (
            self.max_drops is None or self.writes_dropped < self.max_drops
        )
        if budget_left and self._rng.random() < self.drop_prob:
            self.writes_dropped += 1
            return self.domain.cap_w
        return self.domain.set_cap_w(cap_w)

    def read_energy_uj(self) -> int:
        return self.domain.read_energy_uj()

    def power_off(self) -> None:
        self.domain.power_off()

    def step(self, demand_w: float, dt_s: float) -> float:
        return self.domain.step(demand_w, dt_s)

"""Measurement-fault injection for robustness testing.

The paper "assume[s] pessimistically that RAPL bares certain measurement
noise" (§4.3) and builds the Kalman filter against it.  Real telemetry
fails in more ways than Gaussian noise: counters stall (stuck readings),
samplers drop (zero readings), and transients spike.  :class:`FaultyMeter`
wraps any power meter with those three fault modes so the test suite can
verify the managers degrade gracefully — budgets still respected, no
crashes, recovery after the fault clears.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.powercap.rapl import PowerMeter

__all__ = ["FaultConfig", "FaultyMeter"]


@dataclass(frozen=True)
class FaultConfig:
    """Per-reading fault probabilities and magnitudes.

    Attributes:
        stuck_prob: probability a reading repeats the previous value
            (counter stall).
        dropout_prob: probability a reading is 0.0 (sampler miss).
        spike_prob: probability a reading is multiplied by ``spike_gain``
            (electrical transient / decode glitch).
        spike_gain: multiplier applied on a spike.
    """

    stuck_prob: float = 0.0
    dropout_prob: float = 0.0
    spike_prob: float = 0.0
    spike_gain: float = 3.0

    def __post_init__(self) -> None:
        for name in ("stuck_prob", "dropout_prob", "spike_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        total = self.stuck_prob + self.dropout_prob + self.spike_prob
        if total > 1.0:
            raise ValueError(
                f"fault probabilities sum to {total}, must be <= 1"
            )
        if self.spike_gain <= 0:
            raise ValueError(f"spike_gain must be > 0, got {self.spike_gain}")


class FaultyMeter:
    """A power meter wrapper injecting stuck/dropout/spike faults.

    Exposes the same ``read_power_w`` interface as
    :class:`~repro.powercap.rapl.PowerMeter`, so it drops into any code
    that meters sockets.

    Args:
        meter: the healthy meter being wrapped.
        config: fault probabilities.
        rng: fault randomness (seed for reproducibility).
    """

    def __init__(
        self,
        meter: PowerMeter,
        config: FaultConfig,
        rng: np.random.Generator,
    ) -> None:
        self.meter = meter
        self.config = config
        self._rng = rng
        self._last_w = 0.0
        self._has_last = False
        self.faults_injected = 0

    def read_power_w(self, dt_s: float) -> float:
        """Read the underlying meter, possibly corrupted.

        The healthy meter is *always* advanced (its energy-counter cursor
        must track real time), then the returned value may be replaced.
        A stuck fault needs a previous value to repeat; on the very first
        reading it passes the healthy value through instead of returning
        the meaningless 0.0 initial state (which would be a dropout, not
        a stall).
        """
        healthy = self.meter.read_power_w(dt_s)
        roll = self._rng.random()
        cfg = self.config
        if roll < cfg.stuck_prob:
            if self._has_last:
                self.faults_injected += 1
                return self._last_w
            self._last_w = healthy
            self._has_last = True
            return healthy
        roll -= cfg.stuck_prob
        if roll < cfg.dropout_prob:
            self.faults_injected += 1
            self._last_w = 0.0
            self._has_last = True
            return 0.0
        roll -= cfg.dropout_prob
        if roll < cfg.spike_prob:
            self.faults_injected += 1
            self._last_w = healthy * cfg.spike_gain
            self._has_last = True
            return self._last_w
        self._last_w = healthy
        self._has_last = True
        return healthy

"""Simulated RAPL power-capping substrate (sysfs powercap ABI included)."""

from repro.powercap.actuator import CapActuator
from repro.powercap.faults import FaultConfig, FaultyMeter
from repro.powercap.rapl import PowerMeter, RaplDomain
from repro.powercap.sysfs import SysfsPowercap

__all__ = [
    "CapActuator",
    "FaultConfig",
    "FaultyMeter",
    "PowerMeter",
    "RaplDomain",
    "SysfsPowercap",
]

"""In-memory emulation of the Linux powercap sysfs ABI.

Real deployments of DPS read ``/sys/class/powercap/intel-rapl:<n>/energy_uj``
and write ``.../constraint_0_power_limit_uw`` (the artifact's stated hardware
requirement is just "Intel processors with RAPL available").  This module
reproduces that filesystem surface over :class:`~repro.powercap.rapl.
RaplDomain` objects so client code written against sysfs paths — including
the examples in this repo — runs unmodified against the simulator:

* ``intel-rapl:<k>/name``                          → domain name
* ``intel-rapl:<k>/energy_uj``                     → wrapping µJ counter
* ``intel-rapl:<k>/max_energy_range_uj``           → wrap value
* ``intel-rapl:<k>/constraint_0_power_limit_uw``   → read/write cap in µW
* ``intel-rapl:<k>/constraint_0_max_power_uw``     → TDP in µW
* ``intel-rapl:<k>/constraint_0_name``             → ``"long_term"``

All values are exchanged as decimal strings, exactly like sysfs.
"""

from __future__ import annotations

from repro.powercap.rapl import RaplDomain

__all__ = ["SysfsPowercap"]

_ROOT = "/sys/class/powercap"


class SysfsPowercap:
    """A dict-backed view of the powercap tree over simulated RAPL domains.

    Args:
        domains: RAPL domains to expose, in zone-index order.
    """

    def __init__(self, domains: list[RaplDomain]) -> None:
        if not domains:
            raise ValueError("at least one domain is required")
        self._domains = list(domains)

    @property
    def domains(self) -> tuple[RaplDomain, ...]:
        """The underlying domains, in zone order."""
        return tuple(self._domains)

    def zone_path(self, index: int) -> str:
        """Absolute sysfs path of zone ``index``."""
        self._check_index(index)
        return f"{_ROOT}/intel-rapl:{index}"

    def list_zones(self) -> list[str]:
        """Paths of all zones, mirroring a directory listing of the root."""
        return [self.zone_path(i) for i in range(len(self._domains))]

    def read(self, path: str) -> str:
        """Read a sysfs attribute; returns its contents as a string.

        Raises:
            FileNotFoundError: unknown path or attribute.
        """
        index, attr = self._split(path)
        dom = self._domains[index]
        if attr == "name":
            return dom.name
        if attr == "energy_uj":
            return str(dom.read_energy_uj())
        if attr == "max_energy_range_uj":
            return str(dom.config.counter_wrap_uj)
        if attr == "constraint_0_power_limit_uw":
            return str(int(round(dom.cap_w * 1e6)))
        if attr == "constraint_0_max_power_uw":
            return str(int(round(dom.max_power_w * 1e6)))
        if attr == "constraint_0_name":
            return "long_term"
        raise FileNotFoundError(path)

    def write(self, path: str, value: str) -> None:
        """Write a sysfs attribute (only the power limit is writable).

        Raises:
            FileNotFoundError: unknown path or attribute.
            PermissionError: attribute is read-only.
            ValueError: value is not a valid decimal integer.
        """
        index, attr = self._split(path)
        if attr != "constraint_0_power_limit_uw":
            if attr in {
                "name",
                "energy_uj",
                "max_energy_range_uj",
                "constraint_0_max_power_uw",
                "constraint_0_name",
            }:
                raise PermissionError(f"{path} is read-only")
            raise FileNotFoundError(path)
        self._domains[index].set_cap_w(int(value) / 1e6)

    def _split(self, path: str) -> tuple[int, str]:
        prefix = f"{_ROOT}/intel-rapl:"
        if not path.startswith(prefix):
            raise FileNotFoundError(path)
        rest = path[len(prefix) :]
        zone, sep, attr = rest.partition("/")
        if not sep or not attr:
            raise FileNotFoundError(path)
        try:
            index = int(zone)
        except ValueError:
            raise FileNotFoundError(path) from None
        self._check_index(index)
        return index, attr

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._domains):
            raise FileNotFoundError(f"{_ROOT}/intel-rapl:{index}")

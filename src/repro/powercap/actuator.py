"""Cap actuation across a bank of RAPL domains.

The paper's clients receive cap commands from the server and program them
into RAPL; commands computed from the readings of interval *t* take effect
for interval *t+1*.  :class:`CapActuator` models exactly that one-interval
command pipeline (optionally zero-delay for idealized studies) plus command
quantization to whole microwatts, and counts how many caps actually changed
— the quantity the stateless module's ``set_flag`` tracks and the §6.5
overhead analysis charges for.

With ``verify=True`` every write is checked by reading the limit back (the
powercap sysfs returns what actually got programmed); a mismatch is retried
up to ``max_retries`` times with bounded backoff, and exhaustion is
*reported, never raised* — an unverifiable unit must degrade the telemetry,
not kill the control loop.  Verification outcomes accumulate in
:attr:`events` as ``(kind, unit, detail)`` tuples for the caller to drain
into its telemetry channel.
"""

from __future__ import annotations

import time

import numpy as np

from repro.powercap.rapl import RaplDomain
from repro.recovery.state import decode_array, encode_array

__all__ = ["CapActuator"]


class CapActuator:
    """Applies per-unit cap vectors to RAPL domains.

    Args:
        domains: the domains actuated, one per unit, in unit order.
        delay_steps: number of control intervals between a command being
            issued and it taking effect (0 = immediate, 1 = next interval,
            matching a networked client).
        verify: read each programmed limit back and retry on mismatch.
        max_retries: bounded retry budget per unit per command (>= 0).
        backoff_s: sleep before the first retry, doubled per attempt
            (0.0 — the default — never sleeps; simulations retry
            immediately, hardware deployments pass a real base delay).
    """

    def __init__(
        self,
        domains: list[RaplDomain],
        delay_steps: int = 0,
        verify: bool = False,
        max_retries: int = 3,
        backoff_s: float = 0.0,
    ) -> None:
        if not domains:
            raise ValueError("at least one domain is required")
        if delay_steps < 0:
            raise ValueError(f"delay_steps must be >= 0, got {delay_steps}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        self._domains = list(domains)
        self.delay_steps = delay_steps
        self.verify = verify
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self._pipeline: list[np.ndarray] = []
        self.commands_applied = 0
        #: Write retries performed across all units (verify mode).
        self.retries = 0
        #: Commands whose verification exhausted the retry budget.
        self.verify_failures = 0
        #: Pending ``(kind, unit, detail)`` verification events; the owner
        #: of the actuator drains these into its telemetry channel.
        self.events: list[tuple[str, int, str]] = []

    @property
    def n_units(self) -> int:
        """Number of actuated units."""
        return len(self._domains)

    @property
    def pending(self) -> list[np.ndarray]:
        """Copies of the queued (not yet applied) command vectors, oldest
        first — the in-flight pipeline a crash would lose."""
        return [caps.copy() for caps in self._pipeline]

    def reset(self) -> None:
        """Drop all in-flight commands and counters.

        Required between runs that reuse one actuator: without it, stale
        queued commands from the previous run would actuate into the next
        one's first intervals.
        """
        self._pipeline.clear()
        self.commands_applied = 0
        self.retries = 0
        self.verify_failures = 0
        self.events.clear()

    def issue(self, caps_w: np.ndarray) -> int:
        """Issue a cap command vector; apply whatever is due this interval.

        Args:
            caps_w: per-unit caps (W), shape ``(n_units,)``.

        Returns:
            Number of domains whose effective limit changed this interval.
        """
        caps = np.asarray(caps_w, dtype=np.float64)
        if caps.shape != (self.n_units,):
            raise ValueError(f"caps shape {caps.shape} != ({self.n_units},)")
        self._pipeline.append(caps.copy())
        if len(self._pipeline) <= self.delay_steps:
            return 0
        return self._apply(self._pipeline.pop(0))

    def _apply(self, due: np.ndarray) -> int:
        changed = 0
        for unit, (dom, cap) in enumerate(zip(self._domains, due)):
            # Quantize to whole microwatts, as a sysfs write would.
            quantized = round(float(cap) * 1e6) / 1e6
            before = dom.cap_w
            self._write(dom, unit, quantized)
            if dom.cap_w != before:
                changed += 1
            self.commands_applied += 1
        return changed

    def _write(self, dom: RaplDomain, unit: int, cap_w: float) -> None:
        """Program one limit, with read-back verification when enabled."""
        dom.set_cap_w(cap_w)
        if not self.verify:
            return
        # What a correct write must read back: the sysfs clamp of the
        # requested limit to the domain's accepted range.
        expected = min(max(cap_w, dom.min_power_w), dom.max_power_w)
        if dom.cap_w == expected:
            return
        delay = self.backoff_s
        for attempt in range(1, self.max_retries + 1):
            if delay > 0:
                time.sleep(delay)
                delay *= 2.0
            self.retries += 1
            dom.set_cap_w(cap_w)
            if dom.cap_w == expected:
                self.events.append(
                    (
                        "actuation_retried",
                        unit,
                        f"verified after {attempt} retr"
                        f"{'y' if attempt == 1 else 'ies'}",
                    )
                )
                return
        self.verify_failures += 1
        self.events.append(
            (
                "actuation_retry_exhausted",
                unit,
                f"cap {cap_w:.3f} W unverified after "
                f"{self.max_retries} retries (read {dom.cap_w:.3f} W)",
            )
        )

    def flush(self) -> None:
        """Apply all queued commands immediately (end-of-run cleanup)."""
        while self._pipeline:
            self._apply(self._pipeline.pop(0))

    def snapshot(self) -> dict:
        """JSON-able document of the in-flight pipeline and counters."""
        return {
            "pipeline": [encode_array(caps) for caps in self._pipeline],
            "commands_applied": self.commands_applied,
            "retries": self.retries,
            "verify_failures": self.verify_failures,
        }

    def restore(self, state: dict) -> None:
        """Overwrite the pipeline and counters with a snapshot's content."""
        pipeline = [decode_array(doc) for doc in state["pipeline"]]
        for caps in pipeline:
            if caps.shape != (self.n_units,):
                raise ValueError(
                    f"snapshot command shape {caps.shape} != "
                    f"({self.n_units},)"
                )
        self._pipeline = pipeline
        self.commands_applied = int(state["commands_applied"])
        self.retries = int(state.get("retries", 0))
        self.verify_failures = int(state.get("verify_failures", 0))
        self.events.clear()

"""Cap actuation across a bank of RAPL domains.

The paper's clients receive cap commands from the server and program them
into RAPL; commands computed from the readings of interval *t* take effect
for interval *t+1*.  :class:`CapActuator` models exactly that one-interval
command pipeline (optionally zero-delay for idealized studies) plus command
quantization to whole microwatts, and counts how many caps actually changed
— the quantity the stateless module's ``set_flag`` tracks and the §6.5
overhead analysis charges for.
"""

from __future__ import annotations

import numpy as np

from repro.powercap.rapl import RaplDomain

__all__ = ["CapActuator"]


class CapActuator:
    """Applies per-unit cap vectors to RAPL domains.

    Args:
        domains: the domains actuated, one per unit, in unit order.
        delay_steps: number of control intervals between a command being
            issued and it taking effect (0 = immediate, 1 = next interval,
            matching a networked client).
    """

    def __init__(self, domains: list[RaplDomain], delay_steps: int = 0) -> None:
        if not domains:
            raise ValueError("at least one domain is required")
        if delay_steps < 0:
            raise ValueError(f"delay_steps must be >= 0, got {delay_steps}")
        self._domains = list(domains)
        self.delay_steps = delay_steps
        self._pipeline: list[np.ndarray] = []
        self.commands_applied = 0

    @property
    def n_units(self) -> int:
        """Number of actuated units."""
        return len(self._domains)

    def issue(self, caps_w: np.ndarray) -> int:
        """Issue a cap command vector; apply whatever is due this interval.

        Args:
            caps_w: per-unit caps (W), shape ``(n_units,)``.

        Returns:
            Number of domains whose effective limit changed this interval.
        """
        caps = np.asarray(caps_w, dtype=np.float64)
        if caps.shape != (self.n_units,):
            raise ValueError(f"caps shape {caps.shape} != ({self.n_units},)")
        self._pipeline.append(caps.copy())
        if len(self._pipeline) <= self.delay_steps:
            return 0
        due = self._pipeline.pop(0)
        changed = 0
        for dom, cap in zip(self._domains, due):
            # Quantize to whole microwatts, as a sysfs write would.
            quantized = round(float(cap) * 1e6) / 1e6
            before = dom.cap_w
            dom.set_cap_w(quantized)
            if dom.cap_w != before:
                changed += 1
            self.commands_applied += 1
        return changed

    def flush(self) -> None:
        """Apply all queued commands immediately (end-of-run cleanup)."""
        while self._pipeline:
            due = self._pipeline.pop(0)
            for dom, cap in zip(self._domains, due):
                dom.set_cap_w(round(float(cap) * 1e6) / 1e6)

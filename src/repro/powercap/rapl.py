"""Simulated RAPL domain (paper §4.2; DESIGN.md substitution table row 1).

DPS interacts with the hardware in exactly two ways: reading power and
setting power caps, both via Intel RAPL.  This module provides a faithful
software stand-in for one RAPL domain (one socket / package):

* a monotonically increasing **energy counter** in microjoules that wraps at
  ``max_energy_range_uj``, exactly like the MSR/sysfs counter — consumers
  must derive power from counter differences, wraps included;
* **cap enforcement**: the domain's true power never exceeds its limit
  (RAPL's running-average window is far shorter than the 1 s control loop,
  so within one step the limit is simply met);
* a **first-order lag** with which true power approaches its target
  (``min(demand, cap)``) — power changes with inertia (§3.3);
* a :class:`PowerMeter` that converts counter reads into power samples and
  adds Gaussian measurement noise, the noise DPS's Kalman filter exists to
  absorb (§4.3.2).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import RaplConfig
from repro.recovery.state import make_rng, rng_state

__all__ = ["RaplDomain", "PowerMeter"]


class RaplDomain:
    """One power-capping unit with RAPL read/cap semantics.

    Args:
        name: identifier (e.g. ``"package-0"``), surfaced in the sysfs tree.
        max_power_w: hardware maximum power / highest accepted cap (TDP).
        min_power_w: lowest accepted cap.
        config: noise, lag, and counter-wrap behaviour.
        initial_power_w: true power at construction (idle floor).
    """

    def __init__(
        self,
        name: str,
        max_power_w: float,
        min_power_w: float = 0.0,
        config: RaplConfig | None = None,
        initial_power_w: float = 0.0,
    ) -> None:
        if max_power_w <= 0:
            raise ValueError(f"max_power_w must be > 0, got {max_power_w}")
        if not 0 <= min_power_w <= max_power_w:
            raise ValueError(
                f"min_power_w must be in [0, max_power_w], got {min_power_w}"
            )
        if not 0 <= initial_power_w <= max_power_w:
            raise ValueError(
                f"initial_power_w must be in [0, max_power_w], "
                f"got {initial_power_w}"
            )
        self.name = name
        self.max_power_w = float(max_power_w)
        self.min_power_w = float(min_power_w)
        self.config = config or RaplConfig()
        self._cap_w = self.max_power_w
        self._power_w = float(initial_power_w)
        self._energy_uj = 0.0

    @property
    def cap_w(self) -> float:
        """Current power limit (W)."""
        return self._cap_w

    @property
    def power_w(self) -> float:
        """True instantaneous power (W) — hidden from managers, who must
        estimate it through the (noisy) meter."""
        return self._power_w

    def set_cap_w(self, cap_w: float) -> float:
        """Program a new power limit, clamped to the accepted range.

        Returns:
            The effective (clamped) limit, mirroring how the powercap sysfs
            interface clamps out-of-range writes.
        """
        if not math.isfinite(cap_w):
            raise ValueError(f"cap must be finite, got {cap_w!r}")
        # Native comparisons: this runs per unit per control step, and
        # np.clip on a scalar costs more than the whole clamp.
        cap = float(cap_w)
        if cap < self.min_power_w:
            cap = self.min_power_w
        elif cap > self.max_power_w:
            cap = self.max_power_w
        self._cap_w = cap
        return cap

    def read_energy_uj(self) -> int:
        """Current value of the wrapping energy counter (µJ)."""
        return int(self._energy_uj % self.config.counter_wrap_uj)

    def power_off(self) -> None:
        """Hard power loss: true power drops to zero instantly.

        Models a node crash — unlike stepping with zero demand (which
        decays through the first-order lag), a dead machine stops drawing
        power immediately.  The energy counter and the programmed cap are
        preserved, exactly as RAPL state survives in the simulator's
        bookkeeping of a host that will later reboot.
        """
        self._power_w = 0.0

    def snapshot(self) -> dict:
        """JSON-able document of the domain's physical state."""
        return {
            "cap_w": self._cap_w,
            "power_w": self._power_w,
            "energy_uj": self._energy_uj,
        }

    def restore(self, state: dict) -> None:
        """Overwrite the physical state with a snapshot's content."""
        self._cap_w = float(state["cap_w"])
        self._power_w = float(state["power_w"])
        self._energy_uj = float(state["energy_uj"])

    def step(self, demand_w: float, dt_s: float) -> float:
        """Advance the physical state by one interval.

        True power relaxes toward ``min(demand, cap)`` through a first-order
        lag and is hard-clipped at the cap (RAPL enforcement); the energy
        counter integrates the trajectory.

        Args:
            demand_w: uncapped power the workload would draw (W).
            dt_s: interval length (s).

        Returns:
            True power at the end of the interval (W).
        """
        if demand_w < 0:
            raise ValueError(f"demand_w must be >= 0, got {demand_w}")
        if dt_s <= 0:
            raise ValueError(f"dt_s must be > 0, got {dt_s}")
        target = min(demand_w, self._cap_w)
        alpha = 1.0 - math.exp(-dt_s / self.config.lag_tau_s)
        # Trapezoidal energy over the exponential approach is within a few
        # percent of exact for dt ~ tau; use the midpoint of old/new power.
        old = self._power_w
        new = min(old + (target - old) * alpha, self._cap_w)
        self._power_w = max(new, 0.0)
        self._energy_uj += (old + self._power_w) * 0.5 * dt_s * 1e6
        return self._power_w


class PowerMeter:
    """Derives power samples from RAPL energy-counter differences.

    This is how the paper's clients actually obtain power: two counter reads
    one interval apart, wrap-corrected, divided by the interval — plus the
    measurement noise the paper pessimistically assumes (§4.3).

    Args:
        domain: the RAPL domain being metered.
        rng: noise source; pass a seeded generator for reproducibility.
    """

    def __init__(self, domain: RaplDomain, rng: np.random.Generator) -> None:
        self.domain = domain
        self._rng = rng
        self._last_uj = domain.read_energy_uj()

    def rebaseline(self) -> None:
        """Re-anchor the counter cursor at the domain's current energy.

        A restarted metering daemon constructs a fresh meter and takes a
        new first read; an in-process restart must do the same, or the
        energy accumulated while the controller was down is charged to the
        first post-restart interval and the reading comes back inflated.
        """
        self._last_uj = self.domain.read_energy_uj()

    def snapshot(self) -> dict:
        """JSON-able document of the meter cursor and noise stream.

        A noise-free meter (``noise_std_w == 0``) never draws from its
        generator, so its state is omitted — at fleet scale the dead
        RNG states dominate an otherwise small snapshot.
        """
        doc: dict = {"last_uj": self._last_uj}
        if self.domain.config.noise_std_w > 0:
            doc["rng"] = rng_state(self._rng)
        return doc

    def restore(self, state: dict) -> None:
        """Overwrite the cursor and noise stream with a snapshot's content."""
        self._last_uj = int(state["last_uj"])
        if "rng" in state:
            self._rng = make_rng(state["rng"])

    def read_power_w(self, dt_s: float) -> float:
        """Sample average power over the interval since the previous read.

        Args:
            dt_s: elapsed time since the last call (s).

        Returns:
            Noisy, non-negative power sample (W).
        """
        if dt_s <= 0:
            raise ValueError(f"dt_s must be > 0, got {dt_s}")
        now = self.domain.read_energy_uj()
        delta = now - self._last_uj
        if delta < 0:  # Counter wrapped between reads.
            delta += self.domain.config.counter_wrap_uj
        self._last_uj = now
        power = delta / dt_s * 1e-6
        noise_std = self.domain.config.noise_std_w
        if noise_std > 0:
            power += self._rng.normal(0.0, noise_std)
        return max(power, 0.0)

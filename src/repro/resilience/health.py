"""Client health state machine for the fault-tolerant control plane.

The paper's server runs a strictly synchronous poll→decide→cap loop
(§4.3); a single stuck or crashed client daemon would stall or kill the
whole controller.  :class:`ClientHealth` tracks each client through a
three-state machine so the server can keep enforcing the cluster budget
through partial failures:

```
          failure            window expired / max retries
  HEALTHY ───────> DEGRADED ────────────────────────────> DEAD
     ^                 │                                    │
     └── HELLO rejoin ─┴─────────── HELLO rejoin ───────────┘
```

A failure quarantines the client (its connection is closed — after a
timeout or protocol error mid-frame the byte stream cannot be trusted)
and opens an exponentially growing *rejoin window*: after the *k*-th
consecutive failure the client has ``backoff_cycles * backoff_factor**(k-1)``
control cycles to reconnect and re-register before it is declared DEAD.
Reaching ``max_retries`` consecutive failures declares it DEAD
immediately.  DEAD clients may still rejoin; a successful poll after a
rejoin resets the consecutive-failure count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

__all__ = [
    "HealthState",
    "ResilienceConfig",
    "ClientHealth",
    "FALLBACK_POLICIES",
]

#: Reading policies for quarantined clients: ``"hold-last"`` replays the
#: last good reading per unit (optimistic — assumes the node keeps doing
#: what it did); ``"assume-tdp"`` reports TDP per unit (pessimistic — the
#: manager budgets as if the unobserved node drew maximum power, so the
#: rest of the cluster is throttled conservatively).
FALLBACK_POLICIES = ("hold-last", "assume-tdp")


class HealthState(Enum):
    """Liveness of one registered client."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DEAD = "dead"


@dataclass(frozen=True)
class ResilienceConfig:
    """Deploy-layer failure-isolation knobs.

    Attributes:
        max_retries: consecutive failures after which a client is DEAD.
        backoff_cycles: rejoin window (control cycles) after the first
            failure.
        backoff_factor: multiplicative window growth per consecutive
            failure.
        fallback: reading policy for quarantined units, one of
            :data:`FALLBACK_POLICIES`.
    """

    max_retries: int = 3
    backoff_cycles: int = 4
    backoff_factor: float = 2.0
    fallback: str = "hold-last"

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
        if self.backoff_cycles < 1:
            raise ValueError(
                f"backoff_cycles must be >= 1, got {self.backoff_cycles}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.fallback not in FALLBACK_POLICIES:
            raise ValueError(
                f"fallback must be one of {FALLBACK_POLICIES}, "
                f"got {self.fallback!r}"
            )

    def rejoin_window(self, consecutive_failures: int) -> int:
        """Rejoin window (cycles) after the given consecutive failure."""
        if consecutive_failures < 1:
            raise ValueError("window is defined after at least one failure")
        return math.ceil(
            self.backoff_cycles
            * self.backoff_factor ** (consecutive_failures - 1)
        )


class ClientHealth:
    """Health record of one client, advanced by the server per cycle.

    Args:
        config: retry/backoff parameters shared by all clients.
    """

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self.state = HealthState.HEALTHY
        self.consecutive_failures = 0
        self.total_failures = 0
        self.rejoins = 0
        #: Cycles left in the current rejoin window (DEGRADED only).
        self.window_cycles = 0

    def record_failure(self) -> HealthState:
        """Register one poll/cap failure; returns the new state."""
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.consecutive_failures >= self.config.max_retries:
            self.state = HealthState.DEAD
            self.window_cycles = 0
        else:
            self.state = HealthState.DEGRADED
            self.window_cycles = self.config.rejoin_window(
                self.consecutive_failures
            )
        return self.state

    def record_success(self) -> None:
        """Register one clean poll→cap exchange (resets the retry count)."""
        self.state = HealthState.HEALTHY
        self.consecutive_failures = 0
        self.window_cycles = 0

    def tick(self) -> HealthState:
        """Advance one quarantined cycle; DEGRADED decays to DEAD when the
        rejoin window expires.  Returns the (possibly new) state."""
        if self.state is HealthState.DEGRADED:
            self.window_cycles -= 1
            if self.window_cycles <= 0:
                self.state = HealthState.DEAD
        return self.state

    def rejoin(self) -> None:
        """Re-attach after a HELLO-rejoin (allowed from DEGRADED and DEAD).

        The consecutive-failure count is *not* reset here — only a
        successful poll (:meth:`record_success`) proves recovery, so a
        flapping client still converges to DEAD.
        """
        if self.state is HealthState.HEALTHY:
            raise RuntimeError("cannot rejoin a healthy client")
        self.state = HealthState.HEALTHY
        self.window_cycles = 0
        self.rejoins += 1

    @property
    def quarantined(self) -> bool:
        """True while the client must not be polled (DEGRADED or DEAD)."""
        return self.state is not HealthState.HEALTHY

    def __repr__(self) -> str:
        return (
            f"ClientHealth(state={self.state.value}, "
            f"failures={self.consecutive_failures}/{self.total_failures}, "
            f"window={self.window_cycles})"
        )

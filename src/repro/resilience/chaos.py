"""Chaos specifications: fault probabilities plus a node-kill schedule.

The CLI's ``pair --chaos`` option takes a compact spec string, e.g.::

    --chaos "stuck=0.05,dropout=0.05,spike=0.02,kill=1@30-60"

which injects per-reading measurement faults (via
:class:`~repro.powercap.faults.FaultyMeter`) and schedules node 1 to die
at t=30 s and recover at t=60 s (via
:class:`~repro.cluster.events.NodeFailureEvent`).  Multiple kills are
``+``-separated (``kill=0@30-60+2@45``; omitting the recovery time kills
the node for good).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.events import NodeFailureEvent
from repro.cluster.simulator import Assignment, Simulation, SimulationResult
from repro.powercap.faults import FaultConfig

if TYPE_CHECKING:  # Imported lazily at runtime to avoid a cycle.
    from repro.experiments.harness import ExperimentConfig

__all__ = ["ChaosSpec", "parse_chaos", "run_chaos_pair", "ChaosPairOutcome"]


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed chaos directive: meter faults + node-kill schedule."""

    faults: FaultConfig = field(default_factory=FaultConfig)
    failures: tuple[NodeFailureEvent, ...] = ()


def parse_chaos(spec: str) -> ChaosSpec:
    """Parse a ``--chaos`` spec string.

    Raises:
        ValueError: malformed spec, unknown key, or bad probability.
    """
    probs = {"stuck": 0.0, "dropout": 0.0, "spike": 0.0}
    gain = 3.0
    failures: list[NodeFailureEvent] = []
    for part in filter(None, (p.strip() for p in spec.split(","))):
        if "=" not in part:
            raise ValueError(f"chaos term {part!r} is not key=value")
        key, value = part.split("=", 1)
        key = key.strip()
        if key in probs:
            probs[key] = float(value)
        elif key == "spike_gain":
            gain = float(value)
        elif key == "kill":
            for kill in filter(None, value.split("+")):
                if "@" not in kill:
                    raise ValueError(
                        f"kill term {kill!r} is not node@start[-end]"
                    )
                node_s, window = kill.split("@", 1)
                if "-" in window:
                    start_s, end_s = window.split("-", 1)
                    recover = float(end_s)
                else:
                    start_s, recover = window, None
                failures.append(
                    NodeFailureEvent(
                        node_id=int(node_s),
                        fail_at_s=float(start_s),
                        recover_at_s=recover,
                    )
                )
        else:
            raise ValueError(
                f"unknown chaos key {key!r}; expected stuck/dropout/spike/"
                "spike_gain/kill"
            )
    return ChaosSpec(
        faults=FaultConfig(
            stuck_prob=probs["stuck"],
            dropout_prob=probs["dropout"],
            spike_prob=probs["spike"],
            spike_gain=gain,
        ),
        failures=tuple(failures),
    )


@dataclass(frozen=True)
class ChaosPairOutcome:
    """Summary of one workload pair under one manager with chaos applied.

    Attributes:
        manager: manager name.
        result: the underlying simulation result.
        budget_respected: True if the caps never exceeded the budget.
        node_failures / node_recoveries: scheduled transitions that fired.
        safe_mode_entries: safe-mode drops observed (0 for managers
            without a safe mode).
    """

    manager: str
    result: SimulationResult
    budget_respected: bool
    node_failures: int
    node_recoveries: int
    safe_mode_entries: int


def run_chaos_pair(
    config: ExperimentConfig,
    workload_a: str,
    workload_b: str,
    manager_name: str,
    chaos: ChaosSpec,
) -> ChaosPairOutcome:
    """Run one workload pair under one manager with chaos injected.

    Args:
        config: campaign configuration (cluster, sim, repeats, seed).
        workload_a / workload_b: pair names, placed on the cluster halves.
        manager_name: registry name of the manager under test.
        chaos: the parsed chaos directive.
    """
    from repro.workloads.registry import get_workload

    cluster = Cluster(config.cluster)
    sim = Simulation(
        cluster_spec=config.cluster,
        manager=config.make_manager(manager_name),
        assignments=[
            Assignment(
                spec=get_workload(workload_a),
                unit_ids=cluster.half_unit_ids(0),
            ),
            Assignment(
                spec=get_workload(workload_b),
                unit_ids=cluster.half_unit_ids(1),
            ),
        ],
        target_runs=config.repeats,
        sim_config=config.sim,
        perf_config=config.perf,
        rapl_config=config.rapl,
        seed=config.derive_seed(
            "chaos", workload_a, workload_b, manager_name
        ),
        fault_config=(
            chaos.faults
            if chaos.faults != FaultConfig()
            else None
        ),
        failures=chaos.failures,
    )
    result = sim.run()
    budget_ok = bool(
        np.isfinite(result.max_caps_sum_w)
        and result.max_caps_sum_w <= result.budget_w * (1 + 1e-6)
    )
    return ChaosPairOutcome(
        manager=manager_name,
        result=result,
        budget_respected=budget_ok,
        node_failures=len(result.events.of_kind("node_failed")),
        node_recoveries=len(result.events.of_kind("node_recovered")),
        safe_mode_entries=len(result.events.of_kind("safe_mode_entered")),
    )

"""Safe-mode wrapper turning any power manager fault-tolerant.

Cerf et al. stress that a power controller's first obligation under
disturbance is to keep its constraint satisfied while degrading
performance gracefully.  :class:`ResilientManager` wraps any registered
:class:`~repro.core.managers.PowerManager` with exactly that contract:

1. every incoming reading is screened against the stuck/dropout/spike
   fault taxonomy of :mod:`repro.powercap.faults` (detection lives in
   :mod:`repro.resilience.validate`);
2. suspect readings are replaced by the unit's last-good Kalman estimate
   before the inner manager sees them;
3. when more than ``safe_fraction`` of the units are unobservable in one
   cycle, the wrapper drops to **safe mode** — the paper's constant
   allocation (budget evenly divided, trivially budget-respecting) — and
   only re-engages the inner manager after ``reengage_cycles``
   consecutive clean cycles.

The cluster budget is respected in *every* mode: the inner manager's caps
pass through the base-class invariant, and safe-mode caps are the
constant allocation by construction.  The inner manager keeps being
stepped in shadow while safe mode is active so its filters and history
are warm at re-engagement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.core.dps import DPSManager
from repro.core.kalman import KalmanBank
from repro.core.managers import PowerManager, register_manager
from repro.recovery.state import decode_array, encode_array
from repro.resilience.validate import ReadingValidator, ValidatorConfig
from repro.telemetry.log import ResilienceEventLog

__all__ = ["ResilientConfig", "ResilientManager", "ResilienceStepInfo"]


@dataclass(frozen=True)
class ResilientConfig:
    """Safe-mode thresholds of :class:`ResilientManager`.

    Attributes:
        validator: detector thresholds for the reading screen.
        safe_fraction: unobservable-unit fraction (exclusive) above which
            the wrapper falls back to constant allocation.
        reengage_cycles: consecutive clean cycles required before DPS (or
            whatever the inner manager is) is re-engaged.
        reengage_fraction: a cycle counts as clean when its suspect
            fraction is at or below this.
    """

    validator: ValidatorConfig = field(default_factory=ValidatorConfig)
    safe_fraction: float = 0.5
    reengage_cycles: int = 5
    reengage_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.safe_fraction <= 1.0:
            raise ValueError(
                f"safe_fraction must be in (0, 1], got {self.safe_fraction}"
            )
        if self.reengage_cycles < 1:
            raise ValueError(
                f"reengage_cycles must be >= 1, got {self.reengage_cycles}"
            )
        if not 0.0 <= self.reengage_fraction < self.safe_fraction:
            raise ValueError(
                "reengage_fraction must be in [0, safe_fraction), got "
                f"{self.reengage_fraction}"
            )


class ResilienceStepInfo(NamedTuple):
    """Introspection record of one resilient decision.

    Attributes:
        suspect / stuck / dropout / spike: per-unit detector masks.
        sanitized_w: the readings actually fed to the inner manager.
        safe_mode: True if the returned caps are the safe-mode constant
            allocation.
        clean_streak: consecutive clean cycles counted toward
            re-engagement (0 outside safe mode).
    """

    suspect: np.ndarray
    stuck: np.ndarray
    dropout: np.ndarray
    spike: np.ndarray
    sanitized_w: np.ndarray
    safe_mode: bool
    clean_streak: int


@register_manager
class ResilientManager(PowerManager):
    """Fault-validating, safe-mode-capable wrapper manager.

    Args:
        inner: the wrapped manager (default: a fresh
            :class:`~repro.core.dps.DPSManager`).
        config: safe-mode thresholds.
    """

    name = "resilient"

    def __init__(
        self,
        inner: PowerManager | None = None,
        config: ResilientConfig | None = None,
    ) -> None:
        super().__init__()
        self.inner = inner if inner is not None else DPSManager()
        self.config = config or ResilientConfig()
        # Forward the inner manager's demand requirement (instance
        # attribute shadows the ClassVar).
        self.requires_demand = self.inner.requires_demand
        #: Structured log of suspect readings and safe-mode transitions.
        self.events = ResilienceEventLog()
        self._validator: ReadingValidator | None = None
        self._kalman: KalmanBank | None = None
        self._safe_mode = False
        self._clean_streak = 0
        self._cycle = 0
        self._prev_suspect = np.zeros(0, dtype=bool)
        self._last_info: ResilienceStepInfo | None = None

    def _on_bind(self) -> None:
        cfg = self.config
        self._validator = ReadingValidator(self.n_units, cfg.validator)
        self._kalman = KalmanBank(self.n_units)
        self._safe_mode = False
        self._clean_streak = 0
        self._cycle = 0
        self._prev_suspect = np.zeros(self.n_units, dtype=bool)
        self._last_info = None
        self.events = ResilienceEventLog()
        self.inner.bind(
            n_units=self.n_units,
            budget_w=self.budget_w,
            max_cap_w=self.max_cap_w,
            min_cap_w=self.min_cap_w,
            dt_s=self.dt_s,
            rng=self._rng.spawn(1)[0],
        )

    def _snapshot_state(self) -> dict:
        assert self._validator is not None and self._kalman is not None
        # The event log is telemetry, not control state: a restored
        # controller starts a fresh log (the recovery layer emits its own
        # restore events), so caps stay bit-exact without replaying logs.
        return {
            "validator": self._validator.snapshot(),
            "kalman": self._kalman.snapshot(),
            "safe_mode": self._safe_mode,
            "clean_streak": self._clean_streak,
            "cycle": self._cycle,
            "prev_suspect": encode_array(self._prev_suspect),
            "inner": self.inner.snapshot(),
        }

    def _restore_state(self, state: dict) -> None:
        assert self._validator is not None and self._kalman is not None
        self._validator.restore(state["validator"])
        self._kalman.restore(state["kalman"])
        self._safe_mode = bool(state["safe_mode"])
        self._clean_streak = int(state["clean_streak"])
        self._cycle = int(state["cycle"])
        prev_suspect = decode_array(state["prev_suspect"])
        if prev_suspect.shape != (self.n_units,):
            raise ValueError(
                f"snapshot prev_suspect shape {prev_suspect.shape} != "
                f"({self.n_units},)"
            )
        self._prev_suspect = prev_suspect.astype(bool)
        # The inner manager's nested restore overwrites the rng the bind
        # above spawned for it, repositioning its stream exactly.
        self.inner.restore(state["inner"])

    def set_budget_w(self, budget_w: float) -> None:
        """Re-lease the budget on the wrapper *and* the shadowed inner
        manager, so safe-mode constant allocation and the inner policy
        agree on the envelope."""
        super().set_budget_w(budget_w)
        self.inner.set_budget_w(budget_w)

    @property
    def safe_mode(self) -> bool:
        """True while caps come from the constant-allocation fallback."""
        return self._safe_mode

    @property
    def last_grants_w(self) -> np.ndarray | None:
        """The inner manager's most recent readjust grants, or None in
        safe mode (constant-allocation caps carry no grants to shave)."""
        if self._safe_mode:
            return None
        return getattr(self.inner, "last_grants_w", None)

    @property
    def last_resilience(self) -> ResilienceStepInfo | None:
        """Breakdown of the most recent decision, or None before any."""
        return self._last_info

    def _decide(
        self, power_w: np.ndarray, demand_w: np.ndarray | None
    ) -> np.ndarray:
        assert self._validator is not None and self._kalman is not None
        cfg = self.config
        self._cycle += 1
        now = self._cycle * self.dt_s

        estimate = (
            self._kalman.estimate
            if self._cycle > 1
            else np.full(self.n_units, self.initial_cap_w)
        )
        result = self._validator.validate(power_w, self._caps, estimate)
        sanitized = np.where(result.suspect, estimate, power_w)
        # Both branches of `sanitized` are already validated: the reading
        # at the step() boundary, the estimate by filter induction.
        self._kalman.update(sanitized, validate=False)

        newly_suspect = result.suspect & ~self._prev_suspect
        for unit in np.flatnonzero(newly_suspect):
            mode = (
                "stuck"
                if result.stuck[unit]
                else "dropout"
                if result.dropout[unit]
                else "spike"
            )
            self.events.emit(
                now, "reading_suspect", unit=int(unit), detail=mode
            )
        self._prev_suspect = result.suspect.copy()

        frac = float(result.suspect.mean())
        if not self._safe_mode and frac > cfg.safe_fraction:
            self._safe_mode = True
            self._clean_streak = 0
            self.events.emit(
                now, "safe_mode_entered", detail=f"suspect_frac={frac:.3f}"
            )
        elif self._safe_mode:
            if frac <= cfg.reengage_fraction:
                self._clean_streak += 1
            else:
                self._clean_streak = 0
            if self._clean_streak >= cfg.reengage_cycles:
                self._safe_mode = False
                self._clean_streak = 0
                self.events.emit(
                    now,
                    "safe_mode_exited",
                    detail=f"clean_cycles={cfg.reengage_cycles}",
                )

        # The inner manager always sees the sanitized readings — in safe
        # mode it runs in shadow so its state is warm at re-engagement.
        inner_caps = self.inner.step(
            sanitized, demand_w if self.requires_demand else None
        )
        if self._safe_mode:
            caps = np.full(self.n_units, self.initial_cap_w)
        else:
            caps = inner_caps

        self._last_info = ResilienceStepInfo(
            suspect=result.suspect,
            stuck=result.stuck,
            dropout=result.dropout,
            spike=result.spike,
            sanitized_w=sanitized,
            safe_mode=self._safe_mode,
            clean_streak=self._clean_streak,
        )
        return caps

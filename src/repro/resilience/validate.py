"""Reading validation against the measurement-fault taxonomy.

:mod:`repro.powercap.faults` injects the three failure modes real RAPL
telemetry exhibits beyond Gaussian noise — stuck counters, dropouts, and
spikes.  :class:`ReadingValidator` is the detection side of that taxonomy:
it screens each per-unit reading before it reaches a power manager and
flags the ones that cannot be trusted, so the manager can substitute its
last-good (Kalman) estimate instead of reacting to garbage.

Detection is deliberately physical, not statistical:

* **dropout** — a reading at (near) zero watts while the unit was recently
  observed well above idle.  Powered silicon never reads 0 W; the meter's
  noise floor sits at the idle power.
* **spike** — a reading materially above the unit's *currently programmed
  cap*.  RAPL enforces the cap within one control period, so such a value
  is physically impossible and must be a transient/decode glitch.  (Spikes
  that stay under the cap are indistinguishable from real load shifts and
  are left to the Kalman filter to smooth.)
* **stuck** — the exact same float repeated several cycles in a row.
  Under measurement noise an exact repeat is vanishingly unlikely; a run
  of them means the counter stalled.  In noise-free simulations a settled
  unit can trip this check, but the substitution is then a no-op (the
  estimate equals the repeated value), so the flag is harmless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.recovery.state import decode_array, encode_array

__all__ = ["ValidatorConfig", "ValidationResult", "ReadingValidator"]


@dataclass(frozen=True)
class ValidatorConfig:
    """Thresholds of the three fault detectors.

    Attributes:
        dropout_floor_w: readings at or below this are dropout candidates.
        dropout_min_estimate_w: a dropout is only flagged when the last
            good estimate was above this (a unit that really idles near
            zero is believed).
        spike_cap_slack: a reading above ``cap * spike_cap_slack +
            spike_margin_w`` is physically impossible and flagged.
        spike_margin_w: absolute headroom on the spike bound (absorbs
            measurement noise and cap-actuation lag).
        stuck_run: exact-repeat run length at which a unit is flagged
            stuck.
    """

    dropout_floor_w: float = 1.0
    dropout_min_estimate_w: float = 5.0
    spike_cap_slack: float = 1.1
    spike_margin_w: float = 15.0
    stuck_run: int = 3

    def __post_init__(self) -> None:
        if self.dropout_floor_w < 0:
            raise ValueError(
                f"dropout_floor_w must be >= 0, got {self.dropout_floor_w}"
            )
        if self.dropout_min_estimate_w <= self.dropout_floor_w:
            raise ValueError(
                "dropout_min_estimate_w must exceed dropout_floor_w "
                f"({self.dropout_min_estimate_w} <= {self.dropout_floor_w})"
            )
        if self.spike_cap_slack < 1.0:
            raise ValueError(
                f"spike_cap_slack must be >= 1, got {self.spike_cap_slack}"
            )
        if self.spike_margin_w < 0:
            raise ValueError(
                f"spike_margin_w must be >= 0, got {self.spike_margin_w}"
            )
        if self.stuck_run < 2:
            raise ValueError(f"stuck_run must be >= 2, got {self.stuck_run}")


class ValidationResult(NamedTuple):
    """Per-unit verdicts of one validation pass.

    Attributes:
        suspect: union of the three fault masks.
        stuck / dropout / spike: the individual detector masks.
    """

    suspect: np.ndarray
    stuck: np.ndarray
    dropout: np.ndarray
    spike: np.ndarray


class ReadingValidator:
    """Stateful per-unit screen for stuck/dropout/spike readings.

    Args:
        n_units: number of units validated per pass.
        config: detector thresholds.
    """

    def __init__(
        self, n_units: int, config: ValidatorConfig | None = None
    ) -> None:
        if n_units < 1:
            raise ValueError(f"n_units must be >= 1, got {n_units}")
        self.n_units = n_units
        self.config = config or ValidatorConfig()
        self._prev = np.full(n_units, np.nan)
        self._run = np.zeros(n_units, dtype=np.intp)

    def validate(
        self,
        readings_w: np.ndarray,
        caps_w: np.ndarray,
        estimate_w: np.ndarray,
    ) -> ValidationResult:
        """Screen one reading vector.

        Args:
            readings_w: raw per-unit readings (W), shape ``(n_units,)``.
            caps_w: caps currently programmed per unit (the spike bound).
            estimate_w: last good per-unit power estimate (the dropout
                plausibility reference).

        Returns:
            Boolean masks per fault mode plus their union.
        """
        z = np.asarray(readings_w, dtype=np.float64)
        caps = np.asarray(caps_w, dtype=np.float64)
        est = np.asarray(estimate_w, dtype=np.float64)
        for name, arr in (("readings", z), ("caps", caps), ("estimate", est)):
            if arr.shape != (self.n_units,):
                raise ValueError(
                    f"{name} shape {arr.shape} != ({self.n_units},)"
                )
        cfg = self.config

        repeat = z == self._prev
        self._run = np.where(repeat, self._run + 1, 1)
        self._prev = z.copy()
        stuck = self._run >= cfg.stuck_run

        dropout = (z <= cfg.dropout_floor_w) & (
            est > cfg.dropout_min_estimate_w
        )
        spike = z > caps * cfg.spike_cap_slack + cfg.spike_margin_w
        return ValidationResult(
            suspect=stuck | dropout | spike,
            stuck=stuck,
            dropout=dropout,
            spike=spike,
        )

    def reset(self) -> None:
        """Forget the repeat-run state (e.g. after a rebind)."""
        self._prev.fill(np.nan)
        self._run.fill(0)

    def snapshot(self) -> dict:
        """JSON-able document of the repeat-run detector state."""
        return {
            "prev": encode_array(self._prev),
            "run": encode_array(self._run),
        }

    def restore(self, state: dict) -> None:
        """Overwrite the detector state with a snapshot's content."""
        prev = decode_array(state["prev"])
        run = decode_array(state["run"])
        if prev.shape != (self.n_units,) or run.shape != (self.n_units,):
            raise ValueError(
                f"snapshot shapes {prev.shape}/{run.shape} != "
                f"({self.n_units},)"
            )
        self._prev[:] = prev
        self._run[:] = run.astype(np.intp)

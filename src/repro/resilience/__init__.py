"""Fault-tolerant control plane: health tracking, validation, safe mode.

This package makes the reproduction survive the failure modes a
production power-capped cluster must tolerate: crashed or hung client
daemons (``health`` + the hardened :mod:`repro.deploy.server`), corrupted
telemetry (``validate``), and whole-manager fallback under mass
unobservability (``manager``).  The CLI-facing chaos spec lives in
:mod:`repro.resilience.chaos` (imported lazily to keep this package free
of simulator dependencies).
"""

from repro.resilience.health import (
    FALLBACK_POLICIES,
    ClientHealth,
    HealthState,
    ResilienceConfig,
)
from repro.resilience.manager import (
    ResilienceStepInfo,
    ResilientConfig,
    ResilientManager,
)
from repro.resilience.validate import (
    ReadingValidator,
    ValidationResult,
    ValidatorConfig,
)

__all__ = [
    "FALLBACK_POLICIES",
    "ClientHealth",
    "HealthState",
    "ReadingValidator",
    "ResilienceConfig",
    "ResilienceStepInfo",
    "ResilientConfig",
    "ResilientManager",
    "ValidationResult",
    "ValidatorConfig",
]

"""``python -m repro`` — alias of the ``dps-repro`` CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Workload specification record shared by the Spark and NPB suites."""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.phases import PhaseProgram

__all__ = ["WorkloadSpec", "PowerClass", "POWER_CLASSES"]

#: Valid power classes: the paper's Spark labels plus "npb" (§5.2).
POWER_CLASSES = ("low", "mid", "high", "npb")

PowerClass = str


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark application as a power-demand program.

    Attributes:
        name: short identifier (e.g. ``"kmeans"``, ``"bt"``).
        suite: ``"spark"`` (HiBench) or ``"npb"``.
        power_class: the paper's label — ``low`` (< 10 % of time above
            110 W), ``mid`` (>= 10 %), ``high`` (>= 2/3), or ``npb``
            (>= 99 %); Tables 2-4.
        program: per-socket uncapped demand program.
        active_units: sockets this workload loads within its cluster half;
            None means all of them (the paper's 48-executor configuration),
            1 models the single-executor low-power configuration.
        paper_duration_s: mean latency the paper measured under the constant
            110 W cap (Tables 2 and 4), for side-by-side reporting.
        paper_above_110_pct: the paper's "Above 110W" column (percent).
        data_size: the paper's input size string, reporting only.
        sync: progress synchronization across the workload's sockets —
            ``"mean"`` (loosely-coupled Spark tasks: stragglers amortize)
            or ``"min"`` (barrier-synchronized MPI ranks: the slowest
            socket gates everyone, as in the NPB kernels).
    """

    name: str
    suite: str
    power_class: PowerClass
    program: PhaseProgram
    active_units: int | None
    paper_duration_s: float
    paper_above_110_pct: float
    data_size: str
    sync: str = "mean"

    def __post_init__(self) -> None:
        if self.suite not in ("spark", "npb"):
            raise ValueError(f"unknown suite {self.suite!r}")
        if self.power_class not in POWER_CLASSES:
            raise ValueError(f"unknown power class {self.power_class!r}")
        if self.sync not in ("mean", "min"):
            raise ValueError(f"sync must be 'mean' or 'min', got {self.sync!r}")
        if self.active_units is not None and self.active_units < 1:
            raise ValueError(
                f"active_units must be >= 1 or None, got {self.active_units}"
            )
        if self.paper_duration_s <= 0:
            raise ValueError(
                f"paper_duration_s must be > 0, got {self.paper_duration_s}"
            )
        if not 0 <= self.paper_above_110_pct <= 100:
            raise ValueError(
                "paper_above_110_pct must be a percentage, got "
                f"{self.paper_above_110_pct}"
            )

"""Unified lookup across the Spark and NPB workload suites (Tables 2-4)."""

from __future__ import annotations

from repro.workloads.npb import NPB_WORKLOADS
from repro.workloads.spark import SPARK_WORKLOADS
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "get_workload",
    "all_workloads",
    "workload_names",
    "executor_config",
]


def all_workloads() -> dict[str, WorkloadSpec]:
    """All 19 benchmark workloads keyed by name (Spark first, then NPB)."""
    merged: dict[str, WorkloadSpec] = {}
    merged.update(SPARK_WORKLOADS)
    merged.update(NPB_WORKLOADS)
    return merged


def get_workload(name: str) -> WorkloadSpec:
    """Look up any workload by name (case-insensitive).

    Raises:
        KeyError: unknown name, with the available names listed.
    """
    key = name.lower()
    merged = all_workloads()
    try:
        return merged[key]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(merged)}"
        ) from None


def workload_names(
    suite: str | None = None, power_class: str | None = None
) -> list[str]:
    """Workload names filtered by suite and/or power class.

    Args:
        suite: ``"spark"``, ``"npb"``, or None for both.
        power_class: ``"low"``, ``"mid"``, ``"high"``, ``"npb"``, or None.
    """
    return [
        s.name
        for s in all_workloads().values()
        if (suite is None or s.suite == suite)
        and (power_class is None or s.power_class == power_class)
    ]


def executor_config(power_class: str) -> tuple[int, int]:
    """Spark computing resources of paper Table 3: (executors, cores each).

    Raises:
        KeyError: for non-Spark power classes.
    """
    table3 = {"low": (1, 8), "mid": (48, 8), "high": (48, 8)}
    try:
        return table3[power_class]
    except KeyError:
        raise KeyError(
            f"Table 3 covers Spark power classes only, got {power_class!r}"
        ) from None

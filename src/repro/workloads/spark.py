"""Synthetic HiBench Spark workloads (paper Table 2, Figure 2).

Each builder returns the per-socket *uncapped* demand program of one HiBench
application.  The programs are calibrated against the published
characterization rather than raw traces (which are not available without the
authors' cluster; DESIGN.md §2):

* the power class and the "Above 110W" time fraction match Table 2 within a
  few percentage points (asserted by ``tests/test_workloads_spark.py``);
* the *uncapped* duration is the Table 2 constant-cap latency deflated by
  the expected capping stretch, so simulated constant-cap latencies land
  near the published numbers;
* the phase structure follows Figure 2: LDA has > 100 s phases, Bayes mixes
  long and ~13 s phases with per-phase peak diversity, and LR/Linear churn
  through sub-10 s high-frequency bursts.

Peak socket powers sit in the 130-165 W band the paper's traces show
(TDP = 165 W); troughs in the 60-90 W band; low-power micro apps stay well
under 110 W.
"""

from __future__ import annotations

from repro.workloads.phases import Hold, Oscillate, PhaseProgram, Ramp, repeat
from repro.workloads.spec import WorkloadSpec

__all__ = ["SPARK_WORKLOADS", "spark_workload", "spark_names"]


def _wordcount() -> PhaseProgram:
    """Micro map-reduce: one shuffle bump, never near 110 W."""
    return PhaseProgram(
        [
            Ramp(3, 15, 68),
            Hold(10, 68),
            Oscillate(18, 42, 74, period_s=6, duty=0.5),
            Hold(6, 52),
            Ramp(3, 52, 18),
        ]
    )


def _sort() -> PhaseProgram:
    """Small sort: brief CPU burst then IO-bound tail."""
    return PhaseProgram(
        [
            Ramp(2, 15, 60),
            Hold(8, 72),
            Hold(14, 48),
            Oscillate(8, 35, 60, period_s=4, duty=0.5),
            Ramp(3, 45, 15),
        ]
    )


def _terasort() -> PhaseProgram:
    """Terasort: two shuffle waves at moderate power."""
    return PhaseProgram(
        [
            Ramp(3, 15, 78),
            Hold(14, 78),
            Ramp(4, 78, 45),
            Hold(10, 45),
            Ramp(3, 45, 70),
            Hold(12, 70),
            Ramp(4, 70, 18),
        ]
    )


def _repartition() -> PhaseProgram:
    """Repartition: sustained network/IO phase with small spikes."""
    return PhaseProgram(
        [
            Ramp(3, 15, 62),
            Oscillate(30, 48, 80, period_s=10, duty=0.4),
            Hold(6, 40),
            Ramp(3, 40, 15),
        ]
    )


def _kmeans() -> PhaseProgram:
    """Kmeans: long regular iterations, ~48 % of time above 110 W."""
    iteration = [
        Ramp(4, 62, 155),
        Hold(47, 155),
        Ramp(4, 155, 62),
        Hold(52, 62),
    ]
    return PhaseProgram(
        [Ramp(5, 20, 62)] + repeat(iteration, 12) + [Ramp(5, 62, 20)]
    )


def _lda() -> PhaseProgram:
    """LDA: very long phases (Figure 2a), ~52 % above 110 W."""
    block = [
        Ramp(5, 70, 160),
        Hold(110, 160),
        Ramp(12, 160, 70),
        Hold(96, 72),
    ]
    return PhaseProgram([Ramp(4, 20, 70)] + repeat(block, 5) + [Ramp(4, 70, 20)])


def _linear() -> PhaseProgram:
    """Linear regression: short recurring bursts, ~15 % above 110 W."""
    block = [
        Hold(45, 92),
        Ramp(2, 92, 150),
        Hold(6, 150),
        Ramp(2, 150, 92),
    ]
    return PhaseProgram([Ramp(4, 20, 92)] + repeat(block, 15) + [Ramp(4, 92, 20)])


def _lr() -> PhaseProgram:
    """Logistic regression: the paper's high-frequency app (Figure 2c).

    Sub-10 s square bursts between ~65 and ~140 W dominate, with short
    moderate holds between burst trains; ~17 % of time above 110 W.
    """
    block = [
        Oscillate(60, 65, 140, period_s=8, duty=0.25),
        Hold(29, 82),
    ]
    return PhaseProgram([Ramp(3, 20, 70)] + repeat(block, 5) + [Ramp(3, 70, 20)])


def _bayes() -> PhaseProgram:
    """Bayes: mixed phase lengths and per-phase peak diversity (Figure 2b)."""
    block = [
        Ramp(3, 60, 165),
        Hold(15, 165),
        Ramp(5, 165, 75),
        Hold(26, 75),
        Ramp(3, 75, 128),
        Hold(7, 128),  # The ~13 s short phase of Figure 2b.
        Ramp(4, 128, 70),
        Hold(26, 70),
    ]
    return PhaseProgram([Ramp(3, 20, 60)] + repeat(block, 3) + [Ramp(3, 60, 20)])


def _rf() -> PhaseProgram:
    """Random forest: medium-length tree-building waves, ~36 % above 110 W."""
    block = [
        Ramp(4, 68, 150),
        Hold(24, 150),
        Ramp(4, 150, 68),
        Hold(40, 68),
    ]
    return PhaseProgram([Ramp(4, 20, 68)] + repeat(block, 5) + [Ramp(4, 68, 20)])


def _gmm() -> PhaseProgram:
    """GMM: the high-power app — ~69 % of time above 110 W, long EM sweeps."""
    block = [
        Hold(94, 158),
        Ramp(4, 158, 75),
        Hold(37, 75),
        Ramp(4, 75, 158),
    ]
    return PhaseProgram([Ramp(5, 20, 120)] + repeat(block, 15) + [Ramp(5, 120, 20)])


def _spec(
    name: str,
    power_class: str,
    builder,
    active_units: int | None,
    paper_duration_s: float,
    paper_above_110_pct: float,
    data_size: str,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        suite="spark",
        power_class=power_class,
        program=builder(),
        active_units=active_units,
        paper_duration_s=paper_duration_s,
        paper_above_110_pct=paper_above_110_pct,
        data_size=data_size,
    )


#: The 11 HiBench applications of paper Table 2, in table order.
SPARK_WORKLOADS: dict[str, WorkloadSpec] = {
    s.name: s
    for s in (
        _spec("wordcount", "low", _wordcount, 1, 44.36, 0.18, "3.1 GB"),
        _spec("sort", "low", _sort, 1, 38.48, 0.10, "313.5 MB"),
        _spec("terasort", "low", _terasort, 1, 54.53, 0.07, "3.0 GB"),
        _spec("repartition", "low", _repartition, 1, 44.92, 0.20, "3.0 GB"),
        _spec("kmeans", "mid", _kmeans, None, 1467.08, 47.58, "224.4 GB"),
        _spec("lda", "mid", _lda, None, 1254.12, 51.54, "4.1 GB"),
        _spec("linear", "mid", _linear, None, 928.36, 14.53, "745.1 GB"),
        _spec("lr", "mid", _lr, None, 499.37, 16.69, "52.2 GB"),
        _spec("bayes", "mid", _bayes, None, 342.18, 33.20, "70.1 GB"),
        _spec("rf", "mid", _rf, None, 415.71, 35.78, "32.8 GB"),
        _spec("gmm", "high", _gmm, None, 2432.43, 68.96, "8.6 GB"),
    )
}


def spark_workload(name: str) -> WorkloadSpec:
    """Look up one Spark workload by Table 2 name (case-insensitive)."""
    try:
        return SPARK_WORKLOADS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown Spark workload {name!r}; "
            f"available: {sorted(SPARK_WORKLOADS)}"
        ) from None


def spark_names(power_class: str | None = None) -> list[str]:
    """Names of Spark workloads, optionally filtered by power class."""
    return [
        s.name
        for s in SPARK_WORKLOADS.values()
        if power_class is None or s.power_class == power_class
    ]

"""Random phase-program composer for property-based tests and ablations.

Hypothesis strategies over raw floats make poor power programs (degenerate
durations, absurd levels); instead the property tests draw a seed and build a
structurally valid random program here, keeping shrinking behaviour sane
while still exploring a wide space of phase shapes.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.phases import Hold, Oscillate, Phase, PhaseProgram, Ramp
from repro.workloads.spec import WorkloadSpec

__all__ = ["random_program", "random_workload"]


def random_program(
    seed: int,
    n_phases: int | None = None,
    min_power_w: float = 15.0,
    max_power_w: float = 165.0,
    max_phase_s: float = 120.0,
) -> PhaseProgram:
    """Build a random but well-formed phase program.

    Args:
        seed: deterministic seed; equal seeds give equal programs.
        n_phases: phase count, default drawn in [1, 12].
        min_power_w / max_power_w: demand band.
        max_phase_s: longest allowed phase duration.

    Returns:
        A :class:`PhaseProgram` mixing holds, ramps, and oscillations.
    """
    if max_power_w <= min_power_w:
        raise ValueError(
            f"max_power_w must exceed min_power_w, got "
            f"[{min_power_w}, {max_power_w}]"
        )
    rng = np.random.default_rng(seed)
    count = n_phases if n_phases is not None else int(rng.integers(1, 13))
    if count < 1:
        raise ValueError(f"n_phases must be >= 1, got {count}")

    def level() -> float:
        return float(rng.uniform(min_power_w, max_power_w))

    phases: list[Phase] = []
    for _ in range(count):
        duration = float(rng.uniform(2.0, max_phase_s))
        kind = rng.integers(0, 3)
        if kind == 0:
            phases.append(Hold(duration, level()))
        elif kind == 1:
            phases.append(Ramp(duration, level(), level()))
        else:
            lo, hi = sorted((level(), level()))
            if hi - lo < 1.0:
                hi = lo + 1.0
            phases.append(
                Oscillate(
                    duration,
                    lo,
                    min(hi, max_power_w),
                    period_s=float(rng.uniform(4.0, 30.0)),
                    duty=float(rng.uniform(0.2, 0.8)),
                )
            )
    return PhaseProgram(phases)


def random_workload(seed: int, **kwargs: float) -> WorkloadSpec:
    """Wrap :func:`random_program` in a WorkloadSpec usable by the harness."""
    program = random_program(seed, **kwargs)  # type: ignore[arg-type]
    return WorkloadSpec(
        name=f"synthetic-{seed}",
        suite="spark",
        power_class="mid",
        program=program,
        active_units=None,
        paper_duration_s=program.duration_s,
        paper_above_110_pct=min(program.fraction_above(110.0) * 100.0, 100.0),
        data_size="synthetic",
    )

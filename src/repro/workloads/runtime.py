"""Workload execution state: progress, repeats, and per-socket jitter.

A :class:`WorkloadExecution` owns one workload's runtime state inside the
simulator: which sockets it loads, how far it has progressed, how many
back-to-back runs it has completed, and the accounting needed later for the
paper's *satisfaction* metric (Eq. 1).  It advances by *progress* — the
product of wall time and the per-socket rate the performance model grants —
so power caps stretch phases instead of skipping them.

Repeats model the paper's methodology directly: each workload in a pair is
re-launched as soon as it finishes (after a small job-launch gap) until the
experiment has collected the requested number of runs from both workloads
(§5.2, Appendix: "Spark workload in each pair is repeated at least 10
times"; short NPB apps naturally re-run many times against a long partner).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.spec import WorkloadSpec

__all__ = ["RunRecord", "WorkloadExecution"]


@dataclass(frozen=True)
class RunRecord:
    """One completed run of a workload.

    Attributes:
        start_s: wall-clock time the run began.
        end_s: wall-clock time the run completed.
        avg_power_w: mean per-active-socket power over the run.
    """

    start_s: float
    end_s: float
    avg_power_w: float

    @property
    def duration_s(self) -> float:
        """Throughput time of the run (the paper's performance metric)."""
        return self.end_s - self.start_s


class WorkloadExecution:
    """Mutable execution state of one workload on a slice of the cluster.

    Args:
        spec: the workload being run.
        unit_ids: global indices of the sockets in this workload's cluster
            half; the first ``spec.active_units`` of them are loaded (all of
            them when ``active_units`` is None).
        rng: seeded randomness for per-run socket factors and demand noise.
        time_scale: duration multiplier applied to the program.
        inter_run_gap_s: idle gap between consecutive runs (job launch).
        idle_power_w: demand of inactive / gapped sockets.
        max_demand_w: upper clamp on demand (unit TDP).
        socket_jitter_std: std of the per-run multiplicative socket factor
            (executor placement varies run to run).
        demand_noise_std_w: std of the per-step additive demand noise.
        duration_jitter_std: lognormal sigma of a per-run execution-speed
            factor (run-to-run Spark variance, §6.1); 0 = deterministic.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        unit_ids: np.ndarray,
        rng: np.random.Generator,
        time_scale: float = 1.0,
        inter_run_gap_s: float = 5.0,
        idle_power_w: float = 12.0,
        max_demand_w: float = 165.0,
        socket_jitter_std: float = 0.02,
        demand_noise_std_w: float = 1.0,
        duration_jitter_std: float = 0.0,
    ) -> None:
        ids = np.asarray(unit_ids, dtype=np.intp)
        if ids.ndim != 1 or ids.size == 0:
            raise ValueError("unit_ids must be a non-empty 1-D index array")
        n_active = spec.active_units if spec.active_units is not None else ids.size
        if n_active > ids.size:
            raise ValueError(
                f"{spec.name} wants {n_active} active units but only "
                f"{ids.size} were assigned"
            )
        self.spec = spec
        self.unit_ids = ids
        self.active_ids = ids[:n_active]
        self.program = spec.program.scaled(time_scale)
        self.inter_run_gap_s = inter_run_gap_s
        self.idle_power_w = idle_power_w
        self.max_demand_w = max_demand_w
        self.socket_jitter_std = socket_jitter_std
        self.demand_noise_std_w = demand_noise_std_w
        self.duration_jitter_std = duration_jitter_std
        self._rng = rng

        self.progress_s = 0.0
        self._gap_remaining_s = 0.0
        self._run_start_s = 0.0
        self._run_energy_j = 0.0
        self._run_time_s = 0.0
        self.records: list[RunRecord] = []
        self._factors = self._draw_factors()
        self._run_speed = self._draw_run_speed()

    def _draw_factors(self) -> np.ndarray:
        factors = self._rng.normal(
            1.0, self.socket_jitter_std, size=self.active_ids.size
        )
        return np.clip(factors, 0.85, 1.15)

    def _draw_run_speed(self) -> float:
        if self.duration_jitter_std <= 0:
            return 1.0
        # Lognormal around 1: a run can be a few percent faster or slower
        # for reasons outside the power manager's control.
        return float(np.exp(self._rng.normal(0.0, self.duration_jitter_std)))

    @property
    def n_units(self) -> int:
        """Sockets assigned to this workload (active + idle)."""
        return self.unit_ids.size

    @property
    def in_gap(self) -> bool:
        """True while waiting out the inter-run launch gap."""
        return self._gap_remaining_s > 0.0

    @property
    def runs_completed(self) -> int:
        """Number of finished runs so far."""
        return len(self.records)

    def demand(self) -> np.ndarray:
        """Current uncapped demand of the assigned sockets (W).

        Returns:
            Array aligned with ``unit_ids``.  Inactive or gapped sockets
            draw the idle floor; active sockets draw the program demand with
            per-run socket factors and per-step noise, clamped to
            ``[idle_power_w, max_demand_w]``.
        """
        out = np.full(self.n_units, self.idle_power_w, dtype=np.float64)
        if self.in_gap:
            return out
        base = self.program.demand_at(self.progress_s)
        noisy = base * self._factors + self._rng.normal(
            0.0, self.demand_noise_std_w, size=self.active_ids.size
        )
        out[: self.active_ids.size] = np.clip(
            noisy, self.idle_power_w, self.max_demand_w
        )
        return out

    def advance(
        self,
        rates: np.ndarray,
        true_power_w: np.ndarray,
        dt_s: float,
        now_s: float,
    ) -> None:
        """Move the workload forward one simulator step.

        Args:
            rates: per-socket progress rates aligned with ``unit_ids``
                (1 = full speed); the workload advances at the mean rate of
                its *active* sockets, or at the slowest socket's rate when
                the spec declares ``sync="min"`` (barrier-synchronized MPI
                ranks — the NPB kernels).
            true_power_w: per-socket true power aligned with ``unit_ids``
                (for the satisfaction accounting).
            dt_s: step length (s).
            now_s: wall-clock time at the *end* of the step.
        """
        if dt_s <= 0:
            raise ValueError(f"dt_s must be > 0, got {dt_s}")
        if self.in_gap:
            self._gap_remaining_s -= dt_s
            if self._gap_remaining_s <= 0.0:
                self._begin_run(now_s)
            return

        n_active = self.active_ids.size
        if self.spec.sync == "min":
            rate = float(np.min(rates[:n_active]))
        else:
            rate = float(np.mean(rates[:n_active]))
        self.progress_s += rate * self._run_speed * dt_s
        self._run_energy_j += float(np.sum(true_power_w[:n_active])) * dt_s
        self._run_time_s += dt_s

        if self.progress_s >= self.program.duration_s:
            avg_power = (
                self._run_energy_j / (self._run_time_s * n_active)
                if self._run_time_s > 0
                else 0.0
            )
            self.records.append(
                RunRecord(
                    start_s=self._run_start_s, end_s=now_s, avg_power_w=avg_power
                )
            )
            if self.inter_run_gap_s > 0.0:
                self._gap_remaining_s = self.inter_run_gap_s
            else:
                self._begin_run(now_s)

    def _begin_run(self, now_s: float) -> None:
        self.progress_s = 0.0
        self._gap_remaining_s = 0.0
        self._run_start_s = now_s
        self._run_energy_j = 0.0
        self._run_time_s = 0.0
        self._factors = self._draw_factors()
        self._run_speed = self._draw_run_speed()

    def mean_duration_s(self) -> float:
        """Mean throughput time over completed runs.

        Raises:
            ValueError: if no run has completed.
        """
        if not self.records:
            raise ValueError(f"{self.spec.name}: no completed runs")
        return float(np.mean([r.duration_s for r in self.records]))

    def mean_power_w(self) -> float:
        """Mean per-socket power over completed runs (satisfaction input)."""
        if not self.records:
            raise ValueError(f"{self.spec.name}: no completed runs")
        return float(np.mean([r.avg_power_w for r in self.records]))

"""Phase-based power-demand programs (paper §3.1, Figure 2).

The paper characterizes application power by its *phases*: intervals of
distinct power demand whose duration, peak power, and first derivative all
vary across and within applications.  A workload here is a
:class:`PhaseProgram` — a sequence of primitive phases — evaluated by
*application progress* (nominal seconds of uncapped execution), not wall
time: a capped unit advances progress slower than wall time, so its phases
stretch, exactly as a throttled Spark stage takes longer on real hardware.
This progress indexing is what makes greedy stateless allocation
path-dependent (DESIGN.md §6).

Primitives:

* :class:`Hold` — constant demand;
* :class:`Ramp` — linear demand change (the diverse first derivatives of
  Figure 2a/2b);
* :class:`Oscillate` — square-wave bursts with a configurable period and
  duty cycle (the sub-10 s phases of LR, Figure 2c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

__all__ = ["Hold", "Ramp", "Oscillate", "Phase", "PhaseProgram", "repeat"]


def _check_duration(duration_s: float) -> None:
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")


def _check_power(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class Hold:
    """Constant power demand for a fixed progress duration."""

    duration_s: float
    power_w: float

    def __post_init__(self) -> None:
        _check_duration(self.duration_s)
        _check_power("power_w", self.power_w)

    def demand_at(self, t_s: float) -> float:
        """Demand (W) at phase-local progress ``t_s`` in [0, duration)."""
        del t_s
        return self.power_w

    def scaled(self, factor: float) -> "Hold":
        """Copy with the duration scaled by ``factor``."""
        return Hold(self.duration_s * factor, self.power_w)


@dataclass(frozen=True)
class Ramp:
    """Linear power change from ``start_w`` to ``end_w``."""

    duration_s: float
    start_w: float
    end_w: float

    def __post_init__(self) -> None:
        _check_duration(self.duration_s)
        _check_power("start_w", self.start_w)
        _check_power("end_w", self.end_w)

    def demand_at(self, t_s: float) -> float:
        """Demand (W) at phase-local progress ``t_s`` in [0, duration)."""
        frac = np.clip(t_s / self.duration_s, 0.0, 1.0)
        return self.start_w + (self.end_w - self.start_w) * float(frac)

    def scaled(self, factor: float) -> "Ramp":
        """Copy with the duration scaled by ``factor``."""
        return Ramp(self.duration_s * factor, self.start_w, self.end_w)


@dataclass(frozen=True)
class Oscillate:
    """Square-wave bursts: ``high_w`` for ``duty`` of each period, else ``low_w``.

    :meth:`scaled` scales the period along with the duration — the number
    of bursts per phase, which is what the paper's frequency detector
    counts, is preserved under time compression — but clamps the period at
    :data:`MIN_PERIOD_S` so a compressed experiment keeps at least a
    couple of control steps per burst cycle.
    """

    #: Floor on a scaled oscillation period (4 control steps at dt = 1 s).
    MIN_PERIOD_S = 4.0

    duration_s: float
    low_w: float
    high_w: float
    period_s: float
    duty: float = 0.5

    def __post_init__(self) -> None:
        _check_duration(self.duration_s)
        _check_power("low_w", self.low_w)
        _check_power("high_w", self.high_w)
        if self.high_w < self.low_w:
            raise ValueError(
                f"high_w must be >= low_w, got {self.high_w} < {self.low_w}"
            )
        if self.period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")
        if not 0.0 < self.duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {self.duty}")

    def demand_at(self, t_s: float) -> float:
        """Demand (W) at phase-local progress ``t_s`` in [0, duration)."""
        phase_pos = (t_s % self.period_s) / self.period_s
        return self.high_w if phase_pos < self.duty else self.low_w

    def scaled(self, factor: float) -> "Oscillate":
        """Copy with duration and period scaled (period floored at
        :data:`MIN_PERIOD_S` so bursts stay resolvable at dt = 1 s)."""
        return Oscillate(
            self.duration_s * factor,
            self.low_w,
            self.high_w,
            max(self.period_s * factor, self.MIN_PERIOD_S),
            self.duty,
        )


Phase = Union[Hold, Ramp, Oscillate]


def repeat(phases: list[Phase], times: int) -> list[Phase]:
    """Concatenate ``times`` copies of a phase block."""
    if times < 1:
        raise ValueError(f"times must be >= 1, got {times}")
    return list(phases) * times


class PhaseProgram:
    """An immutable sequence of phases evaluated by application progress.

    Args:
        phases: ordered phase list; total duration is their sum.
    """

    def __init__(self, phases: list[Phase]) -> None:
        if not phases:
            raise ValueError("a program needs at least one phase")
        self._phases = tuple(phases)
        ends = np.cumsum([p.duration_s for p in self._phases])
        self._ends = ends
        self._starts = ends - np.asarray([p.duration_s for p in self._phases])

    @property
    def phases(self) -> tuple[Phase, ...]:
        """The phases, in order."""
        return self._phases

    @property
    def duration_s(self) -> float:
        """Total nominal (uncapped) duration of the program."""
        return float(self._ends[-1])

    def demand_at(self, progress_s: float) -> float:
        """Demand (W) at the given progress point.

        Progress outside ``[0, duration)`` clamps to the nearest end, so a
        just-finished workload reports its final phase's demand until the
        simulator retires it.
        """
        t = float(np.clip(progress_s, 0.0, self.duration_s - 1e-9))
        idx = int(np.searchsorted(self._ends, t, side="right"))
        idx = min(idx, len(self._phases) - 1)
        return self._phases[idx].demand_at(t - float(self._starts[idx]))

    def sample(self, dt_s: float) -> np.ndarray:
        """Demand trace sampled every ``dt_s`` of progress (for Figure 2).

        Returns:
            1-D array of demands at ``t = 0, dt, 2*dt, ...`` covering the
            full program duration.
        """
        if dt_s <= 0:
            raise ValueError(f"dt_s must be > 0, got {dt_s}")
        n = int(np.ceil(self.duration_s / dt_s))
        return np.asarray(
            [self.demand_at(i * dt_s) for i in range(n)], dtype=np.float64
        )

    def fraction_above(self, threshold_w: float, dt_s: float = 1.0) -> float:
        """Fraction of (uncapped) time the demand exceeds ``threshold_w``.

        This is the "Above 110W" column of the paper's Tables 2 and 4.
        """
        trace = self.sample(dt_s)
        return float(np.mean(trace > threshold_w))

    def scaled(self, factor: float) -> "PhaseProgram":
        """Program with every phase duration scaled (oscillation periods kept)."""
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        return PhaseProgram([p.scaled(factor) for p in self._phases])

    def __repr__(self) -> str:
        return (
            f"PhaseProgram(n_phases={len(self._phases)}, "
            f"duration_s={self.duration_s:.1f})"
        )

"""Power-trace recording and replay.

The artifact's methodology starts from *measured* power traces (Figure 2's
uncapped runs); this module closes that loop in the simulator: a
:class:`PowerTrace` is a sampled (time, power) series that can be

* captured from a telemetry log of an uncapped run,
* serialized to/from CSV (one row per sample, the format a real RAPL
  sampling script would produce), and
* replayed as a :class:`TracedProgram` — a demand program interchangeable
  with the synthetic :class:`~repro.workloads.phases.PhaseProgram`, so a
  workload recorded once (or imported from real hardware) can drive any
  experiment in the harness.

Replay indexes by *progress*, like every program: capping a traced
workload stretches it exactly as it stretches a synthetic one.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from repro.telemetry.log import TelemetryLog
from repro.workloads.spec import WorkloadSpec

__all__ = ["PowerTrace", "TracedProgram", "record_trace", "traced_workload"]


@dataclass(frozen=True)
class PowerTrace:
    """A sampled power series.

    Attributes:
        time_s: sample times, strictly increasing, shape ``(n,)``.
        power_w: power at each sample (W), shape ``(n,)``.
        name: label for reporting.
    """

    time_s: np.ndarray
    power_w: np.ndarray
    name: str = "trace"

    def __post_init__(self) -> None:
        t = np.asarray(self.time_s, dtype=np.float64)
        p = np.asarray(self.power_w, dtype=np.float64)
        if t.ndim != 1 or t.shape != p.shape:
            raise ValueError(
                f"time shape {t.shape} and power shape {p.shape} must be "
                "equal 1-D shapes"
            )
        if t.size < 2:
            raise ValueError("a trace needs at least 2 samples")
        if np.any(np.diff(t) <= 0):
            raise ValueError("time_s must be strictly increasing")
        if np.any(p < 0) or not np.all(np.isfinite(p)):
            raise ValueError("power_w must be finite and >= 0")
        object.__setattr__(self, "time_s", t)
        object.__setattr__(self, "power_w", p)

    @property
    def duration_s(self) -> float:
        """Span of the trace."""
        return float(self.time_s[-1] - self.time_s[0])

    def to_csv(self) -> str:
        """Serialize as ``time_s,power_w`` CSV with a header row."""
        buf = io.StringIO()
        buf.write("time_s,power_w\n")
        for t, p in zip(self.time_s, self.power_w):
            buf.write(f"{t:.6f},{p:.6f}\n")
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str, name: str = "trace") -> "PowerTrace":
        """Parse the :meth:`to_csv` format (header required).

        Raises:
            ValueError: malformed header or rows.
        """
        lines = [ln for ln in text.strip().splitlines() if ln.strip()]
        if not lines or lines[0].strip() != "time_s,power_w":
            raise ValueError("expected 'time_s,power_w' header")
        times, powers = [], []
        for i, line in enumerate(lines[1:], start=2):
            parts = line.split(",")
            if len(parts) != 2:
                raise ValueError(f"line {i}: expected 2 columns")
            times.append(float(parts[0]))
            powers.append(float(parts[1]))
        return cls(
            time_s=np.asarray(times), power_w=np.asarray(powers), name=name
        )


class TracedProgram:
    """A demand program that replays a recorded power trace.

    Drop-in compatible with :class:`~repro.workloads.phases.PhaseProgram`
    (``duration_s``, ``demand_at``, ``sample``, ``fraction_above``,
    ``scaled``): demand at progress ``t`` is the trace linearly
    interpolated at ``t`` (relative to its first sample).

    Args:
        trace: the source trace.
    """

    def __init__(self, trace: PowerTrace) -> None:
        self.trace = trace
        self._t0 = float(trace.time_s[0])

    @property
    def duration_s(self) -> float:
        """Replay length — the trace's span."""
        return self.trace.duration_s

    def demand_at(self, progress_s: float) -> float:
        """Interpolated demand at a progress point (clamped to the ends)."""
        t = float(np.clip(progress_s, 0.0, self.duration_s))
        return float(
            np.interp(t + self._t0, self.trace.time_s, self.trace.power_w)
        )

    def sample(self, dt_s: float) -> np.ndarray:
        """Demand resampled every ``dt_s`` of progress."""
        if dt_s <= 0:
            raise ValueError(f"dt_s must be > 0, got {dt_s}")
        n = max(int(np.ceil(self.duration_s / dt_s)), 1)
        return np.asarray(
            [self.demand_at(i * dt_s) for i in range(n)], dtype=np.float64
        )

    def fraction_above(self, threshold_w: float, dt_s: float = 1.0) -> float:
        """Fraction of replay time above a threshold (Tables 2/4 column)."""
        trace = self.sample(dt_s)
        return float(np.mean(trace > threshold_w))

    def scaled(self, factor: float) -> "TracedProgram":
        """Replay with time compressed/stretched by ``factor``."""
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        t = self.trace.time_s - self._t0
        return TracedProgram(
            PowerTrace(
                time_s=t * factor + self._t0,
                power_w=self.trace.power_w.copy(),
                name=self.trace.name,
            )
        )

    def __repr__(self) -> str:
        return (
            f"TracedProgram(name={self.trace.name!r}, "
            f"duration_s={self.duration_s:.1f})"
        )


def record_trace(
    log: TelemetryLog, unit_id: int, name: str = "trace"
) -> PowerTrace:
    """Capture one unit's true-power series from a telemetry log.

    Args:
        log: a telemetry log with at least 2 recorded steps.
        unit_id: the unit whose trace to extract.
        name: label for the trace.
    """
    if not 0 <= unit_id < log.n_units:
        raise ValueError(f"unit_id {unit_id} out of range [0, {log.n_units})")
    if len(log) < 2:
        raise ValueError("telemetry log has fewer than 2 steps")
    return PowerTrace(
        time_s=log.time_s.copy(),
        power_w=log.power_w[:, unit_id].copy(),
        name=name,
    )


def traced_workload(
    trace: PowerTrace,
    power_class: str = "mid",
    active_units: int | None = None,
) -> WorkloadSpec:
    """Wrap a trace into a WorkloadSpec runnable by the harness.

    Args:
        trace: the demand trace to replay.
        power_class: label for grouping (does not alter behaviour).
        active_units: sockets loaded; None = all assigned.
    """
    program = TracedProgram(trace)
    return WorkloadSpec(
        name=trace.name,
        suite="spark",
        power_class=power_class,
        program=program,  # type: ignore[arg-type]
        active_units=active_units,
        paper_duration_s=max(program.duration_s, 1e-9),
        paper_above_110_pct=min(program.fraction_above(110.0) * 100, 100.0),
        data_size="traced",
    )

"""Synthetic NAS Parallel Benchmark workloads (paper Table 4).

All eight NPB applications "consistently consume high power" — over 99 % of
their time above 110 W (§5.2) — so each program is a sustained high-demand
plateau with a short start-up ramp, a short tear-down, and a gentle
application-specific ripple (communication vs. compute alternation) that
never drops below 110 W.  Uncapped durations are the Table 4 constant-cap
latencies deflated by the expected capping stretch, like the Spark suite.

The §6.3 observation that *short* NPB apps (FT, MG) look phased when run
back-to-back against a long Spark partner is not baked into the programs —
it emerges from the inter-run gap of the execution engine.
"""

from __future__ import annotations

from repro.workloads.phases import Oscillate, PhaseProgram, Ramp
from repro.workloads.spec import WorkloadSpec

__all__ = ["NPB_WORKLOADS", "npb_workload", "npb_names"]

# Sustained plateaus stretch by ~1/rate under the 110 W constant cap; with
# the default perf model (idle 12 W, theta 2) a 157 W plateau runs at
# ((110-12)/(157-12))**0.5 ~ 0.822, so uncapped duration ~ 0.84 * published.
_DEFLATE = 0.84


def _npb_program(
    duration_s: float, level_w: float, ripple_w: float, ripple_period_s: float
) -> PhaseProgram:
    """Plateau at ``level_w`` +- ``ripple_w`` for ``duration_s`` (uncapped)."""
    body = max(duration_s * _DEFLATE - 8.0, 4.0)
    return PhaseProgram(
        [
            Ramp(4, 30, level_w),
            Oscillate(
                body,
                level_w - ripple_w,
                level_w + ripple_w,
                period_s=ripple_period_s,
                duty=0.6,
            ),
            Ramp(4, level_w, 30),
        ]
    )


def _spec(
    name: str,
    duration_s: float,
    level_w: float,
    ripple_w: float,
    ripple_period_s: float,
    data_size: str,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        suite="npb",
        power_class="npb",
        program=_npb_program(duration_s, level_w, ripple_w, ripple_period_s),
        active_units=None,
        paper_duration_s=duration_s,
        paper_above_110_pct=99.0,
        data_size=data_size,
        # MPI ranks barrier in principle ("min" sync), but strict
        # slowest-socket gating taxes every dynamic manager with the
        # simulator's per-socket jitter and does not match the tolerance
        # the paper's measured NPB results imply; the default stays
        # "mean", with "min" available as a sensitivity mode (see
        # tests/workloads/test_runtime.py::TestSynchronization).
        sync="mean",
    )


#: The 8 NPB applications of paper Table 4, in table order.  Power levels
#: differ slightly by kernel (memory-bound CG/IS a touch lower than
#: compute-bound EP/LU) but all stay far above 110 W.
NPB_WORKLOADS: dict[str, WorkloadSpec] = {
    s.name: s
    for s in (
        _spec("bt", 3509.29, 156.0, 4.0, 40.0, "247.1 GB"),
        _spec("cg", 1839.00, 151.0, 5.0, 25.0, "21.8 GB"),
        _spec("ep", 6019.07, 160.0, 2.0, 60.0, "4 TB"),
        _spec("ft", 152.83, 155.0, 5.0, 20.0, "400.0 GB"),
        _spec("is", 416.80, 150.0, 6.0, 15.0, "128.0 GB"),
        _spec("lu", 1895.89, 158.0, 3.0, 35.0, "296.5 GB"),
        _spec("mg", 143.82, 154.0, 5.0, 18.0, "400.0 GB"),
        _spec("sp", 3563.23, 157.0, 4.0, 45.0, "494.2 GB"),
    )
}


def npb_workload(name: str) -> WorkloadSpec:
    """Look up one NPB workload by Table 4 name (case-insensitive)."""
    try:
        return NPB_WORKLOADS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown NPB workload {name!r}; available: {sorted(NPB_WORKLOADS)}"
        ) from None


def npb_names() -> list[str]:
    """Names of all NPB workloads, in Table 4 order."""
    return list(NPB_WORKLOADS)

"""Synthetic HiBench Spark and NPB workload suites (paper Tables 2-4)."""

from repro.workloads.npb import NPB_WORKLOADS, npb_names, npb_workload
from repro.workloads.phases import (
    Hold,
    Oscillate,
    Phase,
    PhaseProgram,
    Ramp,
    repeat,
)
from repro.workloads.registry import (
    all_workloads,
    executor_config,
    get_workload,
    workload_names,
)
from repro.workloads.runtime import RunRecord, WorkloadExecution
from repro.workloads.spark import SPARK_WORKLOADS, spark_names, spark_workload
from repro.workloads.spec import POWER_CLASSES, WorkloadSpec
from repro.workloads.synthetic import random_program, random_workload
from repro.workloads.traces import (
    PowerTrace,
    TracedProgram,
    record_trace,
    traced_workload,
)

__all__ = [
    "PowerTrace",
    "TracedProgram",
    "record_trace",
    "traced_workload",
    "Hold",
    "NPB_WORKLOADS",
    "Oscillate",
    "POWER_CLASSES",
    "Phase",
    "PhaseProgram",
    "Ramp",
    "RunRecord",
    "SPARK_WORKLOADS",
    "WorkloadExecution",
    "WorkloadSpec",
    "all_workloads",
    "executor_config",
    "get_workload",
    "npb_names",
    "npb_workload",
    "random_program",
    "random_workload",
    "repeat",
    "spark_names",
    "spark_workload",
    "workload_names",
]

"""Per-cycle trace recorder (the artifact's power/cap/priority log).

The paper's artifact logs "the average power during every operating cycle,
the power cap set, and the priority (if DPS is running) at every operating
decision for each socket".  :class:`TelemetryLog` records exactly those
channels per step and finalizes them into contiguous arrays for analysis
(figures 2 and 7 are computed from this log).
"""

from __future__ import annotations

import numpy as np

__all__ = ["TelemetryLog"]


class TelemetryLog:
    """Append-per-step trace of a simulation.

    Args:
        n_units: number of units traced.
    """

    def __init__(self, n_units: int) -> None:
        if n_units < 1:
            raise ValueError(f"n_units must be >= 1, got {n_units}")
        self.n_units = n_units
        self._time: list[float] = []
        self._power: list[np.ndarray] = []
        self._readings: list[np.ndarray] = []
        self._caps: list[np.ndarray] = []
        self._priority: list[np.ndarray] = []
        self._finalized: dict[str, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self._time)

    def record(
        self,
        time_s: float,
        true_power_w: np.ndarray,
        readings_w: np.ndarray,
        caps_w: np.ndarray,
        priority: np.ndarray | None = None,
    ) -> None:
        """Append one step.

        Args:
            time_s: simulation time at the end of the step.
            true_power_w: hidden true power per unit.
            readings_w: noisy meter readings per unit.
            caps_w: caps in effect during the step.
            priority: DPS high-priority mask, or None for other managers
                (recorded as all-False).
        """
        for name, arr in (
            ("true_power_w", true_power_w),
            ("readings_w", readings_w),
            ("caps_w", caps_w),
        ):
            if np.shape(arr) != (self.n_units,):
                raise ValueError(
                    f"{name} shape {np.shape(arr)} != ({self.n_units},)"
                )
        self._finalized = None
        self._time.append(float(time_s))
        self._power.append(np.asarray(true_power_w, dtype=np.float64).copy())
        self._readings.append(np.asarray(readings_w, dtype=np.float64).copy())
        self._caps.append(np.asarray(caps_w, dtype=np.float64).copy())
        if priority is None:
            self._priority.append(np.zeros(self.n_units, dtype=bool))
        else:
            if np.shape(priority) != (self.n_units,):
                raise ValueError(
                    f"priority shape {np.shape(priority)} != ({self.n_units},)"
                )
            self._priority.append(np.asarray(priority, dtype=bool).copy())

    def _finalize(self) -> dict[str, np.ndarray]:
        if self._finalized is None:
            self._finalized = {
                "time_s": np.asarray(self._time, dtype=np.float64),
                "power_w": (
                    np.stack(self._power)
                    if self._power
                    else np.empty((0, self.n_units))
                ),
                "readings_w": (
                    np.stack(self._readings)
                    if self._readings
                    else np.empty((0, self.n_units))
                ),
                "caps_w": (
                    np.stack(self._caps)
                    if self._caps
                    else np.empty((0, self.n_units))
                ),
                "priority": (
                    np.stack(self._priority)
                    if self._priority
                    else np.empty((0, self.n_units), dtype=bool)
                ),
            }
        return self._finalized

    @property
    def time_s(self) -> np.ndarray:
        """Step-end times, shape ``(steps,)``."""
        return self._finalize()["time_s"]

    @property
    def power_w(self) -> np.ndarray:
        """True power, shape ``(steps, n_units)``."""
        return self._finalize()["power_w"]

    @property
    def readings_w(self) -> np.ndarray:
        """Noisy readings, shape ``(steps, n_units)``."""
        return self._finalize()["readings_w"]

    @property
    def caps_w(self) -> np.ndarray:
        """Caps in effect, shape ``(steps, n_units)``."""
        return self._finalize()["caps_w"]

    @property
    def priority(self) -> np.ndarray:
        """High-priority masks, shape ``(steps, n_units)``."""
        return self._finalize()["priority"]

    def window(self, start_s: float, end_s: float) -> dict[str, np.ndarray]:
        """Slice all channels to steps with ``start_s < t <= end_s``.

        Returns:
            Dict with the same keys as the channel properties.
        """
        if end_s < start_s:
            raise ValueError(f"end_s {end_s} < start_s {start_s}")
        data = self._finalize()
        mask = (data["time_s"] > start_s) & (data["time_s"] <= end_s)
        return {k: v[mask] for k, v in data.items()}

"""Per-cycle trace recorder (the artifact's power/cap/priority log).

The paper's artifact logs "the average power during every operating cycle,
the power cap set, and the priority (if DPS is running) at every operating
decision for each socket".  :class:`TelemetryLog` records exactly those
channels per step and finalizes them into contiguous arrays for analysis
(figures 2 and 7 are computed from this log).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = [
    "TelemetryLog",
    "ResilienceEvent",
    "ResilienceEventLog",
    "RecoveryEvent",
    "RESILIENCE_EVENT_KINDS",
    "RECOVERY_EVENT_KINDS",
    "SAFETY_EVENT_KINDS",
    "WORKER_EVENT_KINDS",
    "SHARD_EVENT_KINDS",
    "CyclePhaseTimings",
    "CycleTimingLog",
    "CYCLE_PHASES",
    "ShardLeaseSample",
    "LeaseTimeline",
    "LEASE_TIMELINE_FIELDS",
]

#: Recognized structured resilience event kinds (control-plane failures,
#: fallback decisions, and safe-mode transitions).
RESILIENCE_EVENT_KINDS = (
    "client_quarantined",
    "client_dead",
    "client_rejoined",
    "fallback_applied",
    "cap_clamped",
    "reading_suspect",
    "safe_mode_entered",
    "safe_mode_exited",
    "node_failed",
    "node_recovered",
)

#: Crash-recovery event kinds (checkpointing, restarts, verified
#: actuation).  They share the resilience event channel — one structured
#: stream covers everything that went wrong and what recovery did about
#: it — but are enumerated separately so exports and dashboards can
#: filter recovery activity.
RECOVERY_EVENT_KINDS = (
    "checkpoint_written",
    "checkpoint_rejected",
    "restore_performed",
    "journal_replayed",
    "actuation_retried",
    "actuation_retry_exhausted",
    "controller_killed",
    "controller_hung",
    "controller_restarted",
)

#: Budget-safety envelope event kinds (see :mod:`repro.safety`).  They
#: share the resilience event channel: ``budget_rescaled`` marks the
#: manager-level over-allocation rescale firing, ``budget_overshoot``
#: marks a cycle whose worst-case committed power exceeded the budget,
#: the three ladder kinds name the degradation rung the guard took,
#: ``budget_raise_deferred`` marks cap raises postponed a cycle so the
#: old/new transient union stays under budget, and
#: ``invariant_violation`` reports a failed runtime invariant check.
SAFETY_EVENT_KINDS = (
    "budget_rescaled",
    "budget_overshoot",
    "budget_shave_grants",
    "budget_scale_down",
    "budget_emergency_drop",
    "budget_raise_deferred",
    "invariant_violation",
)

#: Experiment-plane worker-lifecycle event kinds (see
#: :mod:`repro.experiments.distributed` and the campaign engine's
#: execution backends).  They share the structured event channel so one
#: stream covers everything that went wrong during a campaign and what
#: the coordinator did about it: worker membership transitions mirror
#: the control plane's quarantine/rejoin machinery (``node_id`` carries
#: the worker index), the ``lease_*`` kinds trace the job-lease
#: lifecycle, and ``backend_degraded`` marks a fall back to local
#: execution.  ``pool_rebuilt`` is the local backend's recovery from a
#: dead worker process.  No retry, re-dispatch, speculation, or
#: degradation happens without one of these events — there are no
#: silent retries.
WORKER_EVENT_KINDS = (
    "worker_joined",
    "worker_rejoined",
    "worker_quarantined",
    "worker_lost",
    "worker_skipped",
    "lease_granted",
    "lease_expired",
    "lease_redispatched",
    "job_speculated",
    "duplicate_discarded",
    "worker_result_invalid",
    "backend_degraded",
    "pool_rebuilt",
)

#: Sharded-control-plane event kinds (see :mod:`repro.shard`).  They
#: share the structured event channel: ``node_id`` carries the *shard*
#: index, mirroring how the worker-lifecycle kinds carry the worker
#: index.  Shard membership transitions ride the same quarantine/rejoin
#: semantics as clients and workers; the ``shard_lease_*`` kinds trace
#: the budget-lease lifecycle (granted by the arbiter, applied by the
#: shard, expired without renewal); ``shard_frozen`` / ``shard_unfrozen``
#: mark a shard degrading to lease-expiry safe mode and recovering from
#: it; ``arbiter_killed`` / ``arbiter_restarted`` bracket an arbiter
#: outage (during which every shard runs autonomously on its last
#: lease).  Live membership adds ``shard_admitted`` (a joining shard's
#: HELLO was accepted and a lease carved for it), ``shard_draining`` /
#: ``shard_drained`` (a leaving shard was asked to freeze, then its
#: budget reclaimed once the final frozen summary was acked), and
#: ``link_reconnect`` (a TCP shard link re-established after a drop),
#: and ``events_truncated`` (a cycle acknowledgement hit its per-ack
#: event cap; the overflow count rides in the detail).
#: Every shard-level failover step emits one of these — there is no
#: silent failover.
SHARD_EVENT_KINDS = (
    "shard_registered",
    "shard_lease_granted",
    "shard_lease_applied",
    "shard_lease_expired",
    "shard_frozen",
    "shard_unfrozen",
    "shard_quarantined",
    "shard_rejoined",
    "shard_dead",
    "shard_killed",
    "shard_hung",
    "shard_restarted",
    "shard_partitioned",
    "shard_partition_healed",
    "shard_headroom_reclaimed",
    "shard_admitted",
    "shard_draining",
    "shard_drained",
    "link_reconnect",
    "arbiter_killed",
    "arbiter_restarted",
    "events_truncated",
)

_ALL_EVENT_KINDS = (
    RESILIENCE_EVENT_KINDS
    + RECOVERY_EVENT_KINDS
    + SAFETY_EVENT_KINDS
    + WORKER_EVENT_KINDS
    + SHARD_EVENT_KINDS
)


@dataclass(frozen=True)
class ResilienceEvent:
    """One structured fault/fallback/safe-mode transition.

    Attributes:
        time_s: event time — simulation seconds, or the control-cycle
            index for the TCP deploy layer (which has no simulated clock).
        kind: one of :data:`RESILIENCE_EVENT_KINDS` or
            :data:`RECOVERY_EVENT_KINDS`.
        unit: global unit index, if the event concerns a single unit.
        node_id: node index, if the event concerns a node or its client.
        detail: free-form payload (failure reason, counts, fractions).
    """

    time_s: float
    kind: str
    unit: int | None = None
    node_id: int | None = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _ALL_EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; "
                f"expected one of {_ALL_EVENT_KINDS}"
            )


class ResilienceEventLog:
    """Append-only chronological log of resilience events."""

    def __init__(self) -> None:
        self._events: list[ResilienceEvent] = []

    def emit(
        self,
        time_s: float,
        kind: str,
        unit: int | None = None,
        node_id: int | None = None,
        detail: str = "",
    ) -> ResilienceEvent:
        """Append an event and return it."""
        event = ResilienceEvent(
            time_s=time_s, kind=kind, unit=unit, node_id=node_id, detail=detail
        )
        self._events.append(event)
        return event

    def extend(self, other: "ResilienceEventLog") -> None:
        """Merge another log (e.g. a manager's internal log) into this one.

        The merge is stable by ``time_s``, preserving the chronological
        ordering that ``window()``-style consumers and the CSV/JSON
        exporters assume; at equal times this log's events come first,
        then the other log's, each in their original order.
        """
        if not other._events:
            return
        merged = self._events + list(other._events)
        merged.sort(key=lambda e: e.time_s)  # Stable: ties keep order.
        self._events = merged

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ResilienceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> list[ResilienceEvent]:
        """All events of one kind, in order."""
        if kind not in _ALL_EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        return [e for e in self._events if e.kind == kind]

    def for_node(self, node_id: int) -> list[ResilienceEvent]:
        """All events tagged with the given node, in order."""
        return [e for e in self._events if e.node_id == node_id]


#: Recovery events use the same structured record as resilience events;
#: the alias names the crash-recovery subset at its sites of use.
RecoveryEvent = ResilienceEvent


#: Phases of one TCP control cycle, in execution order (see
#: :class:`~repro.deploy.server.DeployServer`).
CYCLE_PHASES = ("rejoin_s", "poll_s", "collect_s", "decide_s", "dispatch_s")


@dataclass(frozen=True)
class CyclePhaseTimings:
    """Wall-clock phase breakdown of one control cycle.

    Attributes:
        cycle: 1-based control-cycle index.
        rejoin_s: draining pending HELLO-rejoins.
        poll_s: POLL fan-out (concurrent mode) or the whole blocking
            request/response exchange (sequential mode, where
            ``collect_s`` is zero).
        collect_s: fan-in — the event loop collecting READINGS batches
            up to the per-cycle deadline.
        decide_s: the manager's decision step.
        dispatch_s: building and writing the CAPS batches.
    """

    cycle: int
    rejoin_s: float
    poll_s: float
    collect_s: float
    decide_s: float
    dispatch_s: float

    @property
    def total_s(self) -> float:
        """Sum of all phases — the cycle's wall time."""
        return (
            self.rejoin_s
            + self.poll_s
            + self.collect_s
            + self.decide_s
            + self.dispatch_s
        )


class CycleTimingLog:
    """Append-only per-cycle phase-timing channel of a deploy session."""

    def __init__(self) -> None:
        self._timings: list[CyclePhaseTimings] = []

    def record(self, timings: CyclePhaseTimings) -> None:
        """Append one cycle's phase breakdown."""
        self._timings.append(timings)

    def extend(self, other: "CycleTimingLog") -> None:
        """Append another log's cycles (e.g. a later supervised attempt)."""
        self._timings.extend(other._timings)

    def __len__(self) -> int:
        return len(self._timings)

    def __iter__(self) -> Iterator[CyclePhaseTimings]:
        return iter(self._timings)

    def __getitem__(self, index: int) -> CyclePhaseTimings:
        return self._timings[index]

    def as_columns(self) -> dict[str, np.ndarray]:
        """Column-oriented view: cycle indices plus one array per phase."""
        cols: dict[str, np.ndarray] = {
            "cycle": np.asarray(
                [t.cycle for t in self._timings], dtype=np.int64
            )
        }
        for phase in CYCLE_PHASES:
            cols[phase] = np.asarray(
                [getattr(t, phase) for t in self._timings], dtype=np.float64
            )
        cols["total_s"] = np.asarray(
            [t.total_s for t in self._timings], dtype=np.float64
        )
        return cols


#: Columns of one lease-timeline sample, in export order.
LEASE_TIMELINE_FIELDS = (
    "cycle",
    "shard_id",
    "lease_w",
    "committed_w",
    "headroom_w",
    "seq",
    "dark",
    "frozen",
)


@dataclass(frozen=True)
class ShardLeaseSample:
    """One shard's lease decision at one arbiter cycle.

    Attributes:
        cycle: the arbiter cycle index (control-cycle clock).
        shard_id: which shard the lease belongs to.
        lease_w: the budget lease (W) the arbiter holds for this shard
            after the cycle's redistribution.
        committed_w: the shard's last reported steady committed power
            (W); NaN before the first summary arrives.
        headroom_w: ``lease_w - committed_w`` (NaN with no summary) —
            the watts the arbiter could provably reclaim.
        seq: the lease sequence number last acknowledged by the shard.
        dark: True when the shard was unreachable this cycle (crashed,
            hung, or partitioned) and its lease is held conservatively.
        frozen: True when the shard reported lease-expiry safe mode.
    """

    cycle: int
    shard_id: int
    lease_w: float
    committed_w: float
    headroom_w: float
    seq: int
    dark: bool
    frozen: bool


class LeaseTimeline:
    """Append-only per-arbiter-cycle record of every shard's lease."""

    def __init__(self) -> None:
        self._samples: list[ShardLeaseSample] = []

    def record(self, sample: ShardLeaseSample) -> None:
        """Append one shard's sample."""
        self._samples.append(sample)

    def extend(self, other: "LeaseTimeline") -> None:
        """Append another timeline's samples (e.g. a restarted arbiter)."""
        self._samples.extend(other._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[ShardLeaseSample]:
        return iter(self._samples)

    def __getitem__(self, index: int) -> ShardLeaseSample:
        return self._samples[index]

    def for_shard(self, shard_id: int) -> list[ShardLeaseSample]:
        """All samples of one shard, in cycle order."""
        return [s for s in self._samples if s.shard_id == shard_id]

    def as_columns(self) -> dict[str, np.ndarray]:
        """Column-oriented view keyed by :data:`LEASE_TIMELINE_FIELDS`."""
        cols: dict[str, np.ndarray] = {}
        for name in LEASE_TIMELINE_FIELDS:
            values = [getattr(s, name) for s in self._samples]
            if name in ("cycle", "shard_id", "seq"):
                cols[name] = np.asarray(values, dtype=np.int64)
            elif name in ("dark", "frozen"):
                cols[name] = np.asarray(values, dtype=bool)
            else:
                cols[name] = np.asarray(values, dtype=np.float64)
        return cols


class TelemetryLog:
    """Append-per-step trace of a simulation.

    Args:
        n_units: number of units traced.
    """

    def __init__(self, n_units: int) -> None:
        if n_units < 1:
            raise ValueError(f"n_units must be >= 1, got {n_units}")
        self.n_units = n_units
        self._time: list[float] = []
        self._power: list[np.ndarray] = []
        self._readings: list[np.ndarray] = []
        self._caps: list[np.ndarray] = []
        self._priority: list[np.ndarray] = []
        self._finalized: dict[str, np.ndarray] | None = None
        #: Structured resilience events recorded alongside the traces
        #: (quarantines, fallbacks, clamps, safe-mode transitions).
        self.events = ResilienceEventLog()

    def __len__(self) -> int:
        return len(self._time)

    def record(
        self,
        time_s: float,
        true_power_w: np.ndarray,
        readings_w: np.ndarray,
        caps_w: np.ndarray,
        priority: np.ndarray | None = None,
    ) -> None:
        """Append one step.

        Args:
            time_s: simulation time at the end of the step.
            true_power_w: hidden true power per unit.
            readings_w: noisy meter readings per unit.
            caps_w: caps in effect during the step.
            priority: DPS high-priority mask, or None for other managers
                (recorded as all-False).
        """
        for name, arr in (
            ("true_power_w", true_power_w),
            ("readings_w", readings_w),
            ("caps_w", caps_w),
        ):
            if np.shape(arr) != (self.n_units,):
                raise ValueError(
                    f"{name} shape {np.shape(arr)} != ({self.n_units},)"
                )
        self._finalized = None
        self._time.append(float(time_s))
        self._power.append(np.asarray(true_power_w, dtype=np.float64).copy())
        self._readings.append(np.asarray(readings_w, dtype=np.float64).copy())
        self._caps.append(np.asarray(caps_w, dtype=np.float64).copy())
        if priority is None:
            self._priority.append(np.zeros(self.n_units, dtype=bool))
        else:
            if np.shape(priority) != (self.n_units,):
                raise ValueError(
                    f"priority shape {np.shape(priority)} != ({self.n_units},)"
                )
            self._priority.append(np.asarray(priority, dtype=bool).copy())

    def _finalize(self) -> dict[str, np.ndarray]:
        if self._finalized is None:
            self._finalized = {
                "time_s": np.asarray(self._time, dtype=np.float64),
                "power_w": (
                    np.stack(self._power)
                    if self._power
                    else np.empty((0, self.n_units))
                ),
                "readings_w": (
                    np.stack(self._readings)
                    if self._readings
                    else np.empty((0, self.n_units))
                ),
                "caps_w": (
                    np.stack(self._caps)
                    if self._caps
                    else np.empty((0, self.n_units))
                ),
                "priority": (
                    np.stack(self._priority)
                    if self._priority
                    else np.empty((0, self.n_units), dtype=bool)
                ),
            }
        return self._finalized

    @property
    def time_s(self) -> np.ndarray:
        """Step-end times, shape ``(steps,)``."""
        return self._finalize()["time_s"]

    @property
    def power_w(self) -> np.ndarray:
        """True power, shape ``(steps, n_units)``."""
        return self._finalize()["power_w"]

    @property
    def readings_w(self) -> np.ndarray:
        """Noisy readings, shape ``(steps, n_units)``."""
        return self._finalize()["readings_w"]

    @property
    def caps_w(self) -> np.ndarray:
        """Caps in effect, shape ``(steps, n_units)``."""
        return self._finalize()["caps_w"]

    @property
    def priority(self) -> np.ndarray:
        """High-priority masks, shape ``(steps, n_units)``."""
        return self._finalize()["priority"]

    def window(self, start_s: float, end_s: float) -> dict[str, np.ndarray]:
        """Slice all channels to steps with ``start_s < t <= end_s``.

        Returns:
            Dict with the same keys as the channel properties.
        """
        if end_s < start_s:
            raise ValueError(f"end_s {end_s} < start_s {start_s}")
        data = self._finalize()
        mask = (data["time_s"] > start_s) & (data["time_s"] <= end_s)
        return {k: v[mask] for k, v in data.items()}

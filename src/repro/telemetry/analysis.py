"""Post-processing of telemetry traces.

The artifact's analysis scripts "match the power-related data to each
workload using the start and end time and further plot the time-series
power-related data"; these helpers do the equivalents used by the figure
generators: per-workload average power, time above a threshold (the
"Above 110W" columns), and coarse phase extraction for Figure-2-style
inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.log import LeaseTimeline, TelemetryLog

__all__ = [
    "PhaseSegment",
    "avg_power",
    "fraction_above",
    "extract_phases",
    "lease_utilization",
    "lease_series",
]


@dataclass(frozen=True)
class PhaseSegment:
    """One detected power phase in a unit's trace.

    Attributes:
        start_s / end_s: phase boundaries (simulation time).
        mean_power_w: average power inside the phase.
    """

    start_s: float
    end_s: float
    mean_power_w: float

    @property
    def duration_s(self) -> float:
        """Length of the phase."""
        return self.end_s - self.start_s


def avg_power(
    log: TelemetryLog,
    unit_ids: np.ndarray,
    start_s: float,
    end_s: float,
) -> float:
    """Mean per-unit true power of the given units over a time window.

    Args:
        log: trace to query.
        unit_ids: units to average over.
        start_s / end_s: window bounds (``start < t <= end``).

    Returns:
        Mean power in watts.

    Raises:
        ValueError: empty window.
    """
    data = log.window(start_s, end_s)
    power = data["power_w"]
    if power.shape[0] == 0:
        raise ValueError(f"no samples in window ({start_s}, {end_s}]")
    return float(power[:, np.asarray(unit_ids, dtype=np.intp)].mean())


def fraction_above(
    log: TelemetryLog, unit_id: int, threshold_w: float
) -> float:
    """Fraction of steps one unit's true power exceeded a threshold."""
    power = log.power_w
    if power.shape[0] == 0:
        raise ValueError("empty telemetry log")
    if not 0 <= unit_id < log.n_units:
        raise ValueError(f"unit_id {unit_id} out of range [0, {log.n_units})")
    return float(np.mean(power[:, unit_id] > threshold_w))


def extract_phases(
    time_s: np.ndarray,
    power_w: np.ndarray,
    min_delta_w: float = 25.0,
    min_duration_s: float = 3.0,
) -> list[PhaseSegment]:
    """Segment a 1-D power trace into coarse phases.

    A new phase starts whenever the running phase mean and the incoming
    sample differ by more than ``min_delta_w``; segments shorter than
    ``min_duration_s`` are merged into their successor.  This is
    deliberately simple — it exists so tests can assert the *structure* of
    the Figure-2 traces (LDA has long phases, LR has many short ones), not
    to be a production change-point detector.

    Args:
        time_s: sample times, shape ``(n,)``.
        power_w: power samples, shape ``(n,)``.
        min_delta_w: level change that opens a new phase.
        min_duration_s: segments shorter than this merge forward.

    Returns:
        Chronological list of :class:`PhaseSegment`.
    """
    t = np.asarray(time_s, dtype=np.float64)
    p = np.asarray(power_w, dtype=np.float64)
    if t.shape != p.shape or t.ndim != 1:
        raise ValueError("time and power must be equal-length 1-D arrays")
    if t.size == 0:
        return []

    # First pass: split on level changes against the running phase mean.
    raw: list[tuple[int, int]] = []
    start = 0
    mean = p[0]
    count = 1
    for i in range(1, t.size):
        if abs(p[i] - mean) > min_delta_w:
            raw.append((start, i))
            start, mean, count = i, p[i], 1
        else:
            count += 1
            mean += (p[i] - mean) / count
    raw.append((start, t.size))

    # Second pass: merge too-short segments into their successor.
    merged: list[tuple[int, int]] = []
    for seg in raw:
        if merged and t[seg[1] - 1] - t[merged[-1][0]] < min_duration_s:
            merged[-1] = (merged[-1][0], seg[1])
        elif (
            merged
            and t[merged[-1][1] - 1] - t[merged[-1][0]] < min_duration_s
        ):
            merged[-1] = (merged[-1][0], seg[1])
        else:
            merged.append(seg)

    return [
        PhaseSegment(
            start_s=float(t[a]),
            end_s=float(t[b - 1]),
            mean_power_w=float(p[a:b].mean()),
        )
        for a, b in merged
    ]


def lease_utilization(timeline: LeaseTimeline, shard_id: int) -> float:
    """Mean committed-power fraction of one shard's lease over a session.

    The ratio ``committed_w / lease_w`` averaged over the arbiter cycles
    in which the shard had reported at least one summary (cycles with no
    summary yet carry NaN committed power and are skipped).  A shard that
    never reported returns NaN.
    """
    samples = timeline.for_shard(shard_id)
    ratios = [
        s.committed_w / s.lease_w
        for s in samples
        if np.isfinite(s.committed_w) and s.lease_w > 0
    ]
    if not ratios:
        return float("nan")
    return float(np.mean(ratios))


def lease_series(
    timeline: LeaseTimeline, shard_id: int
) -> dict[str, np.ndarray]:
    """One shard's lease trajectory as aligned arrays.

    Returns:
        Dict with ``cycle`` (int64), ``lease_w`` / ``committed_w`` /
        ``headroom_w`` (float64), and ``dark`` / ``frozen`` (bool) —
        the inputs Figure-style lease-timeline plots consume.
    """
    samples = timeline.for_shard(shard_id)
    return {
        "cycle": np.asarray([s.cycle for s in samples], dtype=np.int64),
        "lease_w": np.asarray([s.lease_w for s in samples]),
        "committed_w": np.asarray([s.committed_w for s in samples]),
        "headroom_w": np.asarray([s.headroom_w for s in samples]),
        "dark": np.asarray([s.dark for s in samples], dtype=bool),
        "frozen": np.asarray([s.frozen for s in samples], dtype=bool),
    }

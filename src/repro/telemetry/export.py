"""Telemetry serialization (the artifact's result logs).

The artifact stores per-cycle logs ("the average power during every
operating cycle, the power cap set, and the priority ... for each socket")
that its plotting scripts consume.  This module writes a
:class:`~repro.telemetry.log.TelemetryLog` in two interchange formats:

* **CSV** — one row per (step, unit), the long format external tools
  (pandas, gnuplot) ingest directly;
* **JSON** — a compact column-oriented document that round-trips back
  into a ``TelemetryLog`` exactly.

Structured resilience events (quarantines, fallbacks, safe-mode
transitions) attached to the log ride along in the JSON document and have
their own long-format CSV via :func:`events_to_csv`.
"""

from __future__ import annotations

import io
import json

import numpy as np

from repro.telemetry.log import (
    CYCLE_PHASES,
    LEASE_TIMELINE_FIELDS,
    CyclePhaseTimings,
    CycleTimingLog,
    LeaseTimeline,
    ResilienceEventLog,
    ShardLeaseSample,
    TelemetryLog,
)

__all__ = [
    "to_csv",
    "from_csv",
    "to_json",
    "from_json",
    "events_to_csv",
    "timings_to_csv",
    "timings_to_json",
    "timings_from_json",
    "leases_to_csv",
    "leases_to_json",
    "leases_from_json",
]

_CSV_HEADER = "time_s,unit,power_w,reading_w,cap_w,priority"


def to_csv(log: TelemetryLog) -> str:
    """Render a log as long-format CSV (header + one row per step/unit)."""
    buf = io.StringIO()
    buf.write(_CSV_HEADER + "\n")
    time_s = log.time_s
    power = log.power_w
    readings = log.readings_w
    caps = log.caps_w
    priority = log.priority
    for i in range(len(log)):
        t = time_s[i]
        for u in range(log.n_units):
            buf.write(
                f"{t:.3f},{u},{power[i, u]:.3f},{readings[i, u]:.3f},"
                f"{caps[i, u]:.3f},{int(priority[i, u])}\n"
            )
    return buf.getvalue()


def from_csv(text: str) -> TelemetryLog:
    """Parse :func:`to_csv` output back into a log.

    Rows must be grouped by step (all units of a step contiguous, as
    written) with every step covering units ``0..n_units-1`` exactly once.

    Raises:
        ValueError: missing header, ragged steps, or malformed rows.
    """
    lines = [ln for ln in text.strip().splitlines() if ln.strip()]
    if not lines or lines[0].strip() != _CSV_HEADER:
        raise ValueError(f"expected header {_CSV_HEADER!r}")
    rows = []
    for i, line in enumerate(lines[1:], start=2):
        parts = line.split(",")
        if len(parts) != 6:
            raise ValueError(f"line {i}: expected 6 columns")
        rows.append(
            (
                float(parts[0]),
                int(parts[1]),
                float(parts[2]),
                float(parts[3]),
                float(parts[4]),
                bool(int(parts[5])),
            )
        )
    if not rows:
        raise ValueError("CSV contains a header but no rows")
    n_units = max(r[1] for r in rows) + 1
    if len(rows) % n_units != 0:
        raise ValueError(
            f"{len(rows)} rows do not tile {n_units}-unit steps"
        )
    log = TelemetryLog(n_units)
    for s in range(len(rows) // n_units):
        step = rows[s * n_units : (s + 1) * n_units]
        units = [r[1] for r in step]
        if sorted(units) != list(range(n_units)):
            raise ValueError(f"step {s} does not cover every unit once")
        by_unit = {r[1]: r for r in step}
        log.record(
            step[0][0],
            np.asarray([by_unit[u][2] for u in range(n_units)]),
            np.asarray([by_unit[u][3] for u in range(n_units)]),
            np.asarray([by_unit[u][4] for u in range(n_units)]),
            np.asarray([by_unit[u][5] for u in range(n_units)], dtype=bool),
        )
    return log


def to_json(log: TelemetryLog) -> str:
    """Serialize a log as a column-oriented JSON document."""
    doc = {
        "format": "repro-telemetry-v1",
        "n_units": log.n_units,
        "time_s": log.time_s.tolist(),
        "power_w": log.power_w.tolist(),
        "readings_w": log.readings_w.tolist(),
        "caps_w": log.caps_w.tolist(),
        "priority": log.priority.astype(int).tolist(),
        "events": [
            [e.time_s, e.kind, e.unit, e.node_id, e.detail]
            for e in log.events
        ],
    }
    return json.dumps(doc)


def events_to_csv(events: ResilienceEventLog) -> str:
    """Render a resilience event log as long-format CSV."""
    buf = io.StringIO()
    buf.write("time_s,kind,unit,node_id,detail\n")
    for e in events:
        unit = "" if e.unit is None else str(e.unit)
        node = "" if e.node_id is None else str(e.node_id)
        detail = e.detail.replace(",", ";")
        buf.write(f"{e.time_s:.3f},{e.kind},{unit},{node},{detail}\n")
    return buf.getvalue()


def timings_to_csv(timings: CycleTimingLog) -> str:
    """Render a cycle-timing log as long-format CSV (one row per cycle)."""
    buf = io.StringIO()
    buf.write("cycle," + ",".join(CYCLE_PHASES) + ",total_s\n")
    for t in timings:
        phases = ",".join(f"{getattr(t, p):.6f}" for p in CYCLE_PHASES)
        buf.write(f"{t.cycle},{phases},{t.total_s:.6f}\n")
    return buf.getvalue()


def timings_to_json(timings: CycleTimingLog) -> str:
    """Serialize a cycle-timing log as a column-oriented JSON document."""
    doc: dict = {"format": "repro-cycle-timings-v1"}
    doc["cycle"] = [t.cycle for t in timings]
    for phase in CYCLE_PHASES:
        doc[phase] = [getattr(t, phase) for t in timings]
    return json.dumps(doc)


def timings_from_json(text: str) -> CycleTimingLog:
    """Reconstruct a cycle-timing log from :func:`timings_to_json` output.

    Raises:
        ValueError: wrong format tag or ragged columns.
    """
    doc = json.loads(text)
    if doc.get("format") != "repro-cycle-timings-v1":
        raise ValueError(
            f"unsupported timings format {doc.get('format')!r}"
        )
    cycles = doc["cycle"]
    for phase in CYCLE_PHASES:
        if len(doc[phase]) != len(cycles):
            raise ValueError(
                f"{phase} holds {len(doc[phase])} entries for "
                f"{len(cycles)} cycles"
            )
    log = CycleTimingLog()
    for i, cycle in enumerate(cycles):
        log.record(
            CyclePhaseTimings(
                cycle=int(cycle),
                **{phase: float(doc[phase][i]) for phase in CYCLE_PHASES},
            )
        )
    return log


def leases_to_csv(timeline: LeaseTimeline) -> str:
    """Render a lease timeline as long-format CSV (one row per sample)."""
    buf = io.StringIO()
    buf.write(",".join(LEASE_TIMELINE_FIELDS) + "\n")
    for s in timeline:
        buf.write(
            f"{s.cycle},{s.shard_id},{s.lease_w:.6f},{s.committed_w:.6f},"
            f"{s.headroom_w:.6f},{s.seq},{int(s.dark)},{int(s.frozen)}\n"
        )
    return buf.getvalue()


def leases_to_json(timeline: LeaseTimeline) -> str:
    """Serialize a lease timeline as a column-oriented JSON document."""
    doc: dict = {"format": "repro-lease-timeline-v1"}
    for name, col in timeline.as_columns().items():
        doc[name] = col.tolist()
    return json.dumps(doc)


def leases_from_json(text: str) -> LeaseTimeline:
    """Reconstruct a lease timeline from :func:`leases_to_json` output.

    Raises:
        ValueError: wrong format tag or ragged columns.
    """
    doc = json.loads(text)
    if doc.get("format") != "repro-lease-timeline-v1":
        raise ValueError(
            f"unsupported lease-timeline format {doc.get('format')!r}"
        )
    cycles = doc["cycle"]
    for name in LEASE_TIMELINE_FIELDS:
        if len(doc[name]) != len(cycles):
            raise ValueError(
                f"{name} holds {len(doc[name])} entries for "
                f"{len(cycles)} samples"
            )
    timeline = LeaseTimeline()
    for i in range(len(cycles)):
        timeline.record(
            ShardLeaseSample(
                cycle=int(doc["cycle"][i]),
                shard_id=int(doc["shard_id"][i]),
                lease_w=float(doc["lease_w"][i]),
                committed_w=float(doc["committed_w"][i]),
                headroom_w=float(doc["headroom_w"][i]),
                seq=int(doc["seq"][i]),
                dark=bool(doc["dark"][i]),
                frozen=bool(doc["frozen"][i]),
            )
        )
    return timeline


def from_json(text: str) -> TelemetryLog:
    """Reconstruct a log from :func:`to_json` output.

    Raises:
        ValueError: wrong format tag or inconsistent shapes.
    """
    doc = json.loads(text)
    if doc.get("format") != "repro-telemetry-v1":
        raise ValueError(
            f"unsupported telemetry format {doc.get('format')!r}"
        )
    n_units = int(doc["n_units"])
    log = TelemetryLog(n_units)
    time_s = doc["time_s"]
    expected = (len(time_s), n_units)

    def channel(name: str, dtype: type) -> np.ndarray:
        arr = np.asarray(doc[name], dtype=dtype)
        # An empty channel deserializes as shape (0,); normalize it.
        if arr.size == 0:
            arr = arr.reshape(0, n_units)
        return arr

    power = channel("power_w", np.float64)
    readings = channel("readings_w", np.float64)
    caps = channel("caps_w", np.float64)
    priority = channel("priority", bool)
    for name, arr in (
        ("power_w", power),
        ("readings_w", readings),
        ("caps_w", caps),
        ("priority", priority),
    ):
        if arr.shape != expected:
            raise ValueError(
                f"{name} shape {arr.shape} != {expected} in document"
            )
    for i, t in enumerate(time_s):
        log.record(float(t), power[i], readings[i], caps[i], priority[i])
    # Events are optional so documents written before the resilience layer
    # still load.
    for row in doc.get("events", []):
        time, kind, unit, node_id, detail = row
        log.events.emit(
            float(time),
            str(kind),
            unit=None if unit is None else int(unit),
            node_id=None if node_id is None else int(node_id),
            detail=str(detail),
        )
    return log

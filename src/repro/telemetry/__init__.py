"""Per-cycle trace recording and analysis (the artifact's power logs)."""

from repro.telemetry.analysis import (
    PhaseSegment,
    avg_power,
    extract_phases,
    fraction_above,
)
from repro.telemetry.export import (
    events_to_csv,
    from_json,
    timings_from_json,
    timings_to_csv,
    timings_to_json,
    to_csv,
    to_json,
)
from repro.telemetry.log import (
    CYCLE_PHASES,
    RESILIENCE_EVENT_KINDS,
    WORKER_EVENT_KINDS,
    CyclePhaseTimings,
    CycleTimingLog,
    ResilienceEvent,
    ResilienceEventLog,
    TelemetryLog,
)

__all__ = [
    "CYCLE_PHASES",
    "CyclePhaseTimings",
    "CycleTimingLog",
    "PhaseSegment",
    "RESILIENCE_EVENT_KINDS",
    "WORKER_EVENT_KINDS",
    "ResilienceEvent",
    "ResilienceEventLog",
    "TelemetryLog",
    "avg_power",
    "events_to_csv",
    "extract_phases",
    "fraction_above",
    "from_json",
    "timings_from_json",
    "timings_to_csv",
    "timings_to_json",
    "to_csv",
    "to_json",
]

"""Per-cycle trace recording and analysis (the artifact's power logs)."""

from repro.telemetry.analysis import (
    PhaseSegment,
    avg_power,
    extract_phases,
    fraction_above,
)
from repro.telemetry.export import (
    events_to_csv,
    from_json,
    to_csv,
    to_json,
)
from repro.telemetry.log import (
    RESILIENCE_EVENT_KINDS,
    ResilienceEvent,
    ResilienceEventLog,
    TelemetryLog,
)

__all__ = [
    "PhaseSegment",
    "RESILIENCE_EVENT_KINDS",
    "ResilienceEvent",
    "ResilienceEventLog",
    "TelemetryLog",
    "avg_power",
    "events_to_csv",
    "extract_phases",
    "fraction_above",
    "from_json",
    "to_csv",
    "to_json",
]

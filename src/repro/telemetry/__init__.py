"""Per-cycle trace recording and analysis (the artifact's power logs)."""

from repro.telemetry.analysis import (
    PhaseSegment,
    avg_power,
    extract_phases,
    fraction_above,
)
from repro.telemetry.export import from_json, to_csv, to_json
from repro.telemetry.log import TelemetryLog

__all__ = [
    "PhaseSegment",
    "TelemetryLog",
    "avg_power",
    "extract_phases",
    "fraction_above",
    "from_json",
    "to_csv",
    "to_json",
]

"""Structured event log of a simulation run.

The paper's artifact logs "the start time, end time, and throughput time of
each workload" alongside the per-cycle power data; this module is the
structured half of that log (the per-cycle half lives in
:mod:`repro.telemetry.log`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Event", "EventLog", "EventKind", "NodeFailureEvent"]

EventKind = str

#: Recognized event kinds.
EVENT_KINDS = (
    "run_started",
    "run_completed",
    "caps_restored",
    "budget_violation",
    "simulation_truncated",
    "node_failed",
    "node_recovered",
    "safe_mode_entered",
    "safe_mode_exited",
)


@dataclass(frozen=True)
class NodeFailureEvent:
    """A scheduled node crash (and optional recovery) for the simulator.

    While a node is down its units draw no power (the machine is off) and
    their meters read as dropouts (exactly 0.0 W) — the same signature a
    dead host leaves in real telemetry.  On recovery the node resumes from
    cold (idle power, lagging back up under its workload's demand).

    Attributes:
        node_id: the node that fails.
        fail_at_s: simulation time of the crash.
        recover_at_s: simulation time of the recovery, or None if the
            node never comes back.
    """

    node_id: int
    fail_at_s: float
    recover_at_s: float | None = None

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {self.node_id}")
        if self.fail_at_s < 0:
            raise ValueError(
                f"fail_at_s must be >= 0, got {self.fail_at_s}"
            )
        if self.recover_at_s is not None and (
            self.recover_at_s <= self.fail_at_s
        ):
            raise ValueError(
                f"recover_at_s {self.recover_at_s} must be after "
                f"fail_at_s {self.fail_at_s}"
            )


@dataclass(frozen=True)
class Event:
    """One timestamped simulation event.

    Attributes:
        time_s: simulation time of the event.
        kind: one of :data:`EVENT_KINDS`.
        workload: workload name, if the event concerns one.
        detail: free-form payload (run index, violation magnitude, ...).
    """

    time_s: float
    kind: EventKind
    workload: str | None = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )


class EventLog:
    """Append-only chronological event collection."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def emit(
        self,
        time_s: float,
        kind: EventKind,
        workload: str | None = None,
        detail: str = "",
    ) -> Event:
        """Append an event and return it."""
        event = Event(time_s=time_s, kind=kind, workload=workload, detail=detail)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All events of one kind, in order."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        return [e for e in self._events if e.kind == kind]

    def for_workload(self, workload: str) -> list[Event]:
        """All events tagged with the given workload, in order."""
        return [e for e in self._events if e.workload == workload]

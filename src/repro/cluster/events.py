"""Structured event log of a simulation run.

The paper's artifact logs "the start time, end time, and throughput time of
each workload" alongside the per-cycle power data; this module is the
structured half of that log (the per-cycle half lives in
:mod:`repro.telemetry.log`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Event", "EventLog", "EventKind"]

EventKind = str

#: Recognized event kinds.
EVENT_KINDS = (
    "run_started",
    "run_completed",
    "caps_restored",
    "budget_violation",
    "simulation_truncated",
)


@dataclass(frozen=True)
class Event:
    """One timestamped simulation event.

    Attributes:
        time_s: simulation time of the event.
        kind: one of :data:`EVENT_KINDS`.
        workload: workload name, if the event concerns one.
        detail: free-form payload (run index, violation magnitude, ...).
    """

    time_s: float
    kind: EventKind
    workload: str | None = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )


class EventLog:
    """Append-only chronological event collection."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def emit(
        self,
        time_s: float,
        kind: EventKind,
        workload: str | None = None,
        detail: str = "",
    ) -> Event:
        """Append an event and return it."""
        event = Event(time_s=time_s, kind=kind, workload=workload, detail=detail)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All events of one kind, in order."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        return [e for e in self._events if e.kind == kind]

    def for_workload(self, workload: str) -> list[Event]:
        """All events tagged with the given workload, in order."""
        return [e for e in self._events if e.workload == workload]

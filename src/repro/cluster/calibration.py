"""Performance-model calibration from observed slowdowns.

The simulator's cap-to-performance curve (``perfmodel.progress_rate``) is a
substitution for the authors' real hardware (DESIGN.md §2).  To port this
reproduction onto actual machines — or onto published slowdown data — the
model must be fit, not assumed.  :func:`fit_perf_model` recovers the
``(idle_power_w, theta)`` parameters from observed ``(cap, demand, rate)``
triples by least squares on a grid-refined search; :func:`observe_rates`
generates those triples from any callable rate source (e.g. timing real
capped runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.config import PerfModelConfig
from repro.cluster.perfmodel import progress_rate

__all__ = ["CalibrationResult", "Observation", "fit_perf_model", "observe_rates"]


@dataclass(frozen=True)
class Observation:
    """One measured slowdown point.

    Attributes:
        cap_w: the power cap in effect.
        demand_w: the workload's uncapped power draw.
        rate: measured progress rate (capped time / uncapped time inverted),
            in (0, 1].
    """

    cap_w: float
    demand_w: float
    rate: float

    def __post_init__(self) -> None:
        if self.cap_w < 0 or self.demand_w < 0:
            raise ValueError("cap_w and demand_w must be >= 0")
        if not 0 < self.rate <= 1:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a model fit.

    Attributes:
        config: the fitted performance model.
        rmse: root-mean-square rate error over the observations.
        n_observations: sample size.
    """

    config: PerfModelConfig
    rmse: float
    n_observations: int


def observe_rates(
    rate_source: Callable[[float, float], float],
    caps_w: Sequence[float],
    demands_w: Sequence[float],
) -> list[Observation]:
    """Collect observations from a rate oracle over a (cap, demand) grid.

    Args:
        rate_source: callable mapping ``(cap_w, demand_w)`` to a measured
            progress rate — a wrapper over real capped-run timings, or a
            simulator model under test.
        caps_w / demands_w: grid axes.

    Returns:
        One :class:`Observation` per grid point with ``cap < demand``
        (unconstrained points carry no information about the curve).
    """
    out = []
    for demand in demands_w:
        for cap in caps_w:
            if cap >= demand:
                continue
            out.append(
                Observation(
                    cap_w=float(cap),
                    demand_w=float(demand),
                    rate=float(rate_source(float(cap), float(demand))),
                )
            )
    return out


def fit_perf_model(
    observations: Sequence[Observation],
    theta_range: tuple[float, float] = (1.0, 4.0),
    idle_range: tuple[float, float] = (0.0, 40.0),
    grid: int = 25,
    refinements: int = 3,
) -> CalibrationResult:
    """Least-squares fit of ``(idle_power_w, theta)`` to observations.

    A coarse grid over the parameter box is refined ``refinements`` times
    around the incumbent minimum — robust for this smooth 2-parameter
    surface and dependency-free.

    Args:
        observations: measured slowdown points (need at least 3 with
            ``cap < demand``).
        theta_range / idle_range: parameter search box.
        grid: grid points per axis per refinement.
        refinements: number of zoom-in passes.

    Returns:
        The best-fitting model and its residual.
    """
    obs = list(observations)
    if len(obs) < 3:
        raise ValueError(f"need at least 3 observations, got {len(obs)}")
    caps = np.asarray([o.cap_w for o in obs])
    demands = np.asarray([o.demand_w for o in obs])
    rates = np.asarray([o.rate for o in obs])

    def rmse(idle: float, theta: float) -> float:
        cfg = PerfModelConfig(
            idle_power_w=idle, theta=theta, min_rate=1e-6
        )
        predicted = progress_rate(caps, demands, cfg)
        return float(np.sqrt(np.mean((predicted - rates) ** 2)))

    t_lo, t_hi = theta_range
    i_lo, i_hi = idle_range
    if t_lo < 1.0:
        raise ValueError(f"theta_range must start >= 1, got {t_lo}")
    best = (i_lo, t_lo, np.inf)
    for _ in range(refinements):
        thetas = np.linspace(t_lo, t_hi, grid)
        idles = np.linspace(i_lo, i_hi, grid)
        for idle in idles:
            for theta in thetas:
                err = rmse(float(idle), float(theta))
                if err < best[2]:
                    best = (float(idle), float(theta), err)
        # Zoom the box around the incumbent.
        t_span = (t_hi - t_lo) / 4
        i_span = (i_hi - i_lo) / 4
        t_lo = max(1.0, best[1] - t_span)
        t_hi = best[1] + t_span
        i_lo = max(0.0, best[0] - i_span)
        i_hi = best[0] + i_span

    idle, theta, err = best
    return CalibrationResult(
        config=PerfModelConfig(idle_power_w=idle, theta=theta),
        rmse=err,
        n_observations=len(obs),
    )

"""Cap-to-performance model (DESIGN.md §2; paper §3 premise).

The paper's premise is that meeting a node's power demand yields full
performance while capping below demand costs performance (compute-bound
units most of all).  RAPL meets a cap by lowering frequency and voltage;
with dynamic power roughly cubic in frequency and performance linear in it,
performance is a concave function of the granted dynamic power.  We model a
capped unit's *progress rate* (fraction of full speed) as::

    rate(cap, demand) = ((cap - idle) / (demand - idle)) ** (1 / theta)

for ``cap < demand``, else 1 — clipped to ``[min_rate, 1]``.  ``theta = 2``
gives the square-root power/performance curve typical of DVFS; ``theta = 1``
is the linear (harshest) model used as an ablation.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PerfModelConfig

__all__ = ["progress_rate"]


def progress_rate(
    cap_w: np.ndarray | float,
    demand_w: np.ndarray | float,
    config: PerfModelConfig | None = None,
) -> np.ndarray:
    """Progress rate of units given their caps and uncapped demands.

    Args:
        cap_w: per-unit power caps (W); scalar or array.
        demand_w: per-unit uncapped demands (W); same shape as ``cap_w``.
        config: model parameters; defaults to :class:`PerfModelConfig`.

    Returns:
        Array of rates in ``[min_rate, 1]``, broadcast over the inputs.
    """
    cfg = config or PerfModelConfig()
    cap = np.asarray(cap_w, dtype=np.float64)
    demand = np.asarray(demand_w, dtype=np.float64)
    if np.any(cap < 0) or np.any(demand < 0):
        raise ValueError("caps and demands must be >= 0")

    idle = cfg.idle_power_w
    # Units demanding no more than their cap (or no more than idle power —
    # nothing to throttle) run at full speed.
    headroom_cap = np.maximum(cap - idle, 0.0)
    headroom_demand = np.maximum(demand - idle, 1e-9)
    ratio = np.minimum(headroom_cap / headroom_demand, 1.0)
    rate = ratio ** (1.0 / cfg.theta)
    rate = np.where(demand <= np.maximum(cap, idle), 1.0, rate)
    return np.clip(rate, cfg.min_rate, 1.0)

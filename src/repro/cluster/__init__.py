"""Overprovisioned-cluster substrate: topology, physics, and the engine."""

from repro.cluster.calibration import (
    CalibrationResult,
    Observation,
    fit_perf_model,
    observe_rates,
)
from repro.cluster.cluster import Cluster
from repro.cluster.events import Event, EventLog
from repro.cluster.node import Node, Socket
from repro.cluster.perfmodel import progress_rate
from repro.cluster.simulator import Assignment, Simulation, SimulationResult

__all__ = [
    "Assignment",
    "CalibrationResult",
    "Cluster",
    "Event",
    "EventLog",
    "Node",
    "Observation",
    "Simulation",
    "SimulationResult",
    "Socket",
    "fit_perf_model",
    "observe_rates",
    "progress_rate",
]

"""Cluster topology: nodes, sockets, budget, and the two-halves layout.

The paper's experiments run "two clusters in parallel to reflect a
real-world cloud service utility" (§5.2) — two workloads, each on half of
the client nodes, under one shared cluster-wide power budget.
:class:`Cluster` owns the simulated hardware (all RAPL domains) and exposes
the vectorized physics/metering interface the simulator drives, plus the
half-split used by every pairing experiment.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ClusterSpec, RaplConfig
from repro.cluster.node import Node, Socket
from repro.powercap.rapl import RaplDomain
from repro.powercap.sysfs import SysfsPowercap

__all__ = ["Cluster"]


class Cluster:
    """The simulated overprovisioned system.

    Args:
        spec: topology and budget (defaults model the paper's testbed).
        rapl_config: shared RAPL behaviour for every domain.
        rng: measurement-noise source; child streams are spawned per socket
            so noise is independent across units yet fully reproducible.
    """

    def __init__(
        self,
        spec: ClusterSpec | None = None,
        rapl_config: RaplConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.spec = spec or ClusterSpec()
        self.rapl_config = rapl_config or RaplConfig()
        rng = rng if rng is not None else np.random.default_rng(0)
        socket_rngs = rng.spawn(self.spec.n_units)

        self.nodes: list[Node] = []
        self.sockets: list[Socket] = []
        unit_id = 0
        for node_id in range(self.spec.n_nodes):
            node_sockets = []
            for _ in range(self.spec.sockets_per_node):
                sock = Socket(
                    unit_id=unit_id,
                    node_id=node_id,
                    tdp_w=self.spec.tdp_w,
                    min_cap_w=self.spec.min_cap_w,
                    rapl_config=self.rapl_config,
                    rng=socket_rngs[unit_id],
                    idle_power_w=self.spec.idle_power_w,
                )
                node_sockets.append(sock)
                self.sockets.append(sock)
                unit_id += 1
            self.nodes.append(Node(node_id, node_sockets))
        #: Topology is fixed after construction; building the domain
        #: list per access shows up at fleet scale (it sits on the
        #: per-cycle caps/power read path).
        self._domains = [s.domain for s in self.sockets]

    @property
    def n_units(self) -> int:
        """Total power-capping units."""
        return self.spec.n_units

    @property
    def budget_w(self) -> float:
        """Cluster-wide power budget (W)."""
        return self.spec.budget_w

    @property
    def domains(self) -> list[RaplDomain]:
        """All RAPL domains in unit order (do not mutate)."""
        return self._domains

    def sysfs(self) -> SysfsPowercap:
        """A powercap-sysfs view over every domain (for sysfs-level clients)."""
        return SysfsPowercap(self.domains)

    def half_unit_ids(self, half: int) -> np.ndarray:
        """Global unit indices of one half of the cluster (whole nodes).

        Args:
            half: 0 for the first half of the nodes, 1 for the second.

        Returns:
            Index array; the two halves partition all units when the node
            count is even (an odd node count gives the larger share to
            half 1, matching "two clusters" as closely as possible).
        """
        if half not in (0, 1):
            raise ValueError(f"half must be 0 or 1, got {half}")
        split = self.spec.n_nodes // 2
        nodes = self.nodes[:split] if half == 0 else self.nodes[split:]
        if not nodes:
            raise ValueError("cluster too small to split into two halves")
        return np.asarray(
            [uid for node in nodes for uid in node.unit_ids], dtype=np.intp
        )

    def caps_w(self) -> np.ndarray:
        """Currently programmed per-unit caps (W)."""
        return np.asarray([d.cap_w for d in self.domains], dtype=np.float64)

    def true_power_w(self) -> np.ndarray:
        """True (hidden) per-unit power (W) — for accounting, not managers."""
        return np.asarray([d.power_w for d in self.domains], dtype=np.float64)

    def step_physics(self, demand_w: np.ndarray, dt_s: float) -> np.ndarray:
        """Advance every domain one interval under the given demands.

        Args:
            demand_w: per-unit uncapped demand (W), shape ``(n_units,)``.
            dt_s: interval length (s).

        Returns:
            True per-unit power at the end of the interval (W).
        """
        demand = np.asarray(demand_w, dtype=np.float64)
        if demand.shape != (self.n_units,):
            raise ValueError(
                f"demand shape {demand.shape} != ({self.n_units},)"
            )
        out = np.empty(self.n_units, dtype=np.float64)
        for i, dom in enumerate(self.domains):
            out[i] = dom.step(float(demand[i]), dt_s)
        return out

    def read_powers_w(self, dt_s: float) -> np.ndarray:
        """Noisy per-unit power readings from every meter (W)."""
        return np.asarray(
            [s.meter.read_power_w(dt_s) for s in self.sockets],
            dtype=np.float64,
        )

    def rebaseline_meters(self) -> None:
        """Re-anchor every meter's energy cursor (controller restart).

        See :meth:`~repro.powercap.rapl.PowerMeter.rebaseline`: without
        this, the first post-restart reading is charged all the energy
        accumulated during the outage and comes back wildly inflated.
        """
        for sock in self.sockets:
            sock.meter.rebaseline()

    def snapshot(self) -> dict:
        """JSON-able document of every domain and meter (for deterministic
        replay of simulations; a real cluster's state lives in hardware)."""
        return {
            "domains": [d.snapshot() for d in self.domains],
            "meters": [s.meter.snapshot() for s in self.sockets],
        }

    def restore(self, state: dict) -> None:
        """Overwrite every domain and meter with a snapshot's content."""
        domains = state["domains"]
        meters = state["meters"]
        if len(domains) != self.n_units or len(meters) != self.n_units:
            raise ValueError(
                f"snapshot holds {len(domains)}/{len(meters)} units, "
                f"cluster has {self.n_units}"
            )
        for dom, doc in zip(self.domains, domains):
            dom.restore(doc)
        for sock, doc in zip(self.sockets, meters):
            sock.meter.restore(doc)

    def __repr__(self) -> str:
        return (
            f"Cluster(nodes={self.spec.n_nodes}, "
            f"units={self.n_units}, budget_w={self.budget_w:.0f})"
        )

"""Node and socket objects of the overprovisioned system (paper §5.1).

A *unit* in the paper is "each part of a machine that supports power capping
individually" — on the evaluation platform, a socket.  :class:`Socket` pairs
one simulated RAPL domain with its power meter; :class:`Node` groups the
sockets of one dual-socket machine and is the granularity at which the
client daemon runs (one client per node reads and caps all of its sockets,
§4.3).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import RaplConfig
from repro.powercap.rapl import PowerMeter, RaplDomain

__all__ = ["Socket", "Node"]


class Socket:
    """One power-capping unit: a RAPL package domain plus its meter.

    Args:
        unit_id: global unit index within the cluster.
        node_id: owning node index.
        tdp_w: maximum power / highest cap (W).
        min_cap_w: lowest accepted cap (W).
        rapl_config: noise/lag/wrap behaviour of the domain.
        rng: measurement-noise source (one stream per socket).
        idle_power_w: power at rest (initial condition).
    """

    def __init__(
        self,
        unit_id: int,
        node_id: int,
        tdp_w: float,
        min_cap_w: float,
        rapl_config: RaplConfig,
        rng: np.random.Generator,
        idle_power_w: float = 12.0,
    ) -> None:
        self.unit_id = unit_id
        self.node_id = node_id
        self.domain = RaplDomain(
            name=f"package-{node_id}-{unit_id}",
            max_power_w=tdp_w,
            min_power_w=min_cap_w,
            config=rapl_config,
            initial_power_w=idle_power_w,
        )
        self.meter = PowerMeter(self.domain, rng)

    def __repr__(self) -> str:
        return (
            f"Socket(unit_id={self.unit_id}, node_id={self.node_id}, "
            f"cap_w={self.domain.cap_w:.1f})"
        )


class Node:
    """One compute node: a set of sockets managed by one client daemon.

    Args:
        node_id: node index within the cluster.
        sockets: this node's sockets, in socket order.
    """

    def __init__(self, node_id: int, sockets: list[Socket]) -> None:
        if not sockets:
            raise ValueError("a node needs at least one socket")
        self.node_id = node_id
        self.sockets = tuple(sockets)

    @property
    def unit_ids(self) -> tuple[int, ...]:
        """Global unit indices of this node's sockets."""
        return tuple(s.unit_id for s in self.sockets)

    def __repr__(self) -> str:
        return f"Node(node_id={self.node_id}, sockets={len(self.sockets)})"

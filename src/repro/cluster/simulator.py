"""Discrete-time simulation engine.

One step of the engine is one turn of the paper's control loop (§4.3,
default 1 s):

1. each workload publishes the uncapped *demand* of its sockets;
2. the RAPL domains advance physically — true power relaxes toward
   ``min(demand, cap)`` under the caps currently in effect;
3. workload progress advances at the rate the performance model grants
   under those caps (capped phases stretch);
4. the meters produce noisy power readings, the manager turns them into new
   caps, and the actuator programs the caps for the next interval.

The engine runs until every workload has completed its target number of
back-to-back runs, reproducing the paper's repeat-until-enough-samples
methodology, and records the artifact-style logs (telemetry + events).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.events import EventLog, NodeFailureEvent
from repro.cluster.perfmodel import progress_rate
from repro.core.config import (
    ClusterSpec,
    PerfModelConfig,
    RaplConfig,
    SimulationConfig,
)
from repro.core.dps import DPSManager
from repro.core.managers import PowerManager
from repro.powercap.actuator import CapActuator
from repro.powercap.faults import FaultConfig, FaultyMeter
from repro.safety import (
    BudgetEnvelope,
    BudgetGuard,
    InvariantContext,
    InvariantMonitor,
    SafetyConfig,
    last_readjust_grants,
)
from repro.telemetry.log import ResilienceEventLog, TelemetryLog
from repro.workloads.runtime import WorkloadExecution
from repro.workloads.spec import WorkloadSpec

__all__ = ["Simulation", "SimulationResult", "Assignment"]


@dataclass(frozen=True)
class Assignment:
    """One workload placed on a slice of the cluster.

    Attributes:
        spec: the workload.
        unit_ids: global unit indices of its cluster half.
    """

    spec: WorkloadSpec
    unit_ids: np.ndarray


@dataclass
class SimulationResult:
    """Everything a finished simulation produced.

    Attributes:
        executions: per-workload runtime state with completed-run records.
        telemetry: per-step traces (None unless recording was requested).
        events: structured run/violation events.
        steps: control-loop iterations executed.
        sim_time_s: simulated wall-clock duration.
        truncated: True if ``max_steps`` was hit before all targets.
        budget_w: the budget the manager was bound to.
        max_caps_sum_w: largest observed sum of caps (budget-respect check).
    """

    executions: list[WorkloadExecution]
    telemetry: TelemetryLog | None
    events: EventLog
    steps: int
    sim_time_s: float
    truncated: bool
    budget_w: float
    max_caps_sum_w: float
    durations: dict[str, float] = field(default_factory=dict)
    #: Total protocol bytes exchanged (0 unless the comm path was used).
    comm_bytes: int = 0
    #: Mean control-cycle turnaround (s; 0.0 unless the comm path was used).
    comm_turnaround_s: float = 0.0
    #: Checkpoint generations written (0 unless checkpointing was enabled).
    checkpoints_written: int = 0
    #: Journal records replayed by a resumed run (0 for cold starts).
    journal_replayed: int = 0
    #: Control cycle the manager state resumed at (None for cold starts).
    resumed_at_cycle: int | None = None
    #: Verified-actuation write retries that eventually succeeded.
    actuation_retries: int = 0
    #: Cap writes whose read-back verification exhausted the retry budget.
    actuation_verify_failures: int = 0
    #: Structured ``budget_*`` / ``invariant_violation`` events (None
    #: unless the safety envelope was enabled).
    safety_events: ResilienceEventLog | None = None
    #: Cycles whose worst-case committed power exceeded the budget.
    budget_excursions: int = 0
    #: Degradation-ladder rungs the budget guard took, by event kind.
    guard_rungs: dict[str, int] = field(default_factory=dict)

    def execution(self, name: str) -> WorkloadExecution:
        """The execution record of the named workload.

        Raises:
            KeyError: unknown workload name.
        """
        for e in self.executions:
            if e.spec.name == name:
                return e
        raise KeyError(
            f"no workload {name!r} in this simulation; "
            f"have {[e.spec.name for e in self.executions]}"
        )


class Simulation:
    """One configured experiment run.

    Args:
        cluster_spec: topology and budget.
        manager: the power manager under test (bound by :meth:`run`).
        assignments: workloads and the cluster slices they occupy; slices
            must not overlap.  Units in no slice stay at idle power.
        target_runs: completed runs required of *every* workload before the
            simulation ends.
        sim_config: step length, time scale, gap, and step limit.
        perf_config: cap-to-performance model.
        rapl_config: RAPL noise/lag behaviour.
        seed: master seed; every randomness consumer (sockets, workloads,
            manager) gets an independent child stream.
        record_telemetry: keep per-step traces (memory ~ steps x units).
        actuation_delay_steps: control intervals between a cap decision and
            it taking effect (1 models the networked client round trip).
            Ignored when ``use_comm`` is set (the service applies caps).
        use_comm: drive the control loop through the real server/client
            protocol (:mod:`repro.comm`) instead of calling the manager
            directly — readings travel as 3-byte messages (0.1 W
            quantization included) and the result carries the measured
            traffic/turnaround.  Not supported for demand-requiring
            managers (the oracle has no wire format for true demand).
        failures: scheduled node crash/recovery events.  While a node is
            down its units draw no power, its workload stalls, and its
            readings are dropouts (0.0 W).  Not supported together with
            ``use_comm`` (the TCP deploy layer owns its own failure
            semantics).
        fault_config: per-reading measurement-fault probabilities; every
            socket's meter is wrapped in a
            :class:`~repro.powercap.faults.FaultyMeter` when given.
        verify_actuation: read every programmed cap back and retry on
            mismatch (:class:`~repro.powercap.actuator.CapActuator`
            verify mode); verification events flow into the telemetry
            event channel, never exceptions.
        checkpoint_dir: when given, the manager runs wrapped in a
            :class:`~repro.recovery.controller.RecoverableController`
            that journals every cycle's inputs to
            ``checkpoint_dir/journal.log`` and writes durable snapshot
            generations there every ``checkpoint_every`` cycles.  Not
            supported together with ``use_comm`` (the comm server steps
            the manager directly, bypassing the journal).
        checkpoint_every: cycles between checkpoint generations (>= 1).
        resume: warm-restore the manager from the newest valid
            checkpoint in ``checkpoint_dir`` (replaying the journal
            tail) before the first cycle.  Requires ``checkpoint_dir``.
            The physics restart cold — resume preserves the *controller*
            state (filters, priorities, RNG stream), which keeps the
            budget guarantee from cycle 0 and skips re-convergence.
        safety: budget-safety envelope configuration.  When given, the
            run tracks the commanded/dispatched/applied cap views, gates
            every cap vector through the
            :class:`~repro.safety.guard.BudgetGuard` (worst-case
            committed power includes the actuator's in-flight pipeline
            and the domains' read-back caps), and runs the runtime
            invariant monitors.  Not supported together with
            ``use_comm`` (the comm server steps the manager and applies
            caps itself, bypassing the actuation boundary the guard
            gates).
    """

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        manager: PowerManager,
        assignments: list[Assignment],
        target_runs: int = 1,
        sim_config: SimulationConfig | None = None,
        perf_config: PerfModelConfig | None = None,
        rapl_config: RaplConfig | None = None,
        seed: int = 0,
        record_telemetry: bool = False,
        actuation_delay_steps: int = 0,
        use_comm: bool = False,
        failures: Sequence[NodeFailureEvent] = (),
        fault_config: FaultConfig | None = None,
        verify_actuation: bool = False,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 10,
        resume: bool = False,
        safety: SafetyConfig | None = None,
    ) -> None:
        if target_runs < 1:
            raise ValueError(f"target_runs must be >= 1, got {target_runs}")
        if not assignments:
            raise ValueError("at least one workload assignment is required")
        if use_comm and manager.requires_demand:
            raise ValueError(
                f"{manager.name} requires true demand, which the comm "
                "protocol does not carry"
            )
        if use_comm and failures:
            raise ValueError(
                "node-failure injection is not supported on the comm path; "
                "use the deploy layer's chaos schedule instead"
            )
        if use_comm and checkpoint_dir is not None:
            raise ValueError(
                "checkpointing is not supported on the comm path: the comm "
                "server steps the manager directly, bypassing the journal"
            )
        if use_comm and safety is not None:
            raise ValueError(
                "the safety envelope is not supported on the comm path: "
                "the comm server steps the manager and applies caps "
                "itself, bypassing the actuation boundary the guard gates"
            )
        if resume and checkpoint_dir is None:
            raise ValueError("resume requires checkpoint_dir")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        for nf in failures:
            if nf.node_id >= cluster_spec.n_nodes:
                raise ValueError(
                    f"failure schedules node {nf.node_id} but the cluster "
                    f"has {cluster_spec.n_nodes} nodes"
                )
        self.failures = tuple(failures)
        self.fault_config = fault_config
        self.cluster_spec = cluster_spec
        self.manager = manager
        self.sim_config = sim_config or SimulationConfig()
        self.perf_config = perf_config or PerfModelConfig()
        self.rapl_config = rapl_config or RaplConfig()
        self.target_runs = target_runs
        self.record_telemetry = record_telemetry
        self.actuation_delay_steps = actuation_delay_steps
        self.use_comm = use_comm
        self.seed = seed
        self.verify_actuation = verify_actuation
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.safety = safety

        # Validate the assignment slices partition-or-less the unit range.
        seen: set[int] = set()
        for a in assignments:
            ids = {int(u) for u in a.unit_ids}
            if not ids:
                raise ValueError(f"{a.spec.name}: empty unit assignment")
            if ids & seen:
                raise ValueError(
                    f"{a.spec.name}: unit assignment overlaps another workload"
                )
            if max(ids) >= cluster_spec.n_units or min(ids) < 0:
                raise ValueError(
                    f"{a.spec.name}: unit ids out of range "
                    f"[0, {cluster_spec.n_units})"
                )
            seen |= ids
        self.assignments = assignments

    def run(self) -> SimulationResult:
        """Execute the simulation to completion.

        Returns:
            A :class:`SimulationResult`; ``truncated`` is True (and a
            ``simulation_truncated`` event is logged) if the step limit was
            reached first.
        """
        rng = np.random.default_rng(self.seed)
        cluster_rng, manager_rng, *workload_rngs = rng.spawn(
            2 + len(self.assignments)
        )
        cluster = Cluster(self.cluster_spec, self.rapl_config, cluster_rng)
        sim_cfg = self.sim_config
        dt = sim_cfg.dt_s
        if self.fault_config is not None:
            # Spawned after the baseline streams so fault-free runs keep
            # their exact seed lineage.
            fault_rngs = rng.spawn(cluster.n_units)
            for sock, frng in zip(cluster.sockets, fault_rngs):
                sock.meter = FaultyMeter(sock.meter, self.fault_config, frng)

        executions = [
            WorkloadExecution(
                spec=a.spec,
                unit_ids=a.unit_ids,
                rng=wrng,
                time_scale=sim_cfg.time_scale,
                inter_run_gap_s=sim_cfg.inter_run_gap_s,
                idle_power_w=self.cluster_spec.idle_power_w,
                max_demand_w=self.cluster_spec.tdp_w,
                duration_jitter_std=sim_cfg.duration_jitter_std,
            )
            for a, wrng in zip(self.assignments, workload_rngs)
        ]

        self.manager.bind(
            n_units=cluster.n_units,
            budget_w=cluster.budget_w,
            max_cap_w=self.cluster_spec.tdp_w,
            min_cap_w=self.cluster_spec.min_cap_w,
            dt_s=dt,
            rng=manager_rng,
        )
        stepper = self.manager
        controller = None
        resumed_at: int | None = None
        if self.checkpoint_dir is not None:
            # Imported here: repro.recovery.controller imports the manager
            # registry, and the plain simulator path must stay light.
            from repro.recovery.checkpoint import CheckpointStore, CycleJournal
            from repro.recovery.controller import RecoverableController

            controller = RecoverableController(
                self.manager,
                CheckpointStore(self.checkpoint_dir),
                CycleJournal(self.checkpoint_dir / "journal.log"),
                checkpoint_every=self.checkpoint_every,
            )
            if self.resume and controller.resume():
                resumed_at = controller.cycle
            stepper = controller

        actuator = CapActuator(
            cluster.domains,
            delay_steps=self.actuation_delay_steps,
            verify=self.verify_actuation,
        )
        actuator.issue(np.asarray(self.manager.caps))
        actuator.flush()

        envelope: BudgetEnvelope | None = None
        guard: BudgetGuard | None = None
        monitor: InvariantMonitor | None = None
        safety_events: ResilienceEventLog | None = None
        clock = [0.0]  # Mutable cycle clock the rescale hook reads.
        if self.safety is not None:
            safety_events = ResilienceEventLog()
            envelope = BudgetEnvelope(
                cluster.n_units, cluster.budget_w, self.cluster_spec.tdp_w
            )
            guard = BudgetGuard(
                envelope,
                min_cap_w=self.cluster_spec.min_cap_w,
                events=safety_events,
                dry_run=not self.safety.guard,
            )
            if self.safety.invariant_mode != "off":
                monitor = InvariantMonitor(
                    mode=self.safety.invariant_mode,
                    sample_every=self.safety.sample_every,
                    events=safety_events,
                    raise_on_violation=self.safety.raise_on_violation,
                )
            # The simulator can read the hardware back directly, so the
            # applied view starts from the domains' real caps instead of
            # the pessimistic uncapped prior.
            envelope.record_applied(slice(None), cluster.caps_w())
            envelope.record_dispatched(
                slice(None), np.asarray(self.manager.caps)
            )

            def emit_rescaled(name: str, over_w: float) -> None:
                safety_events.emit(
                    clock[0],
                    "budget_rescaled",
                    detail=f"manager={name} overshoot={over_w:.3f}W",
                )

            hook_seen: set[int] = set()
            node: object | None = stepper
            while node is not None and id(node) not in hook_seen:
                hook_seen.add(id(node))
                if getattr(node, "on_budget_rescaled", False) is None:
                    node.on_budget_rescaled = emit_rescaled
                node = (
                    getattr(node, "manager", None)
                    or getattr(node, "inner", None)
                )

        server = None
        cycle_reports = []
        if self.use_comm:
            from repro.comm.network import NetworkModel
            from repro.comm.service import PowerClient, PowerServer

            server = PowerServer(
                self.manager,
                [PowerClient(node) for node in cluster.nodes],
                NetworkModel(),
            )

        telemetry = (
            TelemetryLog(cluster.n_units) if self.record_telemetry else None
        )

        def drain_actuator(at_s: float) -> None:
            """Move pending verification events into the telemetry channel."""
            if telemetry is not None:
                for kind, unit, detail in actuator.events:
                    telemetry.events.emit(at_s, kind, unit=unit, detail=detail)
            actuator.events.clear()

        drain_actuator(0.0)
        events = EventLog()
        for e in executions:
            events.emit(0.0, "run_started", workload=e.spec.name)

        demand = np.full(
            cluster.n_units, self.cluster_spec.idle_power_w, dtype=np.float64
        )
        completed_before = {e.spec.name: 0 for e in executions}
        max_caps_sum = float(np.sum(cluster.caps_w()))
        now = 0.0
        steps = 0
        truncated = False
        down_nodes: set[int] = set()
        pending_failures = sorted(self.failures, key=lambda f: f.fail_at_s)
        fail_fired = [False] * len(pending_failures)
        recover_fired = [False] * len(pending_failures)
        in_safe_mode = bool(getattr(self.manager, "safe_mode", False))

        while any(e.runs_completed < self.target_runs for e in executions):
            if steps >= sim_cfg.max_steps:
                truncated = True
                events.emit(now, "simulation_truncated")
                break

            # 0. Scheduled node failures/recoveries crossing this step.
            for idx, nf in enumerate(pending_failures):
                if not fail_fired[idx] and nf.fail_at_s <= now:
                    fail_fired[idx] = True
                    down_nodes.add(nf.node_id)
                    for sock in cluster.nodes[nf.node_id].sockets:
                        sock.domain.power_off()
                    events.emit(
                        now, "node_failed", detail=f"node={nf.node_id}"
                    )
                    if telemetry is not None:
                        telemetry.events.emit(
                            now, "node_failed", node_id=nf.node_id
                        )
                elif (
                    fail_fired[idx]
                    and not recover_fired[idx]
                    and nf.recover_at_s is not None
                    and nf.recover_at_s <= now
                ):
                    recover_fired[idx] = True
                    down_nodes.discard(nf.node_id)
                    events.emit(
                        now, "node_recovered", detail=f"node={nf.node_id}"
                    )
                    if telemetry is not None:
                        telemetry.events.emit(
                            now, "node_recovered", node_id=nf.node_id
                        )
            down_units = (
                np.asarray(
                    [
                        uid
                        for nid in down_nodes
                        for uid in cluster.nodes[nid].unit_ids
                    ],
                    dtype=np.intp,
                )
                if down_nodes
                else None
            )

            # 1. Demands from every workload; unassigned units idle.
            demand.fill(self.cluster_spec.idle_power_w)
            for e in executions:
                demand[e.unit_ids] = e.demand()
            if down_units is not None:
                demand[down_units] = 0.0  # A dead machine draws nothing.

            # 2. Physics under the caps currently in effect.
            caps_in_effect = cluster.caps_w()
            max_caps_sum = max(max_caps_sum, float(caps_in_effect.sum()))
            true_power = cluster.step_physics(demand, dt)
            now += dt
            steps += 1

            # 3. Progress under those caps; a dead node's workload stalls.
            rates = progress_rate(caps_in_effect, demand, self.perf_config)
            if down_units is not None:
                rates[down_units] = 0.0
            for e in executions:
                e.advance(
                    rates[e.unit_ids], true_power[e.unit_ids], dt, now
                )
                if e.runs_completed > completed_before[e.spec.name]:
                    completed_before[e.spec.name] = e.runs_completed
                    events.emit(
                        now,
                        "run_completed",
                        workload=e.spec.name,
                        detail=f"run {e.runs_completed}",
                    )

            # 4. Measure, decide, actuate — directly or over the wire.
            if server is not None:
                cycle_reports.append(server.control_cycle(dt))
                readings = server.last_readings
                new_caps = np.asarray(self.manager.caps)
            else:
                readings = cluster.read_powers_w(dt)
                if down_units is not None:
                    # A dead host's telemetry is a dropout, not a number.
                    readings[down_units] = 0.0
                new_caps = stepper.step(
                    readings,
                    demand if self.manager.requires_demand else None,
                )
                if envelope is not None:
                    assert guard is not None
                    clock[0] = now
                    # Refresh the applied view from the hardware before
                    # judging the candidate: the domains' current caps
                    # are what the coming interval is committed to until
                    # the new dispatch lands.
                    envelope.record_applied(slice(None), cluster.caps_w())
                    envelope.record_commanded(new_caps)
                    decision = guard.enforce(
                        new_caps,
                        now=now,
                        pending=actuator.pending,
                        grants_w=last_readjust_grants(stepper),
                    )
                    new_caps = decision.caps_w
                actuator.issue(new_caps)
                if envelope is not None:
                    envelope.record_dispatched(slice(None), new_caps)
                drain_actuator(now)
                if monitor is not None:
                    monitor.run(
                        InvariantContext(
                            budget_w=cluster.budget_w,
                            min_cap_w=self.cluster_spec.min_cap_w,
                            max_cap_w=self.cluster_spec.tdp_w,
                            caps_w=new_caps,
                            readings_w=readings,
                            manager=stepper,
                        ),
                        now=now,
                    )

            safe = bool(getattr(self.manager, "safe_mode", False))
            if safe != in_safe_mode:
                kind = "safe_mode_entered" if safe else "safe_mode_exited"
                events.emit(now, kind)
                if telemetry is not None:
                    telemetry.events.emit(now, kind)
                in_safe_mode = safe

            if telemetry is not None:
                priority = (
                    self.manager.priority
                    if isinstance(self.manager, DPSManager)
                    else None
                )
                telemetry.record(
                    now, true_power, readings, caps_in_effect, priority
                )
            if float(new_caps.sum()) > cluster.budget_w * (1 + 1e-6):
                events.emit(
                    now,
                    "budget_violation",
                    detail=f"sum={float(new_caps.sum()):.1f}",
                )

        durations = {}
        for e in executions:
            if e.records:
                durations[e.spec.name] = e.mean_duration_s()
        # Per-unit suspect-reading events from a resilient manager ride
        # along with the telemetry traces.
        mgr_events = getattr(self.manager, "events", None)
        if telemetry is not None and isinstance(
            mgr_events, ResilienceEventLog
        ):
            telemetry.events.extend(mgr_events)
        if telemetry is not None and controller is not None:
            telemetry.events.extend(controller.events)
        if telemetry is not None and safety_events is not None:
            telemetry.events.extend(safety_events)
        comm_bytes = sum(r.bytes_up + r.bytes_down for r in cycle_reports)
        comm_turnaround = (
            float(np.mean([r.turnaround_s for r in cycle_reports]))
            if cycle_reports
            else 0.0
        )
        return SimulationResult(
            executions=executions,
            telemetry=telemetry,
            events=events,
            steps=steps,
            sim_time_s=now,
            truncated=truncated,
            budget_w=cluster.budget_w,
            max_caps_sum_w=max_caps_sum,
            durations=durations,
            comm_bytes=comm_bytes,
            comm_turnaround_s=comm_turnaround,
            checkpoints_written=(
                len(controller.events.of_kind("checkpoint_written"))
                if controller is not None
                else 0
            ),
            journal_replayed=(
                controller.replayed if controller is not None else 0
            ),
            resumed_at_cycle=resumed_at,
            actuation_retries=actuator.retries,
            actuation_verify_failures=actuator.verify_failures,
            safety_events=safety_events,
            budget_excursions=guard.excursions if guard is not None else 0,
            guard_rungs=dict(guard.rungs_taken) if guard is not None else {},
        )

"""Budget-safety envelope: end-to-end cap accounting and runtime guards.

The §6 guarantee — the cluster never exceeds its power budget — is easy
to state at the decision point (:class:`~repro.core.managers.PowerManager`
rescales over-allocating subclasses) but the *system* applies caps through
a longer path: protocol clamps and 0.1 W quantization at dispatch, an
asynchronous client-side apply, an in-flight actuator pipeline, and
quarantined nodes whose hardware silently holds whatever cap it last
received.  Each of those can diverge from the manager's intent; none of
them used to be reconciled.

This package closes the loop:

* :class:`~repro.safety.envelope.BudgetEnvelope` tracks the three cap
  views the system already produces — *commanded* (manager output),
  *dispatched* (post-clamp wire value), *applied* (read-back / client
  acknowledgement) — and computes the worst-case committed power of the
  coming interval.
* :class:`~repro.safety.guard.BudgetGuard` sits at the actuation boundary
  and, when committed power would exceed the budget, walks a graded
  degradation ladder: shave the most recent readjust grants, scale the
  reachable caps down proportionally above their floors, and finally drop
  to the emergency constant cap (forced safe mode).
* :class:`~repro.safety.invariants.InvariantMonitor` runs a pluggable
  registry of runtime invariants (budget conservation, cap bounds,
  readjust water-fill conservation, finite Kalman state, snapshot/restore
  idempotence) every cycle in strict mode or on a sampling cadence in
  deployment.

Every enforcement action and violation is a structured ``budget_*`` /
``invariant_violation`` telemetry event, so an excursion is detected,
bounded, and visible — never silent.
"""

from repro.safety.config import SafetyConfig
from repro.safety.envelope import BudgetEnvelope, CommittedPower
from repro.safety.guard import BudgetGuard, GuardDecision, last_readjust_grants
from repro.safety.invariants import (
    Invariant,
    InvariantContext,
    InvariantMonitor,
    InvariantViolation,
    InvariantViolationError,
    available_invariants,
    default_invariants,
    register_invariant,
)

__all__ = [
    "SafetyConfig",
    "BudgetEnvelope",
    "CommittedPower",
    "BudgetGuard",
    "GuardDecision",
    "last_readjust_grants",
    "Invariant",
    "InvariantContext",
    "InvariantMonitor",
    "InvariantViolation",
    "InvariantViolationError",
    "available_invariants",
    "default_invariants",
    "register_invariant",
]

"""Per-unit cap-view accounting: commanded, dispatched, applied.

The control plane produces three per-unit cap values every cycle that can
all legitimately differ:

* **commanded** — what the manager's decision step returned;
* **dispatched** — what actually went on the wire: clamped into the
  protocol's value range and quantized to its 0.1 W grid;
* **applied** — what the hardware is confirmed to hold: an actuator
  read-back, or the implicit acknowledgement of a client that answered a
  POLL *after* programming its previous CAPS batch.

:class:`BudgetEnvelope` keeps all three and answers the question the
budget guarantee actually depends on: *what is the worst-case power the
cluster is committed to over the coming interval?*  A reachable unit may
still be running under its previously applied cap until the new dispatch
lands, so it counts at the max of old and new; an in-flight actuator
command counts at the max of every queued value; a quarantined unit's
hardware holds whatever it last received, so it counts at its hold-last
value — or at TDP under the pessimistic ``assume-tdp`` accounting.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

__all__ = ["BudgetEnvelope", "CommittedPower"]


class CommittedPower(NamedTuple):
    """Worst-case committed power of one cycle.

    Attributes:
        worst_case_w: per-unit worst case over the coming interval — the
            max of every cap value that could still be in effect (old
            applied, dispatched, in-flight, candidate; fallback value for
            unreachable units).
        steady_w: per-unit value once this cycle's dispatch has landed on
            every reachable unit (candidate caps for reachable units,
            fallback values for unreachable ones) — the quantity the
            guard can actually enforce against the budget.
    """

    worst_case_w: np.ndarray
    steady_w: np.ndarray

    @property
    def worst_case_total_w(self) -> float:
        """Cluster-wide worst-case committed power (W)."""
        return float(self.worst_case_w.sum())

    @property
    def steady_total_w(self) -> float:
        """Cluster-wide steady-state committed power (W)."""
        return float(self.steady_w.sum())


class BudgetEnvelope:
    """Tracks the three cap views and computes committed power.

    Args:
        n_units: number of power-capping units.
        budget_w: cluster-wide power budget (W).
        max_cap_w: per-unit maximum cap (TDP) — also the pessimistic
            prior for a unit whose applied cap has never been observed
            (hardware starts uncapped).
    """

    def __init__(self, n_units: int, budget_w: float, max_cap_w: float):
        if n_units < 1:
            raise ValueError(f"n_units must be >= 1, got {n_units}")
        if budget_w <= 0:
            raise ValueError(f"budget_w must be > 0, got {budget_w}")
        if max_cap_w <= 0:
            raise ValueError(f"max_cap_w must be > 0, got {max_cap_w}")
        self.n_units = n_units
        self.budget_w = float(budget_w)
        self.max_cap_w = float(max_cap_w)
        #: Manager output of the most recent cycle (NaN before any).
        self.commanded_w = np.full(n_units, np.nan)
        #: Most recent post-clamp wire value per unit (NaN before any).
        self.dispatched_w = np.full(n_units, np.nan)
        #: Last confirmed hardware cap per unit.  Pessimistic prior:
        #: until a read-back or acknowledgement arrives, a unit's
        #: hardware must be assumed uncapped (TDP).
        self.applied_w = np.full(n_units, max_cap_w)

    # ------------------------------------------------------------------
    # View recording.
    # ------------------------------------------------------------------

    def record_commanded(self, caps_w: np.ndarray) -> None:
        """Record the manager's decision for this cycle."""
        self.commanded_w = self._validated(caps_w).copy()

    def record_dispatched(
        self, units: slice | np.ndarray, values_w: np.ndarray | float
    ) -> None:
        """Record post-clamp wire values for a subset of units."""
        self.dispatched_w[units] = values_w

    def record_applied(
        self, units: slice | np.ndarray, values_w: np.ndarray | float
    ) -> None:
        """Record confirmed hardware caps (read-back) for a subset."""
        self.applied_w[units] = values_w

    def confirm_applied(self, units: slice | np.ndarray) -> None:
        """Promote the dispatched view to applied for a subset of units.

        The deploy client programs a CAPS batch before answering its next
        POLL, so a successful poll acknowledges the previous dispatch.
        Units never dispatched to keep their current applied value.
        """
        dispatched = self.dispatched_w[units]
        known = np.isfinite(dispatched)
        applied = self.applied_w[units]
        self.applied_w[units] = np.where(known, dispatched, applied)

    # ------------------------------------------------------------------
    # Live membership (arbiter-level envelopes where one unit is one
    # shard and the fleet can grow or shrink while running).
    # ------------------------------------------------------------------

    def append_unit(
        self,
        applied_w: float | None = None,
        dispatched_w: float | None = None,
        commanded_w: float | None = None,
    ) -> int:
        """Grow the ledger by one unit; returns the new unit's index.

        Views default to the cold-start prior (``applied = max_cap_w``,
        the others NaN).  An admission that *knows* the joining unit's
        hardware state (the HELLO/ADMIT contract pins a joining shard at
        its floor before it is counted) should pass that value so the
        new unit is not booked at TDP.
        """
        self.n_units += 1
        self.commanded_w = np.append(
            self.commanded_w,
            np.nan if commanded_w is None else float(commanded_w),
        )
        self.dispatched_w = np.append(
            self.dispatched_w,
            np.nan if dispatched_w is None else float(dispatched_w),
        )
        self.applied_w = np.append(
            self.applied_w,
            self.max_cap_w if applied_w is None else float(applied_w),
        )
        return self.n_units - 1

    def remove_unit(self, index: int) -> None:
        """Drop one unit from the ledger (a drained shard's budget is
        reclaimed only after its final frozen summary — by then the unit
        holds no power the envelope needs to account for)."""
        if self.n_units <= 1:
            raise ValueError("cannot remove the last unit")
        if not 0 <= index < self.n_units:
            raise ValueError(
                f"unit index {index} out of range [0, {self.n_units})"
            )
        self.n_units -= 1
        self.commanded_w = np.delete(self.commanded_w, index)
        self.dispatched_w = np.delete(self.dispatched_w, index)
        self.applied_w = np.delete(self.applied_w, index)

    # ------------------------------------------------------------------
    # Committed-power accounting.
    # ------------------------------------------------------------------

    def assess(
        self,
        candidate_w: np.ndarray | None = None,
        unreachable: np.ndarray | None = None,
        assume_tdp: bool = False,
        pending: Sequence[np.ndarray] = (),
    ) -> CommittedPower:
        """Compute this cycle's committed power under a candidate dispatch.

        Args:
            candidate_w: caps about to be dispatched to reachable units
                (the commanded view is used when omitted).
            unreachable: boolean mask of units whose client is
                quarantined — no dispatch can reach them this cycle.
            assume_tdp: count unreachable units at TDP instead of their
                hold-last value (pessimistic accounting for hardware
                whose applied state may be stale).
            pending: in-flight actuator command vectors (issued, not yet
                applied); each unit counts at the max of all of them.

        Returns:
            The per-unit worst-case and steady-state breakdown.
        """
        if candidate_w is None:
            candidate_w = self.commanded_w
        candidate = self._validated(candidate_w)
        if unreachable is None:
            unreachable = np.zeros(self.n_units, dtype=bool)
        else:
            unreachable = np.asarray(unreachable, dtype=bool)
            if unreachable.shape != (self.n_units,):
                raise ValueError(
                    f"unreachable shape {unreachable.shape} != "
                    f"({self.n_units},)"
                )

        # Hold-last value: the best knowledge of what an out-of-reach
        # unit's hardware holds — its confirmed cap, or the dispatch it
        # may have programmed just before its daemon died.
        held = np.where(
            np.isfinite(self.dispatched_w),
            np.maximum(self.applied_w, self.dispatched_w),
            self.applied_w,
        )
        fallback = (
            np.full(self.n_units, self.max_cap_w) if assume_tdp else held
        )

        worst = np.maximum(held, candidate)
        for caps in pending:
            queued = np.asarray(caps, dtype=np.float64)
            if queued.shape != (self.n_units,):
                raise ValueError(
                    f"pending command shape {queued.shape} != "
                    f"({self.n_units},)"
                )
            worst = np.maximum(worst, queued)
        worst = np.where(unreachable, np.maximum(fallback, held), worst)

        steady = np.where(unreachable, fallback, candidate)
        return CommittedPower(worst_case_w=worst, steady_w=steady)

    def _validated(self, caps_w: np.ndarray) -> np.ndarray:
        caps = np.asarray(caps_w, dtype=np.float64)
        if caps.shape != (self.n_units,):
            raise ValueError(
                f"caps shape {caps.shape} != ({self.n_units},)"
            )
        return caps

    # ------------------------------------------------------------------
    # Crash-recovery state protocol (the envelope rides in snapshots so a
    # warm-restarted controller keeps its applied-view knowledge).
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able document of the three view vectors."""
        from repro.recovery.state import encode_array

        return {
            "commanded": encode_array(self.commanded_w),
            "dispatched": encode_array(self.dispatched_w),
            "applied": encode_array(self.applied_w),
        }

    def restore(self, state: dict) -> None:
        """Overwrite the view vectors with a snapshot's content."""
        from repro.recovery.state import decode_array

        for name, attr in (
            ("commanded", "commanded_w"),
            ("dispatched", "dispatched_w"),
            ("applied", "applied_w"),
        ):
            arr = decode_array(state[name])
            if arr.shape != (self.n_units,):
                raise ValueError(
                    f"snapshot {name} shape {arr.shape} != "
                    f"({self.n_units},)"
                )
            setattr(self, attr, arr)

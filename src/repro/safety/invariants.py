"""Pluggable runtime invariant monitors.

The repo's correctness rests on a handful of properties that were only
ever *implicit* — enforced by tests at development time, assumed at run
time.  This module turns them into explicit, observable runtime checks:

* **budget-conservation** — the caps about to be actuated sum to at most
  the cluster budget;
* **cap-bounds** — every cap is finite and inside ``[min_cap, max_cap]``
  (modulo the protocol's quantization grid);
* **readjust-conservation** — the water-fill never hands out more watts
  than the leftover budget and never shrinks a high-priority unit's cap;
* **finite-kalman** — every Kalman filter in the manager stack holds
  finite estimates and positive, finite variances;
* **snapshot-idempotence** — ``restore(snapshot())`` into a fresh
  instance reproduces the snapshot bit-for-bit (the crash-recovery
  contract).

Monitors run in one of three modes (:class:`~repro.safety.config.
SafetyConfig`): ``strict`` checks every cycle and raises — the test /
chaos-run posture, where a violated invariant must fail the run loudly;
``sampling`` checks every N-th cycle and only emits
``invariant_violation`` events — the deployment posture, where the
control loop must keep running; ``off`` disables everything.

The registry is pluggable: :func:`register_invariant` adds a custom
:class:`Invariant`, and an :class:`InvariantMonitor` can be built from
any subset of names.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.log import ResilienceEventLog

__all__ = [
    "Invariant",
    "InvariantContext",
    "InvariantMonitor",
    "InvariantViolation",
    "InvariantViolationError",
    "available_invariants",
    "default_invariants",
    "register_invariant",
]

#: Relative tolerance for budget comparisons (matches the manager's own
#: invariant) plus an absolute quantization allowance per unit.
_REL_TOL = 1e-9
_QUANTUM_W = 0.05  # Half the protocol's 0.1 W wire grid.


@dataclass(frozen=True)
class InvariantContext:
    """Everything one invariant sweep may inspect.

    Attributes:
        budget_w: cluster-wide power budget (W).
        min_cap_w / max_cap_w: per-unit cap range.
        caps_w: the cap vector at the actuation boundary (post-guard).
        readings_w: the reading vector the manager consumed (optional).
        manager: the manager stack that produced the caps (optional).
        quantized: True when ``caps_w`` has passed the wire quantizer,
            widening bound checks by the 0.1 W grid.
    """

    budget_w: float
    min_cap_w: float
    max_cap_w: float
    caps_w: np.ndarray | None = None
    readings_w: np.ndarray | None = None
    manager: object | None = None
    quantized: bool = False


@dataclass(frozen=True)
class InvariantViolation:
    """One failed check: the invariant's name and what it saw."""

    name: str
    detail: str


class InvariantViolationError(AssertionError):
    """Raised in strict mode when a runtime invariant fails."""

    def __init__(self, violations: list[InvariantViolation]):
        self.violations = violations
        super().__init__(
            "; ".join(f"{v.name}: {v.detail}" for v in violations)
        )


class Invariant(ABC):
    """One runtime correctness property.

    Attributes:
        name: registry key.
        expensive: True for checks whose cost is non-trivial per cycle
            (they still run on every *sweep*; sampling mode spaces the
            sweeps out).
    """

    name = ""
    expensive = False

    @abstractmethod
    def check(self, ctx: InvariantContext) -> str | None:
        """Return a violation detail string, or None when satisfied."""


def _walk_manager_stack(manager: object | None):
    """Yield each member of a (possibly wrapped) manager stack once."""
    seen: set[int] = set()
    node = manager
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        yield node
        node = getattr(node, "manager", None) or getattr(node, "inner", None)


class BudgetConservation(Invariant):
    """Actuated caps sum to at most the cluster budget."""

    name = "budget-conservation"

    def check(self, ctx: InvariantContext) -> str | None:
        if ctx.caps_w is None:
            return None
        total = float(np.sum(ctx.caps_w))
        allowance = ctx.budget_w * _REL_TOL + (
            _QUANTUM_W * len(ctx.caps_w) if ctx.quantized else 0.0
        )
        if total > ctx.budget_w + allowance:
            return (
                f"caps sum {total:.6f} W exceeds budget "
                f"{ctx.budget_w:.6f} W"
            )
        return None


class CapBounds(Invariant):
    """Every cap is finite and inside the per-unit range."""

    name = "cap-bounds"

    def check(self, ctx: InvariantContext) -> str | None:
        if ctx.caps_w is None:
            return None
        caps = np.asarray(ctx.caps_w, dtype=np.float64)
        if not np.all(np.isfinite(caps)):
            bad = np.flatnonzero(~np.isfinite(caps))
            return f"non-finite caps at units {bad.tolist()}"
        slack = _QUANTUM_W if ctx.quantized else ctx.max_cap_w * _REL_TOL
        lo = np.flatnonzero(caps < ctx.min_cap_w - slack)
        hi = np.flatnonzero(caps > ctx.max_cap_w + slack)
        if lo.size:
            return (
                f"caps below floor {ctx.min_cap_w} W at units {lo.tolist()}"
            )
        if hi.size:
            return (
                f"caps above ceiling {ctx.max_cap_w} W at units {hi.tolist()}"
            )
        return None


class ReadjustConservation(Invariant):
    """The water-fill hands out at most the leftover and never shrinks a
    high-priority unit (checked from the DPS step introspection)."""

    name = "readjust-conservation"

    def check(self, ctx: InvariantContext) -> str | None:
        for node in _walk_manager_stack(ctx.manager):
            info = getattr(node, "last_info", None)
            if info is None or not hasattr(info, "grants_w"):
                continue
            if info.restored:
                return None  # Restore pass: readjust was a no-op.
            pre = np.asarray(info.stateless_caps_w, dtype=np.float64)
            post = np.asarray(info.caps_w, dtype=np.float64)
            budget = getattr(node, "budget_w", ctx.budget_w)
            tol = budget * _REL_TOL + 1e-6
            leftover = max(budget - float(pre.sum()), 0.0)
            handed = float(post.sum()) - float(pre.sum())
            if handed > leftover + tol:
                return (
                    f"readjust handed out {handed:.6f} W with only "
                    f"{leftover:.6f} W leftover"
                )
            if leftover > tol:  # Water-fill branch: grants only add.
                shrunk = np.flatnonzero(
                    info.priority & (post < pre - 1e-6)
                )
                if shrunk.size:
                    return (
                        "water-fill shrank high-priority units "
                        f"{shrunk.tolist()}"
                    )
            return None
        return None


class FiniteKalman(Invariant):
    """Every Kalman bank in the stack holds finite state."""

    name = "finite-kalman"

    def check(self, ctx: InvariantContext) -> str | None:
        for node in _walk_manager_stack(ctx.manager):
            bank = getattr(node, "_kalman", None)
            if bank is None:
                continue
            estimate = getattr(bank, "estimate", None)
            variance = getattr(bank, "variance", None)
            if estimate is not None and not np.all(np.isfinite(estimate)):
                bad = np.flatnonzero(~np.isfinite(estimate))
                return f"non-finite Kalman estimate at units {bad.tolist()}"
            if variance is not None and (
                not np.all(np.isfinite(variance)) or np.any(variance <= 0)
            ):
                bad = np.flatnonzero(
                    ~np.isfinite(variance) | (variance <= 0)
                )
                return (
                    f"invalid Kalman variance at units {bad.tolist()}"
                )
        return None


class SnapshotIdempotence(Invariant):
    """``restore(snapshot())`` into a fresh instance reproduces the
    snapshot (the crash-recovery contract), checked live."""

    name = "snapshot-idempotence"
    expensive = True

    def check(self, ctx: InvariantContext) -> str | None:
        manager = None
        for node in _walk_manager_stack(ctx.manager):
            if hasattr(node, "snapshot") and hasattr(node, "_decide"):
                manager = node
                break
        if manager is None:
            return None
        from repro.core.managers import create_manager

        doc = manager.snapshot()
        try:
            fresh = create_manager(manager.name)
            fresh.restore(doc)
            redoc = fresh.snapshot()
        except (KeyError, TypeError, ValueError):
            # Non-default composition (e.g. a resilient wrapper around a
            # non-DPS inner) cannot be rebuilt from the registry without
            # its constructor arguments — not checkable here.
            return None
        a = json.dumps(doc, sort_keys=True)
        b = json.dumps(redoc, sort_keys=True)
        if a != b:
            return (
                f"manager {manager.name!r} snapshot is not reproduced by "
                "restore into a fresh instance"
            )
        return None


class ShardLeaseConservation(Invariant):
    """The arbiter's worst-case committed power — live shards at their
    leases plus dark shards at their last confirmed commitments — never
    exceeds the global budget (checked from the arbiter's introspection
    surface; a plain manager stack has none and passes vacuously)."""

    name = "shard-lease-conservation"

    def check(self, ctx: InvariantContext) -> str | None:
        for node in _walk_manager_stack(ctx.manager):
            worst = getattr(node, "shard_worst_case_w", None)
            if worst is None:
                continue
            budget = float(getattr(node, "budget_w", ctx.budget_w))
            tol = budget * _REL_TOL + 1e-6
            if float(worst) > budget + tol:
                return (
                    f"shard worst-case committed {float(worst):.6f} W "
                    f"exceeds global budget {budget:.6f} W"
                )
            steady = getattr(node, "shard_steady_committed_w", None)
            if steady is not None and float(steady) > budget + tol:
                return (
                    f"shard steady committed {float(steady):.6f} W "
                    f"exceeds global budget {budget:.6f} W"
                )
            return None
        return None


_REGISTRY: dict[str, Invariant] = {}


def register_invariant(invariant: Invariant) -> Invariant:
    """Add an invariant to the registry (name must be unique)."""
    if not invariant.name:
        raise ValueError(
            f"{type(invariant).__name__} must define a non-empty name"
        )
    if invariant.name in _REGISTRY:
        raise ValueError(f"duplicate invariant name {invariant.name!r}")
    _REGISTRY[invariant.name] = invariant
    return invariant


for _inv in (
    BudgetConservation(),
    CapBounds(),
    ReadjustConservation(),
    FiniteKalman(),
    SnapshotIdempotence(),
    ShardLeaseConservation(),
):
    register_invariant(_inv)


def available_invariants() -> tuple[str, ...]:
    """Names of all registered invariants, sorted."""
    return tuple(sorted(_REGISTRY))


def default_invariants() -> tuple[Invariant, ...]:
    """All registered invariants, in registration order."""
    return tuple(_REGISTRY.values())


@dataclass
class InvariantMonitor:
    """Runs a set of invariants on a strict or sampling cadence.

    Attributes:
        mode: ``"strict"`` (every cycle, raises), ``"sampling"`` (every
            ``sample_every``-th cycle, events only), or ``"off"``.
        sample_every: sweep spacing in sampling mode.
        invariants: the checks to run (the full registry by default).
        events: sink for ``invariant_violation`` events.
        raise_on_violation: overrides the mode's default raising
            behaviour when not None.
    """

    mode: str = "strict"
    sample_every: int = 16
    invariants: tuple[Invariant, ...] | None = None
    events: ResilienceEventLog | None = None
    raise_on_violation: bool | None = None
    cycles_seen: int = field(default=0, init=False)
    sweeps_run: int = field(default=0, init=False)
    violations: list[InvariantViolation] = field(
        default_factory=list, init=False
    )

    def __post_init__(self) -> None:
        if self.mode not in ("strict", "sampling", "off"):
            raise ValueError(f"unknown monitor mode {self.mode!r}")
        if self.sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {self.sample_every}"
            )
        if self.invariants is None:
            self.invariants = default_invariants()
        if self.events is None:
            self.events = ResilienceEventLog()
        if self.raise_on_violation is None:
            self.raise_on_violation = self.mode == "strict"

    def run(
        self, ctx: InvariantContext, now: float
    ) -> list[InvariantViolation]:
        """Run one cycle's sweep (or skip it, per the cadence).

        Raises:
            InvariantViolationError: a check failed and this monitor
                raises on violation.
        """
        if self.mode == "off":
            return []
        self.cycles_seen += 1
        if self.mode == "sampling" and (
            (self.cycles_seen - 1) % self.sample_every
        ):
            return []
        self.sweeps_run += 1
        found: list[InvariantViolation] = []
        for invariant in self.invariants:
            detail = invariant.check(ctx)
            if detail is not None:
                violation = InvariantViolation(invariant.name, detail)
                found.append(violation)
                self.violations.append(violation)
                self.events.emit(
                    now,
                    "invariant_violation",
                    detail=f"{invariant.name}: {detail}",
                )
        if found and self.raise_on_violation:
            raise InvariantViolationError(found)
        return found

"""Configuration of the budget-safety envelope."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SafetyConfig", "INVARIANT_MODES"]

#: Invariant-monitor cadences: ``"strict"`` checks every cycle and raises
#: on violation (tests and chaos runs), ``"sampling"`` checks every
#: ``sample_every``-th cycle and only emits events (deployment),
#: ``"off"`` disables the monitors entirely.
INVARIANT_MODES = ("strict", "sampling", "off")


@dataclass(frozen=True)
class SafetyConfig:
    """Knobs of the budget-safety envelope.

    Attributes:
        guard: enforce the budget at the actuation boundary via the
            graded degradation ladder (:class:`~repro.safety.guard.
            BudgetGuard`).  When False the envelope still accounts and
            reports (``budget_overshoot`` events) but never modifies
            caps.
        invariant_mode: one of :data:`INVARIANT_MODES`.
        sample_every: cycles between invariant sweeps in sampling mode.
        raise_on_violation: raise
            :class:`~repro.safety.invariants.InvariantViolationError`
            when a check fails; None defaults to True in strict mode and
            False in sampling mode.
    """

    guard: bool = True
    invariant_mode: str = "off"
    sample_every: int = 16
    raise_on_violation: bool | None = None

    def __post_init__(self) -> None:
        if self.invariant_mode not in INVARIANT_MODES:
            raise ValueError(
                f"invariant_mode must be one of {INVARIANT_MODES}, "
                f"got {self.invariant_mode!r}"
            )
        if self.sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {self.sample_every}"
            )

"""Budget enforcement at the actuation boundary.

:class:`BudgetGuard` is the last gate a cap vector passes before it is
dispatched or actuated.  It asks the :class:`~repro.safety.envelope.
BudgetEnvelope` for the worst-case committed power of the coming interval
and, when the *steady-state* commitment (what the cluster will hold once
this cycle's dispatch lands) exceeds the budget, walks a graded
degradation ladder over the reachable units:

1. **Shave grants** — undo (part of) the readjusting module's most
   recent grants: the newest watts handed out are the cheapest to take
   back, and pre-grant caps already satisfied the budget.
2. **Scale down** — proportional reduction of every reachable cap above
   its per-unit floor (the same shape as the manager-level rescale, but
   aware of unreachable units' held power).
3. **Emergency drop** — forced safe mode: every reachable unit falls to
   the constant cap that fits the remaining budget, or to the floor when
   even that does not fit (the overshoot is then bounded by hardware
   limits and reported, never silent).

After the ladder the guard *paces raises*: a unit whose new cap is above
its held value counts at the max of both until the dispatch is
acknowledged, so when those transients together would push worst-case
committed power past the budget the raises are proportionally deferred
(``budget_raise_deferred``) — the decrease side of a redistribution
lands this cycle, the increase side follows one cycle later, and the
union of old and new caps never exceeds the budget.  What remains is
held power the controller cannot touch (cold start, a just-quarantined
node's old caps): that excursion is reported by a ``budget_overshoot``
event and by construction lasts at most until the next dispatch is
acknowledged.

Each rung emits a structured ``budget_*`` telemetry event carrying the
computed overshoot.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

from repro.safety.envelope import BudgetEnvelope, CommittedPower
from repro.telemetry.log import ResilienceEventLog

__all__ = ["BudgetGuard", "GuardDecision", "last_readjust_grants"]


def last_readjust_grants(manager: object) -> np.ndarray | None:
    """The most recent readjust grant vector of a manager stack, if any.

    Walks wrapper chains (``RecoverableController.manager``,
    ``ResilientManager.inner``) until something exposes
    ``last_grants_w``; returns None when nothing in the stack does.
    """
    seen: set[int] = set()
    node: object | None = manager
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if hasattr(node, "last_grants_w"):
            # The first stack member that *defines* the attribute owns
            # the answer — a resilient wrapper in safe mode reports None
            # on purpose (its constant caps carry no grants to shave),
            # and descending past it would misattribute the shadow-run
            # inner manager's grants.
            grants = node.last_grants_w
            if grants is None:
                return None
            return np.asarray(grants, dtype=np.float64)
        node = getattr(node, "manager", None) or getattr(node, "inner", None)
    return None


class GuardDecision(NamedTuple):
    """Outcome of one guard pass.

    Attributes:
        caps_w: the (possibly degraded) caps to dispatch.
        rung: ladder rung taken — None, ``"budget_shave_grants"``,
            ``"budget_scale_down"``, or ``"budget_emergency_drop"``.
        overshoot_w: steady-state overshoot (W) before enforcement
            (0.0 when no rung was taken).
        committed: the envelope's committed-power breakdown under the
            caps actually being dispatched (post-ladder) — candidate
            caps a rung rejected never reach hardware and are not
            committed power.
    """

    caps_w: np.ndarray
    rung: str | None
    overshoot_w: float
    committed: CommittedPower


class BudgetGuard:
    """Enforces the cluster budget on worst-case committed power.

    Args:
        envelope: the cap-view ledger this guard reads.
        min_cap_w: per-unit cap floor rungs 2 and 3 respect.
        events: structured event sink for ``budget_*`` emissions (an
            internal log is created if omitted).
        tol_w: absolute slack (W) below which an overshoot is treated as
            float noise, not an excursion.  The default covers the wire
            quantization of a thousand units.
        dry_run: account and emit ``budget_overshoot`` events but never
            modify caps (no ladder rung is ever taken).
    """

    def __init__(
        self,
        envelope: BudgetEnvelope,
        min_cap_w: float = 0.0,
        events: ResilienceEventLog | None = None,
        tol_w: float = 1e-6,
        dry_run: bool = False,
    ) -> None:
        if min_cap_w < 0:
            raise ValueError(f"min_cap_w must be >= 0, got {min_cap_w}")
        if tol_w <= 0:
            raise ValueError(f"tol_w must be > 0, got {tol_w}")
        self.envelope = envelope
        self.min_cap_w = float(min_cap_w)
        self.events = events if events is not None else ResilienceEventLog()
        self.tol_w = float(tol_w)
        self.dry_run = dry_run
        #: Cycles whose worst-case committed power exceeded the budget.
        self.excursions = 0
        #: Ladder rungs taken, by event kind.
        self.rungs_taken: dict[str, int] = {}
        #: Cycles in which cap raises were deferred to pace worst case.
        self.raises_deferred = 0

    def enforce(
        self,
        caps_w: np.ndarray,
        now: float,
        unreachable: np.ndarray | None = None,
        assume_tdp: bool = False,
        pending: Sequence[np.ndarray] = (),
        grants_w: np.ndarray | None = None,
    ) -> GuardDecision:
        """Gate one cycle's candidate caps against the budget.

        Args:
            caps_w: the manager's candidate caps for this cycle.
            now: event timestamp (simulation seconds or cycle index).
            unreachable: mask of units no dispatch can reach this cycle.
            assume_tdp: count unreachable units at TDP (pessimistic).
            pending: in-flight actuator command vectors.
            grants_w: the readjusting module's most recent grant vector
                (rung 1 input); rung 1 is skipped when omitted.

        Returns:
            The caps to dispatch plus the rung/overshoot accounting.
        """
        envelope = self.envelope
        budget = envelope.budget_w
        caps = np.asarray(caps_w, dtype=np.float64).copy()
        committed = envelope.assess(
            caps, unreachable=unreachable, assume_tdp=assume_tdp,
            pending=pending,
        )
        if unreachable is None:
            unreachable = np.zeros(envelope.n_units, dtype=bool)
        else:
            unreachable = np.asarray(unreachable, dtype=bool)

        reach = ~unreachable
        held_w = float(committed.steady_w[unreachable].sum())
        target = budget - held_w
        over = float(caps[reach].sum()) - target
        rung: str | None = None
        if not self.dry_run and over > self.tol_w and reach.any():
            rung = self._degrade(caps, reach, over, target, grants_w)
            self.rungs_taken[rung] = self.rungs_taken.get(rung, 0) + 1
            self.events.emit(
                now,
                rung,
                detail=(
                    f"overshoot={over:.3f}W held={held_w:.3f}W "
                    f"target={target:.3f}W"
                ),
            )
            # Committed power is what actually goes to hardware: the
            # candidate the ladder just rejected never reaches it.
            committed = envelope.assess(
                caps, unreachable=unreachable, assume_tdp=assume_tdp,
                pending=pending,
            )

        # Pace raises: until the dispatch is acknowledged a unit counts
        # at max(held, new), so a redistribution's increase side can
        # push the worst case over budget even though the steady sums
        # fit.  Defer (part of) the raises — the held values they would
        # max against are fixed, so every deferred watt reduces the
        # worst case one-for-one; the raise goes through next cycle once
        # the decrease side has confirmed.
        if not self.dry_run:
            excess = committed.worst_case_total_w - budget
            if excess > self.tol_w:
                base = envelope.assess(
                    np.zeros(envelope.n_units),
                    unreachable=unreachable,
                    assume_tdp=assume_tdp,
                    pending=pending,
                ).worst_case_w
                raises = np.where(reach, np.maximum(caps - base, 0.0), 0.0)
                total_raise = float(raises.sum())
                if total_raise > self.tol_w:
                    frac = min(1.0, excess / total_raise)
                    caps -= raises * frac
                    self.raises_deferred += 1
                    self.events.emit(
                        now,
                        "budget_raise_deferred",
                        detail=(
                            f"deferred={total_raise * frac:.3f}W "
                            f"excess={excess:.3f}W"
                        ),
                    )
                    committed = envelope.assess(
                        caps, unreachable=unreachable,
                        assume_tdp=assume_tdp, pending=pending,
                    )

        worst_over = committed.worst_case_total_w - budget
        if worst_over > self.tol_w:
            self.excursions += 1
            self.events.emit(
                now,
                "budget_overshoot",
                detail=(
                    f"worst_case={committed.worst_case_total_w:.3f}W "
                    f"overshoot={worst_over:.3f}W"
                ),
            )

        return GuardDecision(
            caps_w=caps,
            rung=rung,
            overshoot_w=(
                over if rung is not None or self.dry_run else 0.0
            ),
            committed=committed,
        )

    def _degrade(
        self,
        caps: np.ndarray,
        reach: np.ndarray,
        over: float,
        target: float,
        grants_w: np.ndarray | None,
    ) -> str:
        """Apply the cheapest sufficient ladder rung to ``caps`` in place.

        Returns the event kind naming the rung taken.
        """
        # Rung 1: take back the most recent readjust grants.  Only
        # sufficient grants qualify — a partial shave would still need
        # rung 2, so go straight there instead of stacking reductions.
        if grants_w is not None:
            grants = np.where(
                reach, np.maximum(np.asarray(grants_w, np.float64), 0.0), 0.0
            )
            total_grant = float(grants.sum())
            if total_grant >= over:
                caps -= grants * (over / total_grant)
                return "budget_shave_grants"

        # Rung 2: proportional scale-down above the per-unit floor.
        slack = np.where(reach, np.maximum(caps - self.min_cap_w, 0.0), 0.0)
        total_slack = float(slack.sum())
        if total_slack >= over:
            caps -= slack * (over / total_slack)
            return "budget_scale_down"

        # Rung 3: emergency constant cap — forced safe mode.  Even the
        # floors may not fit under the remaining budget (the held power
        # of unreachable units is outside our control); drop to the
        # floor and report, the residual excursion is hardware-bounded.
        n_reach = int(reach.sum())
        constant = max(self.min_cap_w, target / n_reach)
        caps[reach] = np.minimum(constant, self.envelope.max_cap_w)
        return "budget_emergency_drop"

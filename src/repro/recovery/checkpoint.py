"""Durable checkpoint store and bounded cycle journal.

Controller recovery has two halves.  A **checkpoint** is a full snapshot
of the controller's state, written durably every N cycles; a **journal**
is the append-only record of every control input since the last
checkpoint.  Restore = load the newest valid checkpoint + replay the
journal tail, which reproduces the pre-crash state exactly (every
manager's ``step`` is deterministic given its snapshot, including its RNG
stream).

Durability discipline (the part that actually matters in a crash):

* checkpoints are written to a temp file, ``fsync``\\ ed, then atomically
  ``os.replace``\\ d into place, and the directory is fsynced — a crash
  mid-write leaves the previous generation intact, never a half-file;
* every checkpoint embeds a schema version and a SHA-256 checksum over
  its payload; load rejects version mismatches and corrupt documents and
  falls back to the next-older generation;
* the journal appends one self-checksummed line per cycle with
  flush+fsync; replay stops at the first corrupt/torn line (the expected
  signature of a crash mid-append) and keeps the valid prefix.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import NamedTuple

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpoint",
    "CheckpointStore",
    "CycleJournal",
    "JournalRecord",
]

#: Bump on any incompatible change to the checkpoint document layout.
CHECKPOINT_SCHEMA_VERSION = 1

_CKPT_RE = re.compile(r"^ckpt-(\d{8})\.json$")


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class Checkpoint(NamedTuple):
    """One successfully loaded checkpoint generation.

    Attributes:
        cycle: control cycle the snapshot was taken after.
        payload: the controller state document.
        path: file the checkpoint was read from.
    """

    cycle: int
    payload: dict
    path: Path


class CheckpointStore:
    """Versioned, checksummed, multi-generation checkpoint directory.

    Args:
        directory: where checkpoint files live (created if missing).
        keep: generations retained; older files are pruned after each
            successful save (>= 1 — corruption fallback needs history).
    """

    def __init__(self, directory: str | Path, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        #: Files rejected (bad checksum/version) by the most recent load.
        self.last_rejected: list[Path] = []

    def paths(self) -> list[Path]:
        """Checkpoint files present, oldest first."""
        found = [
            p
            for p in self.directory.iterdir()
            if _CKPT_RE.match(p.name)
        ]
        return sorted(found)

    def save(self, cycle: int, payload: dict) -> Path:
        """Durably write one checkpoint generation.

        Args:
            cycle: control cycle the payload describes the end of.
            payload: JSON-serializable controller state.

        Returns:
            The path of the new generation.
        """
        if cycle < 0:
            raise ValueError(f"cycle must be >= 0, got {cycle}")
        body = json.dumps(
            {"cycle": int(cycle), "payload": payload}, sort_keys=True
        )
        doc = {
            "format": "repro-checkpoint",
            "version": CHECKPOINT_SCHEMA_VERSION,
            "sha256": _sha256(body),
            "body": body,
        }
        final = self.directory / f"ckpt-{cycle:08d}.json"
        tmp = final.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        _fsync_dir(self.directory)
        self._prune()
        return final

    def _prune(self) -> None:
        for stale in self.paths()[: -self.keep]:
            stale.unlink(missing_ok=True)

    def _load_one(self, path: Path) -> Checkpoint:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("format") != "repro-checkpoint":
            raise ValueError(f"{path.name}: not a checkpoint document")
        if doc.get("version") != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError(
                f"{path.name}: schema version {doc.get('version')!r} != "
                f"{CHECKPOINT_SCHEMA_VERSION}"
            )
        body = doc.get("body", "")
        if _sha256(body) != doc.get("sha256"):
            raise ValueError(f"{path.name}: checksum mismatch")
        inner = json.loads(body)
        return Checkpoint(
            cycle=int(inner["cycle"]), payload=inner["payload"], path=path
        )

    def load_latest(self) -> Checkpoint | None:
        """Newest generation that validates, or None if none does.

        Corrupt/incompatible generations are skipped (recorded in
        :attr:`last_rejected`), falling back to older files — the recovery
        contract when the crash that killed the controller also tore the
        newest checkpoint.
        """
        self.last_rejected = []
        for path in reversed(self.paths()):
            try:
                return self._load_one(path)
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                self.last_rejected.append(path)
        return None


@dataclass(frozen=True)
class JournalRecord:
    """One journaled control cycle.

    Attributes:
        cycle: cycle index the inputs belong to (0-based).
        data: arbitrary JSON document (readings, optional demand).
    """

    cycle: int
    data: dict = field(default_factory=dict)


class CycleJournal:
    """Append-only, self-checksummed record of control-cycle inputs.

    One line per cycle: ``<sha256-prefix> <json>``.  Appends flush+fsync
    so a record survives the very next crash; reads stop at the first
    line that fails its checksum (a torn tail write) and return the valid
    prefix.  The journal is bounded by truncation at every checkpoint —
    only the tail since the last checkpoint is ever needed — plus a hard
    ``capacity`` backstop against a controller that never checkpoints.

    Args:
        path: journal file (created on first append).
        capacity: records kept; when an append would exceed it, the
            oldest record is dropped and :attr:`overflowed` latches True
            (replay then only trusts records contiguous with the
            checkpoint, so an overflow degrades to checkpoint-only
            recovery instead of silently replaying a gapped tail).
    """

    _CHECK_LEN = 16

    def __init__(self, path: str | Path, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.path = Path(path)
        self.capacity = capacity
        self.overflowed = False
        self._count = len(self.read())

    def __len__(self) -> int:
        return self._count

    def append(self, cycle: int, data: dict) -> None:
        """Durably append one record."""
        if self._count >= self.capacity:
            records = self.read()[1:]
            self.overflowed = True
            self._rewrite(records)
        body = json.dumps(
            {"cycle": int(cycle), "data": data}, sort_keys=True
        )
        line = f"{_sha256(body)[: self._CHECK_LEN]} {body}\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        self._count += 1

    def _rewrite(self, records: list[JournalRecord]) -> None:
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for rec in records:
                body = json.dumps(
                    {"cycle": rec.cycle, "data": rec.data}, sort_keys=True
                )
                fh.write(f"{_sha256(body)[: self._CHECK_LEN]} {body}\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._count = len(records)

    def read(self) -> list[JournalRecord]:
        """All valid records, oldest first.

        Stops at the first corrupt line: everything after a torn write is
        untrustworthy, and a mid-append crash only ever tears the tail.
        """
        if not self.path.exists():
            return []
        records: list[JournalRecord] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.rstrip("\n")
                if not line:
                    continue
                check, _, body = line.partition(" ")
                if (
                    not body
                    or _sha256(body)[: self._CHECK_LEN] != check
                ):
                    break
                try:
                    doc = json.loads(body)
                    records.append(
                        JournalRecord(
                            cycle=int(doc["cycle"]), data=doc["data"]
                        )
                    )
                except (ValueError, KeyError):
                    break
        return records

    def tail_after(self, cycle: int) -> list[JournalRecord]:
        """Records strictly after ``cycle``, contiguous from ``cycle + 1``.

        The replay contract: the returned tail starts exactly one cycle
        after the checkpoint and has no gaps.  A journal that overflowed
        (or whose head was lost) yields only the contiguous prefix of the
        tail — possibly empty — never a gapped sequence.
        """
        tail = [r for r in self.read() if r.cycle > cycle]
        contiguous: list[JournalRecord] = []
        expected = cycle + 1
        for rec in tail:
            if rec.cycle != expected:
                break
            contiguous.append(rec)
            expected += 1
        return contiguous

    def truncate(self) -> None:
        """Drop all records (called after each successful checkpoint)."""
        self._rewrite([])
        self.overflowed = False

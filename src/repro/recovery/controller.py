"""Recoverable controller: journaled, checkpointed manager proxy.

:class:`RecoverableController` wraps any bound
:class:`~repro.core.managers.PowerManager` and duck-types the surface the
deploy server and simulator drive (``n_units``, ``initial_cap_w``,
``max_cap_w``, ``caps``, ``step``), so either can run a recoverable
controller without knowing it.  Around every ``step`` it:

1. **journals the inputs first** — the reading (and demand) vector is
   durably appended *before* the manager sees it, so a crash mid-step is
   replayed, not lost;
2. steps the wrapped manager;
3. every ``checkpoint_every`` cycles, writes a full snapshot through the
   :class:`~repro.recovery.checkpoint.CheckpointStore` and truncates the
   journal (the tail before a checkpoint is dead weight).

``resume`` is the other half: load the newest valid checkpoint (falling
back across generations on corruption), restore the manager bit-exactly,
then re-``step`` it through the journal tail — after which the manager's
state, including its RNG stream position, equals the pre-crash state
exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.managers import PowerManager
from repro.recovery.checkpoint import CheckpointStore, CycleJournal
from repro.recovery.state import decode_array, encode_array
from repro.telemetry.log import ResilienceEventLog

__all__ = ["RecoverableController"]


class RecoverableController:
    """Checkpointing/journaling proxy around a power manager.

    Args:
        manager: the wrapped manager.  Must be bound before stepping
            (``resume`` binds it from the checkpoint).
        store: durable checkpoint store.
        journal: cycle journal (should live next to the store).
        checkpoint_every: cycles between checkpoints (>= 1).
        events: recovery event sink (an internal log is created if
            omitted).  Event times are control-cycle indices.
    """

    def __init__(
        self,
        manager: PowerManager,
        store: CheckpointStore,
        journal: CycleJournal,
        checkpoint_every: int = 10,
        events: ResilienceEventLog | None = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.manager = manager
        self.store = store
        self.journal = journal
        self.checkpoint_every = checkpoint_every
        self.events = events if events is not None else ResilienceEventLog()
        #: Completed control cycles (monotonic across restarts).
        self.cycle = 0
        #: Journal records replayed by the last ``resume`` (0 if none).
        self.replayed = 0

    # ------------------------------------------------------------------
    # The manager surface the server/simulator drives.
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.manager.name

    @property
    def requires_demand(self) -> bool:
        return self.manager.requires_demand

    @property
    def n_units(self) -> int:
        return self.manager.n_units

    @property
    def budget_w(self) -> float:
        return self.manager.budget_w

    @property
    def max_cap_w(self) -> float:
        return self.manager.max_cap_w

    @property
    def min_cap_w(self) -> float:
        return self.manager.min_cap_w

    @property
    def initial_cap_w(self) -> float:
        return self.manager.initial_cap_w

    @property
    def caps(self) -> np.ndarray:
        return self.manager.caps

    def set_budget_w(self, budget_w: float) -> None:
        """Apply a budget re-lease to the wrapped manager.

        The new budget is *not* journaled here: it rides the next cycle's
        journal record, so replay re-applies it at exactly the step where
        it first took effect.
        """
        self.manager.set_budget_w(budget_w)

    def step(
        self, power_w: np.ndarray, demand_w: np.ndarray | None = None
    ) -> np.ndarray:
        """Journal the inputs, step the manager, maybe checkpoint."""
        record: dict = {
            "power": encode_array(np.asarray(power_w, dtype=np.float64)),
            # The budget in force for this step.  Checkpoints capture it
            # via the manager binding; journaling it per record lets
            # replay re-apply mid-tail budget re-leases bit-exactly.
            "budget": float(self.manager.budget_w),
        }
        if demand_w is not None:
            record["demand"] = encode_array(
                np.asarray(demand_w, dtype=np.float64)
            )
        self.journal.append(self.cycle + 1, record)
        caps = self.manager.step(power_w, demand_w)
        self.cycle += 1
        if self.cycle % self.checkpoint_every == 0:
            self.checkpoint()
        return caps

    # ------------------------------------------------------------------
    # Checkpoint / resume.
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Write one durable checkpoint generation and truncate the journal."""
        path = self.store.save(self.cycle, {"manager": self.manager.snapshot()})
        self.journal.truncate()
        self.events.emit(
            float(self.cycle),
            "checkpoint_written",
            detail=path.name,
        )

    def resume(self) -> bool:
        """Restore from the newest valid checkpoint and replay the journal.

        Returns:
            True if a checkpoint was restored; False when the store holds
            no usable generation (the caller starts cold — the wrapped
            manager keeps whatever binding it already has).
        """
        self.replayed = 0
        ckpt = self.store.load_latest()
        for rejected in self.store.last_rejected:
            self.events.emit(
                float(self.cycle),
                "checkpoint_rejected",
                detail=rejected.name,
            )
        if ckpt is None:
            return False
        self.manager.restore(ckpt.payload["manager"])
        self.cycle = ckpt.cycle
        self.events.emit(
            float(self.cycle),
            "restore_performed",
            detail=f"{ckpt.path.name} @ cycle {ckpt.cycle}",
        )
        tail = self.journal.tail_after(ckpt.cycle)
        for rec in tail:
            power = decode_array(rec.data["power"])
            demand = (
                decode_array(rec.data["demand"])
                if "demand" in rec.data
                else None
            )
            # Records written before budget journaling carry no "budget"
            # key; the checkpoint binding's budget then stays in force.
            budget = rec.data.get("budget")
            if budget is not None and float(budget) != self.manager.budget_w:
                self.manager.set_budget_w(float(budget))
            self.manager.step(power, demand)
            self.cycle = rec.cycle
        self.replayed = len(tail)
        if tail:
            self.events.emit(
                float(self.cycle),
                "journal_replayed",
                detail=f"{len(tail)} cycles "
                f"({ckpt.cycle + 1}..{self.cycle})",
            )
        return True

"""Exact state serialization for the crash-recovery subsystem.

DPS's advantage over the stateless baselines is precisely the state a
crash destroys — Kalman estimates, power histories, priority flags, and
the RNG streams that make reruns reproducible.  Restoring that state must
be *bit-exact*: a restored controller has to produce the same cap vectors
an uninterrupted one would, or the recovery guarantee degrades into "we
restarted something".  JSON's float round-trip is exact for finite doubles
but silently widens dtypes and loses array shapes, so arrays travel as
base64 of their raw little-endian bytes plus explicit dtype/shape, and
NumPy ``Generator`` streams travel as their bit-generator state dicts.

Every stateful component implements the two-method protocol below:

* ``snapshot() -> dict`` — a JSON-serializable document of the complete
  mutable state;
* ``restore(state) -> None`` — overwrite the component's state with a
  snapshot's content (shapes validated, everything else trusted — the
  checkpoint store authenticates documents by checksum before they get
  here).
"""

from __future__ import annotations

import base64
from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "Snapshottable",
    "encode_array",
    "decode_array",
    "rng_state",
    "restore_rng",
    "make_rng",
]


@runtime_checkable
class Snapshottable(Protocol):
    """The state protocol every recoverable component implements."""

    def snapshot(self) -> dict: ...

    def restore(self, state: dict) -> None: ...


def encode_array(arr: np.ndarray) -> dict:
    """Encode an array as base64 raw bytes with dtype and shape.

    The little-endian byte image round-trips every value bit-exactly
    (floats, bools, ints alike), unlike ``tolist()`` which widens and
    re-parses.
    """
    a = np.ascontiguousarray(arr)
    le = a.astype(a.dtype.newbyteorder("<"), copy=False)
    return {
        "dtype": le.dtype.str,
        "shape": list(a.shape),
        "data": base64.b64encode(le.tobytes()).decode("ascii"),
    }


def decode_array(doc: dict) -> np.ndarray:
    """Reconstruct an array written by :func:`encode_array`.

    Raises:
        ValueError: byte payload inconsistent with dtype/shape.
    """
    dtype = np.dtype(doc["dtype"])
    shape = tuple(int(s) for s in doc["shape"])
    raw = base64.b64decode(doc["data"].encode("ascii"))
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if len(raw) != expected:
        raise ValueError(
            f"array payload holds {len(raw)} bytes, dtype/shape imply "
            f"{expected}"
        )
    arr = np.frombuffer(raw, dtype=dtype).reshape(shape)
    # A mutable native-order copy (frombuffer views are read-only).
    return arr.astype(dtype.newbyteorder("="), copy=True)


def _jsonify(obj: Any) -> Any:
    """Recursively convert NumPy scalars/arrays in a bit-generator state
    dict to plain Python types (PCG64 states are ints; Philox/SFC64 carry
    uint64 arrays)."""
    if isinstance(obj, dict):
        return {k: _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": encode_array(obj)}
    if isinstance(obj, np.generic):
        return obj.item()
    return obj


def _unjsonify(obj: Any) -> Any:
    if isinstance(obj, dict):
        if "__ndarray__" in obj and len(obj) == 1:
            return decode_array(obj["__ndarray__"])
        return {k: _unjsonify(v) for k, v in obj.items()}
    return obj


def rng_state(rng: np.random.Generator) -> dict:
    """Capture a ``Generator``'s stream position as a JSON-able document."""
    return _jsonify(rng.bit_generator.state)


def make_rng(state: dict) -> np.random.Generator:
    """Build a fresh ``Generator`` positioned at a captured state.

    Raises:
        ValueError: unknown bit-generator name in the state document.
    """
    name = state.get("bit_generator", "PCG64")
    try:
        bitgen_cls = getattr(np.random, str(name))
    except AttributeError:
        raise ValueError(f"unknown bit generator {name!r}") from None
    bitgen = bitgen_cls()
    bitgen.state = _unjsonify(state)
    return np.random.Generator(bitgen)


def restore_rng(rng: np.random.Generator, state: dict) -> None:
    """Reposition an existing ``Generator`` at a captured state.

    The generator's bit-generator type must match the snapshot's.

    Raises:
        ValueError: bit-generator type mismatch.
    """
    name = state.get("bit_generator")
    actual = type(rng.bit_generator).__name__
    if name != actual:
        raise ValueError(
            f"snapshot holds a {name} stream but the generator is {actual}"
        )
    rng.bit_generator.state = _unjsonify(state)

"""Supervisor: restartable control loop with heartbeat hang detection.

A controller fails two ways: it *crashes* (the process dies — an
exception in-model) or it *hangs* (alive but not making progress — only
detectable from outside).  The supervisor handles both with one
mechanism: the control loop runs as a restartable *attempt*, beats a
:class:`Heartbeat` once per cycle, and a :class:`Watchdog` thread aborts
the attempt when the heartbeat goes stale.  A failed attempt is followed
by a fresh one that warm-restores from the latest valid checkpoint
(:meth:`~repro.recovery.controller.RecoverableController.resume`), up to
``max_restarts`` times.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, TypeVar

from repro.telemetry.log import ResilienceEventLog

__all__ = [
    "ControllerCrash",
    "ControllerHang",
    "Heartbeat",
    "Watchdog",
    "Supervisor",
]

T = TypeVar("T")


class ControllerCrash(Exception):
    """The controller process died mid-run (fault injection or real)."""


class ControllerHang(Exception):
    """The controller stopped making progress and was aborted."""


class Heartbeat:
    """Thread-safe progress pulse shared by a control loop and its watchdog.

    The control loop calls :meth:`beat` once per cycle; the watchdog
    measures staleness with :meth:`seconds_since` and calls :meth:`abort`
    when the loop is stuck.  A hung loop that is still able to observe
    :attr:`aborted` (e.g. a stall in a waiting primitive) uses it to bail
    out; a truly wedged loop would be killed at the process level, which
    the in-process harness models by raising on its behalf.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._last = time.monotonic()
        self._aborted = threading.Event()

    def beat(self) -> None:
        """Record one unit of progress (and clear nothing — aborts stick)."""
        with self._lock:
            self._last = time.monotonic()

    def seconds_since(self) -> float:
        """Seconds since the most recent beat."""
        with self._lock:
            return time.monotonic() - self._last

    @property
    def aborted(self) -> bool:
        """True once the watchdog has given up on this attempt."""
        return self._aborted.is_set()

    def abort(self) -> None:
        """Mark the attempt as abandoned (idempotent)."""
        self._aborted.set()

    def wait_aborted(self, timeout_s: float) -> bool:
        """Block up to ``timeout_s`` for an abort; True if aborted."""
        return self._aborted.wait(timeout_s)


class Watchdog:
    """Background thread aborting a heartbeat that goes stale.

    Args:
        heartbeat: the pulse being watched.
        timeout_s: staleness threshold (> 0).
        poll_s: check interval (defaults to a tenth of the timeout).
    """

    def __init__(
        self,
        heartbeat: Heartbeat,
        timeout_s: float,
        poll_s: float | None = None,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.heartbeat = heartbeat
        self.timeout_s = timeout_s
        self.poll_s = poll_s if poll_s is not None else timeout_s / 10.0
        self.fired = False
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._watch, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        """Stop watching (idempotent; joins the watch thread)."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join()

    def _watch(self) -> None:
        while not self._stop.wait(self.poll_s):
            if self.heartbeat.seconds_since() > self.timeout_s:
                self.fired = True
                self.heartbeat.abort()
                return


class Supervisor:
    """Runs a control loop as restartable attempts with hang detection.

    Each attempt receives a fresh :class:`Heartbeat` (already watched by a
    running :class:`Watchdog`) and either returns the session result or
    raises :class:`ControllerCrash` / :class:`ControllerHang`.  The
    supervisor restarts failed attempts — the attempt callable is expected
    to warm-restore from the checkpoint store on attempts after the first
    — and gives up after ``max_restarts`` restarts.

    Args:
        max_restarts: restarts allowed after the initial attempt (>= 0).
        hang_timeout_s: heartbeat staleness threshold per attempt.
        events: recovery event sink (an internal log is created if
            omitted).
    """

    def __init__(
        self,
        max_restarts: int = 3,
        hang_timeout_s: float = 5.0,
        events: ResilienceEventLog | None = None,
    ) -> None:
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.max_restarts = max_restarts
        self.hang_timeout_s = hang_timeout_s
        self.events = events if events is not None else ResilienceEventLog()
        #: Restarts performed by the most recent :meth:`run`.
        self.restarts = 0

    def run(self, attempt: Callable[[int, Heartbeat], T]) -> T:
        """Drive attempts until one completes.

        Args:
            attempt: callable ``(attempt_index, heartbeat) -> result``;
                index 0 is the cold start, higher indices are restarts.

        Returns:
            The first completing attempt's result.

        Raises:
            ControllerCrash / ControllerHang: the final attempt failed and
                the restart budget is exhausted.
        """
        self.restarts = 0
        for index in range(self.max_restarts + 1):
            heartbeat = Heartbeat()
            watchdog = Watchdog(heartbeat, self.hang_timeout_s)
            watchdog.start()
            try:
                result = attempt(index, heartbeat)
                return result
            except ControllerCrash as exc:
                self._on_failure(index, "controller_killed", str(exc))
            except ControllerHang as exc:
                self._on_failure(index, "controller_hung", str(exc))
            finally:
                watchdog.stop()
        raise AssertionError("unreachable")  # pragma: no cover

    def _on_failure(self, index: int, kind: str, detail: str) -> None:
        self.events.emit(float(index), kind, detail=detail)
        if index >= self.max_restarts:
            raise
        self.restarts += 1
        self.events.emit(
            float(index),
            "controller_restarted",
            detail=f"attempt {index + 1} of {self.max_restarts + 1}",
        )

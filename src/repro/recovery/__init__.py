"""Controller crash-recovery: state protocol, checkpoints, supervision.

Layout:

* :mod:`~repro.recovery.state` — bit-exact array/RNG serialization and the
  ``snapshot()/restore()`` protocol;
* :mod:`~repro.recovery.checkpoint` — durable checkpoint store and the
  bounded cycle journal;
* :mod:`~repro.recovery.controller` — the journaling/checkpointing
  manager proxy;
* :mod:`~repro.recovery.supervisor` — heartbeat, watchdog, and the
  restartable-attempt supervisor.

``controller`` and ``supervisor`` are re-exported lazily: ``state`` is
imported by :mod:`repro.core.managers` itself, so importing them eagerly
here would close an import cycle.
"""

from __future__ import annotations

from repro.recovery.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    Checkpoint,
    CheckpointStore,
    CycleJournal,
    JournalRecord,
)
from repro.recovery.state import (
    Snapshottable,
    decode_array,
    encode_array,
    make_rng,
    restore_rng,
    rng_state,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpoint",
    "CheckpointStore",
    "ControllerCrash",
    "ControllerHang",
    "CycleJournal",
    "Heartbeat",
    "JournalRecord",
    "RecoverableController",
    "Snapshottable",
    "Supervisor",
    "Watchdog",
    "decode_array",
    "encode_array",
    "make_rng",
    "restore_rng",
    "rng_state",
]

_LAZY = {
    "RecoverableController": "repro.recovery.controller",
    "ControllerCrash": "repro.recovery.supervisor",
    "ControllerHang": "repro.recovery.supervisor",
    "Heartbeat": "repro.recovery.supervisor",
    "Supervisor": "repro.recovery.supervisor",
    "Watchdog": "repro.recovery.supervisor",
}


def __getattr__(name: str) -> object:
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""The per-node DPS client daemon over real TCP sockets (paper §4.3).

``DeployClient`` is the deployable counterpart of
:class:`repro.comm.service.PowerClient`: it connects to the server,
registers its node's sockets, and services POLL → READINGS → CAPS cycles
until QUIT.  Power comes from its node's meters and caps land on its
node's RAPL domains — on real hardware those would be sysfs powercap
reads/writes; here they are the simulated domains, through the identical
code path.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.cluster.node import Node
from repro.comm.protocol import MSG_CAP, MSG_READING, decode, encode
from repro.deploy import framing

__all__ = ["DeployClient"]


class DeployClient:
    """Per-node daemon speaking the framed TCP protocol.

    Args:
        node: the node whose sockets this client meters and caps.
        address: server ``(host, port)``.
        dt_s: metering window passed to each power read.
        timeout_s: socket-operation timeout.
        poll_delay_s: wall-clock delay before answering each POLL —
            models the node-side metering latency of a real daemon (and,
            set near the server's ``timeout_s``, a straggling node).
    """

    def __init__(
        self,
        node: Node,
        address: tuple[str, int],
        dt_s: float = 1.0,
        timeout_s: float = 5.0,
        poll_delay_s: float = 0.0,
    ) -> None:
        if len(node.sockets) > 0xFF:
            raise ValueError("a client frame addresses at most 255 units")
        if poll_delay_s < 0:
            raise ValueError(f"poll_delay_s must be >= 0, got {poll_delay_s}")
        self.node = node
        self.address = address
        self.dt_s = dt_s
        self.timeout_s = timeout_s
        self.poll_delay_s = poll_delay_s
        self._sock: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self.cycles_served = 0
        self.error: BaseException | None = None
        self.killed = False

    def connect(self) -> None:
        """Connect and register with the server."""
        self._sock = socket.create_connection(
            self.address, timeout=self.timeout_s
        )
        try:
            # 3-byte messages once a second are the worst case for
            # Nagle + delayed-ACK stalls; the server disables it too.
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        framing.send_hello(
            self._sock, self.node.node_id, len(self.node.sockets)
        )

    def serve_forever(self) -> None:
        """Service cycles until QUIT or connection loss (blocking)."""
        assert self._sock is not None, "connect() first"
        sock = self._sock
        try:
            while True:
                tag = framing.recv_tag(sock)
                if tag == framing.FRAME_QUIT:
                    break
                if tag != framing.FRAME_POLL:
                    raise ValueError(f"unexpected frame tag {tag!r}")
                if self.poll_delay_s > 0:
                    time.sleep(self.poll_delay_s)
                batch = []
                for local, unit in enumerate(self.node.sockets):
                    power = unit.meter.read_power_w(self.dt_s)
                    batch.append(
                        encode(MSG_READING, local, min(power, 409.5))
                    )
                framing.send_batch(sock, framing.FRAME_READINGS, batch)
                caps = framing.recv_batch(sock, framing.FRAME_CAPS)
                for payload in caps:
                    msg = decode(payload)
                    if msg.kind != MSG_CAP:
                        raise ValueError(f"expected cap, got {msg}")
                    self.node.sockets[msg.unit].domain.set_cap_w(msg.value_w)
                self.cycles_served += 1
        except ConnectionError:
            pass  # Server went away; a daemon exits quietly.
        finally:
            sock.close()
            self._sock = None

    # ------------------------------------------------------------------
    # Threaded convenience API (used by the loopback harness and tests).
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Connect and serve on a background thread."""

        def run() -> None:
            try:
                self.serve_forever()
            except BaseException as exc:  # Surfaced via `error`.
                self.error = exc

        self.connect()
        self._thread = threading.Thread(
            target=run, name=f"dps-client-{self.node.node_id}", daemon=True
        )
        self._thread.start()

    def kill(self) -> None:
        """Simulate a daemon crash: sever the connection without QUIT.

        The serving thread dies on the broken socket; :meth:`join` treats
        the resulting error as expected.  The node's hardware is
        untouched — its last programmed caps stay in effect, exactly like
        a killed daemon on a live machine.
        """
        self.killed = True
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()

    def join(self, timeout_s: float = 5.0) -> None:
        """Wait for the serving thread to exit.

        Raises:
            RuntimeError: the thread is still alive after the timeout, or
                the daemon died with an exception (killed daemons exit
                without raising).
        """
        if self._thread is not None:
            self._thread.join(timeout_s)
            if self._thread.is_alive():
                raise RuntimeError(
                    f"client {self.node.node_id} did not shut down"
                )
        if self.error is not None and not self.killed:
            raise RuntimeError(
                f"client {self.node.node_id} failed"
            ) from self.error

"""Deployable TCP control plane (the artifact's BSD-socket architecture)."""

from repro.deploy.client import DeployClient
from repro.deploy.loopback import LoopbackResult, run_loopback
from repro.deploy.server import DeployCycleStats, DeployServer

__all__ = [
    "DeployClient",
    "DeployCycleStats",
    "DeployServer",
    "LoopbackResult",
    "run_loopback",
]

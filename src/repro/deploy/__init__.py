"""Deployable TCP control plane (the artifact's BSD-socket architecture)."""

from repro.deploy.client import DeployClient
from repro.deploy.loopback import ChaosSchedule, LoopbackResult, run_loopback
from repro.deploy.server import (
    PROTOCOL_MAX_W,
    DeployCycleStats,
    DeployServer,
)

__all__ = [
    "ChaosSchedule",
    "DeployClient",
    "DeployCycleStats",
    "DeployServer",
    "LoopbackResult",
    "PROTOCOL_MAX_W",
    "run_loopback",
]

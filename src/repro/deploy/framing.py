"""TCP framing of the DPS control protocol (paper §4.3, §6.5).

The artifact's server and clients speak over BSD sockets; this module
defines the byte-exact framing used by :mod:`repro.deploy`.  All frames
start with a one-byte type tag:

* ``HELLO`` (client → server, once): ``b'H'`` + node id (2 bytes BE) +
  unit count (1 byte) — registers the client's sockets.
* ``POLL`` (server → client): ``b'P'`` — requests one reading per unit.
* ``READINGS`` (client → server): ``b'R'`` + count (1 byte) + count x
  3-byte :mod:`repro.comm.protocol` reading messages.
* ``CAPS`` (server → client): ``b'C'`` + count (1 byte) + count x 3-byte
  cap messages.
* ``QUIT`` (server → client): ``b'Q'`` — clean shutdown.

The 3-byte payload messages are exactly the §6.5 wire format; framing adds
2 bytes per batch, amortized across a node's units.
"""

from __future__ import annotations

import socket
from typing import NamedTuple

__all__ = [
    "FRAME_HELLO",
    "FRAME_POLL",
    "FRAME_READINGS",
    "FRAME_CAPS",
    "FRAME_QUIT",
    "BatchAssembler",
    "Hello",
    "recv_exact",
    "send_hello",
    "recv_hello",
    "send_batch",
    "recv_batch",
    "send_tag",
    "recv_tag",
]

FRAME_HELLO = b"H"
FRAME_POLL = b"P"
FRAME_READINGS = b"R"
FRAME_CAPS = b"C"
FRAME_QUIT = b"Q"

_BATCH_TAGS = (FRAME_READINGS, FRAME_CAPS)


class Hello(NamedTuple):
    """Decoded registration frame."""

    node_id: int
    n_units: int


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError(
                f"peer closed with {remaining} of {n} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_hello(sock: socket.socket, node_id: int, n_units: int) -> None:
    """Send the registration frame.

    Raises:
        ValueError: node id or unit count outside the frame's ranges.
    """
    if not 0 <= node_id <= 0xFFFF:
        raise ValueError(f"node_id must fit 16 bits, got {node_id}")
    if not 1 <= n_units <= 0xFF:
        raise ValueError(f"n_units must be in [1, 255], got {n_units}")
    sock.sendall(
        FRAME_HELLO + node_id.to_bytes(2, "big") + n_units.to_bytes(1, "big")
    )


def recv_hello(sock: socket.socket) -> Hello:
    """Receive and decode a registration frame.

    Raises:
        ValueError: wrong frame tag.
    """
    tag = recv_exact(sock, 1)
    if tag != FRAME_HELLO:
        raise ValueError(f"expected HELLO, got tag {tag!r}")
    body = recv_exact(sock, 3)
    return Hello(
        node_id=int.from_bytes(body[:2], "big"),
        n_units=body[2],
    )


def send_tag(sock: socket.socket, tag: bytes) -> None:
    """Send a bare control frame (POLL or QUIT)."""
    if tag not in (FRAME_POLL, FRAME_QUIT):
        raise ValueError(f"not a bare control tag: {tag!r}")
    sock.sendall(tag)


def recv_tag(sock: socket.socket) -> bytes:
    """Receive any frame tag byte."""
    return recv_exact(sock, 1)


def send_batch(
    sock: socket.socket, tag: bytes, messages: list[bytes]
) -> int:
    """Send a READINGS/CAPS batch; returns payload bytes sent.

    Raises:
        ValueError: wrong tag, empty/oversized batch, or non-3-byte
            messages.
    """
    if tag not in _BATCH_TAGS:
        raise ValueError(f"not a batch tag: {tag!r}")
    if not 1 <= len(messages) <= 0xFF:
        raise ValueError(f"batch size must be in [1, 255], got {len(messages)}")
    payload = b"".join(messages)
    if len(payload) != 3 * len(messages):
        raise ValueError("every batch message must be exactly 3 bytes")
    sock.sendall(tag + len(messages).to_bytes(1, "big") + payload)
    return len(payload)


class BatchAssembler:
    """Incremental reassembly of one READINGS/CAPS batch.

    The concurrent control cycle reads whatever bytes each client socket
    has ready; frames arrive in arbitrary fragments (a TCP stream has no
    message boundaries).  An assembler accumulates those fragments and
    reports completion once the whole ``tag + count + count x 3 B`` frame
    is in — without ever blocking on the socket.

    Args:
        expected_tag: the batch frame tag this assembler accepts
            (``FRAME_READINGS`` or ``FRAME_CAPS``).
    """

    def __init__(self, expected_tag: bytes) -> None:
        if expected_tag not in _BATCH_TAGS:
            raise ValueError(f"not a batch tag: {expected_tag!r}")
        self.expected_tag = expected_tag
        self._buffer = bytearray()
        self._count: int | None = None
        self._batch: list[bytes] | None = None

    @property
    def complete(self) -> bool:
        """True once the whole frame has been assembled."""
        return self._batch is not None

    @property
    def batch(self) -> list[bytes]:
        """The assembled 3-byte messages.

        Raises:
            RuntimeError: the frame is not complete yet.
        """
        if self._batch is None:
            raise RuntimeError("batch is not complete")
        return self._batch

    def feed(self, data: bytes) -> bool:
        """Consume one fragment; returns True once the frame is complete.

        Raises:
            ValueError: wrong frame tag, or bytes beyond the end of the
                frame (a client speaking out of turn) — the stream cannot
                be trusted after either.
        """
        if self._batch is not None and data:
            raise ValueError(
                f"{len(data)} bytes beyond the end of the frame"
            )
        self._buffer.extend(data)
        if self._count is None:
            if not self._buffer:
                return False
            tag = bytes(self._buffer[:1])
            if tag != self.expected_tag:
                raise ValueError(
                    f"expected {self.expected_tag!r}, got {tag!r}"
                )
            if len(self._buffer) < 2:
                return False
            self._count = self._buffer[1]
            if self._count == 0:
                raise ValueError("batch frame declares zero messages")
        body_end = 2 + 3 * self._count
        if len(self._buffer) < body_end:
            return False
        if len(self._buffer) > body_end:
            raise ValueError(
                f"{len(self._buffer) - body_end} bytes beyond the end of "
                "the frame"
            )
        payload = bytes(self._buffer[2:body_end])
        self._batch = [payload[i : i + 3] for i in range(0, len(payload), 3)]
        return True


def recv_batch(sock: socket.socket, expected_tag: bytes) -> list[bytes]:
    """Receive a READINGS/CAPS batch of 3-byte messages.

    Raises:
        ValueError: unexpected frame tag.
    """
    if expected_tag not in _BATCH_TAGS:
        raise ValueError(f"not a batch tag: {expected_tag!r}")
    tag = recv_exact(sock, 1)
    if tag != expected_tag:
        raise ValueError(f"expected {expected_tag!r}, got {tag!r}")
    count = recv_exact(sock, 1)[0]
    payload = recv_exact(sock, 3 * count)
    return [payload[i : i + 3] for i in range(0, len(payload), 3)]

"""The DPS central server over real TCP sockets (paper §4.3).

``DeployServer`` is the deployable counterpart of the in-memory
:class:`repro.comm.service.PowerServer`: it listens on a TCP port, waits
for every client daemon to register, and then runs one-second control
cycles — poll every client, collect readings, run the bound power
manager, push per-unit CAPS frames back.

The cycle is a concurrent fan-out/fan-in, not a sequential
request/response chain: POLL is broadcast to every healthy client up
front, READINGS batches are collected by a ``selectors``-driven event
loop with per-client incremental frame reassembly
(:class:`~repro.deploy.framing.BatchAssembler`) under a single per-cycle
deadline, and CAPS batches are dispatched to every client without
waiting on any acknowledgement.  Cycle wall time is therefore
max-of-clients instead of sum-of-clients — a slow (not yet dead) client
no longer stalls its peers, it simply misses the deadline and takes the
quarantine/fallback path.  ``poll_mode="sequential"`` keeps the
artifact's strict blocking chain as a baseline for benchmarks and
determinism checks.

A control cycle survives partial failures: a client that misses the
deadline, disconnects, or violates the protocol is *quarantined* (its
connection is closed — a framed request/response stream cannot be
trusted after a mid-frame fault) instead of killing the controller.
Quarantined clients walk the
:class:`~repro.resilience.health.ClientHealth` state machine
(DEGRADED → DEAD under exponential-backoff rejoin windows), their units
fall back to a configurable reading policy, and a dead client's daemon
may reconnect and re-register through the HELLO-rejoin path drained at
the top of every cycle.  The cluster budget stays enforced throughout:
the manager's budget invariant holds for whatever reading vector the
cycle assembles.

Collection order is an I/O detail, never a semantic one: batches are
buffered as they arrive, and all decoding, validation, health
transitions, and event emission happen in a post-collection pass over
the clients in registration order — so a session's trace is
reproducible cycle-for-cycle regardless of which client answered first.
"""

from __future__ import annotations

import math
import select
import selectors
import socket
import time
from dataclasses import dataclass, field

import numpy as np

from repro.comm.net import bind_listener
from repro.comm.protocol import MSG_CAP, MSG_READING, decode, encode, quantize_w
from repro.core.managers import PowerManager
from repro.deploy import framing
from repro.resilience.health import ClientHealth, HealthState, ResilienceConfig
from repro.safety import (
    BudgetEnvelope,
    BudgetGuard,
    InvariantContext,
    InvariantMonitor,
    SafetyConfig,
    last_readjust_grants,
)
from repro.telemetry.log import (
    CyclePhaseTimings,
    CycleTimingLog,
    ResilienceEventLog,
)

__all__ = ["DeployServer", "DeployCycleStats", "PROTOCOL_MAX_W"]

#: Largest value a 3-byte protocol message can carry (§6.5 wire format).
PROTOCOL_MAX_W = 409.5

_ZERO_TIMINGS = CyclePhaseTimings(
    cycle=0, rejoin_s=0.0, poll_s=0.0, collect_s=0.0, decide_s=0.0,
    dispatch_s=0.0,
)


def _configure_conn(conn: socket.socket, timeout_s: float) -> None:
    """Per-connection socket options of the control plane.

    TCP_NODELAY matters here: the protocol exchanges single-digit-byte
    frames once per second, exactly the pattern where Nagle's algorithm
    interacting with delayed ACKs adds ~40 ms per exchange — dwarfing the
    sub-millisecond turnaround §6.5 claims.
    """
    conn.settimeout(timeout_s)
    try:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass  # Not fatal; some transports reject the option.


@dataclass(frozen=True)
class DeployCycleStats:
    """Traffic, health, and timing accounting of one TCP control cycle.

    Attributes:
        bytes_up / bytes_down: reading / cap payload bytes (3 B messages,
            excluding the 2-byte frame headers).
        readings_w: the reading vector the manager consumed this cycle —
            decoded wire values for healthy clients, fallback values for
            quarantined ones.
        n_healthy / n_degraded / n_dead: client health census after the
            cycle.
        fallback_units: units whose reading came from the fallback policy.
        caps_clamped: cap messages clamped into the protocol's value range
            (``[0, 409.5]`` W) this cycle.
        quarantined: node ids quarantined *during* this cycle.
        rejoined: node ids re-integrated during this cycle.
        timings: wall-clock phase breakdown (rejoin / poll / collect /
            decide / dispatch) of this cycle.
        guard_rung: degradation-ladder rung the budget guard took this
            cycle (None when no enforcement was needed or the safety
            envelope is disabled).
    """

    bytes_up: int
    bytes_down: int
    readings_w: np.ndarray
    n_healthy: int = 0
    n_degraded: int = 0
    n_dead: int = 0
    fallback_units: int = 0
    caps_clamped: int = 0
    quarantined: tuple[int, ...] = ()
    rejoined: tuple[int, ...] = ()
    timings: CyclePhaseTimings = _ZERO_TIMINGS
    guard_rung: str | None = None


@dataclass(eq=False)  # Identity semantics: records key selector maps.
class _ClientRecord:
    """Server-side state of one registered client."""

    conn: socket.socket | None
    node_id: int
    base: int
    n_units: int
    health: ClientHealth = field(
        default_factory=lambda: ClientHealth(ResilienceConfig())
    )
    #: True once the current quarantine episode's fallback was logged.
    fallback_announced: bool = False


class DeployServer:
    """TCP control server with per-client failure isolation.

    Args:
        manager: a *bound* power manager whose unit count equals the sum
            of the registered clients' units.
        host / port: listen address; port 0 picks a free port (see
            :attr:`address` after construction).
        timeout_s: the per-cycle collection deadline (and the per-socket
            timeout of registration/dispatch writes) — a stuck client is
            quarantined instead of hanging the controller.
        resilience: quarantine/backoff/fallback configuration.
        events: structured event sink for quarantine/fallback/clamp
            transitions (an internal log is created if omitted; see
            :attr:`events`).  Event times are control-cycle indices — the
            deploy layer has no simulated clock.
        poll_mode: ``"concurrent"`` (default) broadcasts POLL and
            collects readings under one deadline; ``"sequential"`` polls
            one client at a time over blocking sockets (the artifact's
            original chain, kept as a benchmark baseline).
        safety: budget-safety envelope configuration.  When given, the
            server tracks commanded/dispatched/applied cap views per
            unit (:attr:`envelope`), enforces the budget on worst-case
            committed power at the actuation boundary (:attr:`guard`),
            and runs the runtime invariant monitors (:attr:`monitor`).
            All ``budget_*`` / ``invariant_violation`` emissions land in
            :attr:`events`.
    """

    def __init__(
        self,
        manager: PowerManager,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_s: float = 5.0,
        resilience: ResilienceConfig | None = None,
        events: ResilienceEventLog | None = None,
        poll_mode: str = "concurrent",
        safety: SafetyConfig | None = None,
    ) -> None:
        if poll_mode not in ("concurrent", "sequential"):
            raise ValueError(
                f"poll_mode must be 'concurrent' or 'sequential', "
                f"got {poll_mode!r}"
            )
        self.manager = manager
        self.timeout_s = timeout_s
        self.poll_mode = poll_mode
        self.resilience = resilience or ResilienceConfig()
        self.events = events if events is not None else ResilienceEventLog()
        #: Per-cycle phase timings (the §6.5 overhead instrumentation).
        self.timings = CycleTimingLog()
        # A whole cluster's daemons may connect before accept_clients
        # drains them; a short backlog would time their connects out.
        # bind_listener also retries a pinned port through a transient
        # EADDRINUSE, so multi-server harnesses can't flake on binds.
        self._listener = bind_listener(
            host, port, backlog=128, timeout_s=timeout_s
        )
        self._clients: list[_ClientRecord] = []
        self._closed = False
        self._cycle = 0
        self._last_good: np.ndarray | None = None
        #: Total cap messages clamped into the protocol range (all cycles).
        self.total_caps_clamped = 0

        self.safety = safety
        #: Cap-view ledger / budget guard / invariant monitor — None when
        #: the safety envelope is disabled.
        self.envelope: BudgetEnvelope | None = None
        self.guard: BudgetGuard | None = None
        self.monitor: InvariantMonitor | None = None
        if safety is not None:
            self.envelope = BudgetEnvelope(
                manager.n_units, manager.budget_w, manager.max_cap_w
            )
            self.guard = BudgetGuard(
                self.envelope,
                min_cap_w=manager.min_cap_w,
                events=self.events,
                dry_run=not safety.guard,
            )
            if safety.invariant_mode != "off":
                self.monitor = InvariantMonitor(
                    mode=safety.invariant_mode,
                    sample_every=safety.sample_every,
                    events=self.events,
                    raise_on_violation=safety.raise_on_violation,
                )
            self._hook_rescale_events()

    def _hook_rescale_events(self) -> None:
        """Surface manager-level budget rescales as structured events.

        Walks the manager stack (recovery / resilience wrappers) and
        attaches the ``on_budget_rescaled`` callback to every member that
        exposes it and has no callback yet — only whoever actually
        rescales ever fires.
        """
        seen: set[int] = set()
        node: object | None = self.manager
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if getattr(node, "on_budget_rescaled", False) is None:
                node.on_budget_rescaled = self._emit_budget_rescaled
            node = getattr(node, "manager", None) or getattr(node, "inner", None)

    def _emit_budget_rescaled(self, name: str, over_w: float) -> None:
        self.events.emit(
            float(self._cycle),
            "budget_rescaled",
            detail=f"manager={name} overshoot={over_w:.3f}W",
        )

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server listens on."""
        return self._listener.getsockname()

    @property
    def n_registered_units(self) -> int:
        """Units across all registered clients."""
        return sum(c.n_units for c in self._clients)

    @property
    def health(self) -> dict[int, HealthState]:
        """Current health state per registered node id."""
        return {c.node_id: c.health.state for c in self._clients}

    def accept_clients(self, n_clients: int) -> None:
        """Block until ``n_clients`` have connected and sent HELLO.

        On a failed registration (over-registration or duplicate node id)
        every connection accepted by *this call* is sent QUIT and closed
        before the error propagates, so no half-registered session leaks.

        Raises:
            ValueError: registered units exceed the manager's binding, or
                a node id registers twice.
        """
        accepted: list[_ClientRecord] = []
        try:
            for _ in range(n_clients):
                conn, _ = self._listener.accept()
                _configure_conn(conn, self.timeout_s)
                try:
                    hello = framing.recv_hello(conn)
                    base = self.n_registered_units
                    if any(
                        c.node_id == hello.node_id for c in self._clients
                    ):
                        raise ValueError(
                            f"node {hello.node_id} is already registered"
                        )
                    if base + hello.n_units > self.manager.n_units:
                        raise ValueError(
                            f"client node {hello.node_id} would register "
                            f"unit {base + hello.n_units} but the manager "
                            f"is bound to {self.manager.n_units}"
                        )
                except BaseException:
                    conn.close()
                    raise
                record = _ClientRecord(
                    conn=conn,
                    node_id=hello.node_id,
                    base=base,
                    n_units=hello.n_units,
                    health=ClientHealth(self.resilience),
                )
                self._clients.append(record)
                accepted.append(record)
        except BaseException:
            for record in accepted:
                if record.conn is not None:
                    try:
                        framing.send_tag(record.conn, framing.FRAME_QUIT)
                    except OSError:
                        pass
                    record.conn.close()
                self._clients.remove(record)
            raise

    # ------------------------------------------------------------------
    # Failure isolation internals.
    # ------------------------------------------------------------------

    def _quarantine(self, record: _ClientRecord, reason: str) -> None:
        """Close a faulted client's connection and advance its health."""
        if record.conn is not None:
            record.conn.close()
            record.conn = None
        state = record.health.record_failure()
        self.events.emit(
            float(self._cycle),
            "client_quarantined",
            node_id=record.node_id,
            detail=reason,
        )
        if state is HealthState.DEAD:
            self.events.emit(
                float(self._cycle),
                "client_dead",
                node_id=record.node_id,
                detail=f"after {record.health.consecutive_failures} failures",
            )

    def _drain_rejoins(self) -> list[int]:
        """Accept pending reconnects and re-attach known quarantined nodes.

        A pending connection must HELLO as a quarantined node id with the
        same unit count it registered originally; anything else is closed.
        Returns the node ids that rejoined.
        """
        rejoined = []
        while True:
            ready, _, _ = select.select([self._listener], [], [], 0.0)
            if not ready:
                break
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break
            _configure_conn(conn, self.timeout_s)
            try:
                hello = framing.recv_hello(conn)
            except (OSError, ValueError, ConnectionError):
                conn.close()
                continue
            record = next(
                (
                    c
                    for c in self._clients
                    if c.node_id == hello.node_id
                    and c.health.quarantined
                    and c.n_units == hello.n_units
                ),
                None,
            )
            if record is None:
                conn.close()
                continue
            record.conn = conn
            record.health.rejoin()
            record.fallback_announced = False
            rejoined.append(record.node_id)
            self.events.emit(
                float(self._cycle),
                "client_rejoined",
                node_id=record.node_id,
            )
        return rejoined

    def _fallback_readings(
        self, record: _ClientRecord, readings: np.ndarray
    ) -> None:
        """Fill a quarantined client's slice of the reading vector."""
        lo, hi = record.base, record.base + record.n_units
        if self.resilience.fallback == "assume-tdp":
            readings[lo:hi] = self.manager.max_cap_w
        else:  # hold-last
            assert self._last_good is not None
            readings[lo:hi] = self._last_good[lo:hi]

    # ------------------------------------------------------------------
    # The control cycle.
    # ------------------------------------------------------------------

    def control_cycle(self) -> DeployCycleStats:
        """Run one poll → collect → decide → dispatch cycle over TCP.

        Client faults (deadline miss, disconnect, protocol violation)
        quarantine the client and substitute fallback readings; the cycle
        itself always completes and reports the health census and phase
        timings in its stats.

        Raises:
            RuntimeError: no clients registered, registration does not
                cover the manager's units, or the manager emitted a
                non-finite cap (configuration / server-side errors, not
                client faults).
        """
        if not self._clients:
            raise RuntimeError("no clients registered")
        if self.n_registered_units != self.manager.n_units:
            raise RuntimeError(
                f"{self.n_registered_units} registered units != manager's "
                f"{self.manager.n_units}"
            )
        self._cycle += 1
        if self._last_good is None:
            # Neutral prior before any reading: the equal-share cap.
            self._last_good = np.full(
                self.manager.n_units, self.manager.initial_cap_w
            )

        t0 = time.perf_counter()
        rejoined = self._drain_rejoins()
        t1 = time.perf_counter()

        # Seed from the last-good vector: a slot a client fails to report
        # (or reports invalidly) holds a trusted value, never whatever
        # np.empty found in memory.
        readings = self._last_good.copy()
        fallback_units = 0
        quarantined_now: list[int] = []
        polled: list[_ClientRecord] = []
        for record in self._clients:
            if record.health.quarantined:
                before = record.health.state
                after = record.health.tick()
                if (
                    after is HealthState.DEAD
                    and before is not HealthState.DEAD
                ):
                    self.events.emit(
                        float(self._cycle),
                        "client_dead",
                        node_id=record.node_id,
                        detail="rejoin window expired",
                    )
                self._fallback_readings(record, readings)
                fallback_units += record.n_units
                if not record.fallback_announced:
                    record.fallback_announced = True
                    self.events.emit(
                        float(self._cycle),
                        "fallback_applied",
                        node_id=record.node_id,
                        detail=self.resilience.fallback,
                    )
            else:
                polled.append(record)

        if self.poll_mode == "concurrent":
            pending, errors = self._broadcast_poll(polled)
            t2 = time.perf_counter()
            raw, collect_errors = self._collect_readings(pending)
            errors.update(collect_errors)
        else:
            raw, errors = self._poll_sequential(polled)
            t2 = time.perf_counter()

        # Post-collection pass in registration order: decode, validate,
        # and transition health deterministically — arrival order was
        # only ever an I/O detail.
        bytes_up = 0
        for record in polled:
            if record.node_id in errors:
                self._quarantine(record, errors[record.node_id])
                quarantined_now.append(record.node_id)
                self._fallback_readings(record, readings)
                fallback_units += record.n_units
                continue
            try:
                bytes_up += self._ingest_readings(
                    record, raw[record.node_id], readings
                )
                record.health.record_success()
                if self.envelope is not None:
                    # The client programs a CAPS batch before answering
                    # its next POLL, so a valid READINGS batch is the
                    # acknowledgement that the previous dispatch landed.
                    self.envelope.confirm_applied(
                        slice(record.base, record.base + record.n_units)
                    )
            except (RuntimeError, ValueError) as exc:
                self._quarantine(record, f"readings: {exc}")
                quarantined_now.append(record.node_id)
                self._fallback_readings(record, readings)
                fallback_units += record.n_units

        for record in self._clients:
            if not record.health.quarantined:
                lo, hi = record.base, record.base + record.n_units
                self._last_good[lo:hi] = readings[lo:hi]
        t3 = time.perf_counter()

        caps = self.manager.step(readings)
        guard_rung: str | None = None
        if self.envelope is not None:
            assert self.guard is not None
            self.envelope.record_commanded(caps)
            unreachable = np.zeros(self.manager.n_units, dtype=bool)
            for record in self._clients:
                if record.health.quarantined:
                    lo, hi = record.base, record.base + record.n_units
                    unreachable[lo:hi] = True
            decision = self.guard.enforce(
                caps,
                now=float(self._cycle),
                unreachable=unreachable,
                assume_tdp=self.resilience.fallback == "assume-tdp",
                grants_w=last_readjust_grants(self.manager),
            )
            caps = decision.caps_w
            guard_rung = decision.rung
        t4 = time.perf_counter()

        bytes_down, caps_clamped = self._dispatch_caps(caps, quarantined_now)
        if self.monitor is not None:
            # After dispatch on purpose: a strict-mode raise still fails
            # the run this very cycle, but the clients are not left
            # half-polled awaiting a CAPS batch that never comes.
            self.monitor.run(
                InvariantContext(
                    budget_w=self.manager.budget_w,
                    min_cap_w=self.manager.min_cap_w,
                    max_cap_w=self.manager.max_cap_w,
                    caps_w=caps,
                    readings_w=readings,
                    manager=self.manager,
                ),
                now=float(self._cycle),
            )
        t5 = time.perf_counter()

        timings = CyclePhaseTimings(
            cycle=self._cycle,
            rejoin_s=t1 - t0,
            poll_s=t2 - t1,
            collect_s=t3 - t2,
            decide_s=t4 - t3,
            dispatch_s=t5 - t4,
        )
        self.timings.record(timings)

        census = {state: 0 for state in HealthState}
        for record in self._clients:
            census[record.health.state] += 1
        return DeployCycleStats(
            bytes_up=bytes_up,
            bytes_down=bytes_down,
            readings_w=readings,
            n_healthy=census[HealthState.HEALTHY],
            n_degraded=census[HealthState.DEGRADED],
            n_dead=census[HealthState.DEAD],
            fallback_units=fallback_units,
            caps_clamped=caps_clamped,
            quarantined=tuple(quarantined_now),
            rejoined=tuple(rejoined),
            timings=timings,
            guard_rung=guard_rung,
        )

    def _broadcast_poll(
        self, polled: list[_ClientRecord]
    ) -> tuple[dict[_ClientRecord, framing.BatchAssembler], dict[int, str]]:
        """Fan-out: send POLL to every healthy client before reading any.

        Returns the clients awaiting collection (with their frame
        assemblers) and the send failures keyed by node id.
        """
        pending: dict[_ClientRecord, framing.BatchAssembler] = {}
        errors: dict[int, str] = {}
        for record in polled:
            assert record.conn is not None
            try:
                framing.send_tag(record.conn, framing.FRAME_POLL)
            except OSError as exc:
                errors[record.node_id] = f"poll: {exc}"
            else:
                pending[record] = framing.BatchAssembler(
                    framing.FRAME_READINGS
                )
        return pending, errors

    def _collect_readings(
        self, pending: dict[_ClientRecord, framing.BatchAssembler]
    ) -> tuple[dict[int, list[bytes]], dict[int, str]]:
        """Fan-in: collect READINGS batches under one per-cycle deadline.

        Every pending socket is watched by one selector; whatever bytes a
        client has ready are fed to its frame assembler.  A client that
        has not completed a valid batch when the deadline expires is
        reported as errored — it delays nobody else.
        """
        raw: dict[int, list[bytes]] = {}
        errors: dict[int, str] = {}
        if not pending:
            return raw, errors
        sel = selectors.DefaultSelector()
        outstanding: set[int] = set()
        for record, assembler in pending.items():
            sel.register(
                record.conn, selectors.EVENT_READ, (record, assembler)
            )
            outstanding.add(record.node_id)
        deadline = time.monotonic() + self.timeout_s
        try:
            while outstanding:
                remaining_s = deadline - time.monotonic()
                if remaining_s <= 0:
                    break
                for key, _ in sel.select(remaining_s):
                    record, assembler = key.data
                    failure: str | None = None
                    complete = False
                    try:
                        data = key.fileobj.recv(65536)
                    except OSError as exc:
                        failure = f"readings: {exc}"
                    else:
                        if not data:
                            failure = "readings: peer closed mid-collection"
                        else:
                            try:
                                complete = assembler.feed(data)
                            except ValueError as exc:
                                failure = f"readings: {exc}"
                    if failure is not None or complete:
                        sel.unregister(key.fileobj)
                        outstanding.discard(record.node_id)
                        if failure is not None:
                            errors[record.node_id] = failure
                        else:
                            raw[record.node_id] = assembler.batch
            for node_id in outstanding:
                errors[node_id] = (
                    "readings: no complete batch within the "
                    f"{self.timeout_s} s cycle deadline"
                )
        finally:
            sel.close()
        return raw, errors

    def _poll_sequential(
        self, polled: list[_ClientRecord]
    ) -> tuple[dict[int, list[bytes]], dict[int, str]]:
        """The artifact's baseline: blocking request/response per client."""
        raw: dict[int, list[bytes]] = {}
        errors: dict[int, str] = {}
        for record in polled:
            assert record.conn is not None
            try:
                framing.send_tag(record.conn, framing.FRAME_POLL)
                raw[record.node_id] = framing.recv_batch(
                    record.conn, framing.FRAME_READINGS
                )
            except (OSError, ValueError) as exc:
                errors[record.node_id] = f"poll: {exc}"
        return raw, errors

    def _ingest_readings(
        self,
        record: _ClientRecord,
        batch: list[bytes],
        readings: np.ndarray,
    ) -> int:
        """Validate one READINGS batch and write it into ``readings``.

        The batch must carry exactly one reading per unit: duplicate or
        out-of-range unit ids are protocol violations, not tolerable
        noise — with ``np.empty``-style assembly a duplicate would leave
        a slot holding garbage memory for the manager to consume.
        Nothing is written unless the whole batch validates.

        Raises:
            RuntimeError / ValueError: protocol violation (handled by the
                caller's quarantine path).
        """
        if len(batch) != record.n_units:
            raise RuntimeError(
                f"client sent {len(batch)} readings for "
                f"{record.n_units} units"
            )
        values = np.empty(record.n_units, dtype=np.float64)
        seen = np.zeros(record.n_units, dtype=bool)
        bytes_up = 0
        for payload in batch:
            msg = decode(payload)
            if msg.kind != MSG_READING:
                raise RuntimeError(f"expected reading, got {msg}")
            if msg.unit >= record.n_units:
                raise RuntimeError(
                    f"reading for unit {msg.unit} out of range "
                    f"[0, {record.n_units})"
                )
            if seen[msg.unit]:
                raise RuntimeError(
                    f"duplicate reading for unit {msg.unit}"
                )
            seen[msg.unit] = True
            values[msg.unit] = msg.value_w
            bytes_up += len(payload)
        readings[record.base : record.base + record.n_units] = values
        return bytes_up

    def _dispatch_caps(
        self, caps: np.ndarray, quarantined_now: list[int]
    ) -> tuple[int, int]:
        """Clamp, encode, and send every healthy client's CAPS batch.

        All batches are built (and all caps validated) before any frame
        is written: a non-finite cap is a server-side bug and must abort
        the dispatch loudly instead of raising inside the send loop and
        quarantining whichever healthy client happened to be next.

        Returns ``(bytes_down, caps_clamped)``.

        Raises:
            RuntimeError: the manager emitted a NaN/inf cap.
        """
        batches: list[tuple[_ClientRecord, list[bytes], np.ndarray]] = []
        caps_clamped = 0
        for record in self._clients:
            if record.health.quarantined:
                continue
            batch = []
            wire = np.empty(record.n_units, dtype=np.float64)
            for local in range(record.n_units):
                unit = record.base + local
                cap = float(caps[unit])
                if not math.isfinite(cap):
                    raise RuntimeError(
                        f"manager emitted non-finite cap {cap!r} for "
                        f"unit {unit}"
                    )
                clamped = min(max(cap, 0.0), PROTOCOL_MAX_W)
                if clamped != cap:
                    caps_clamped += 1
                    self.events.emit(
                        float(self._cycle),
                        "cap_clamped",
                        unit=unit,
                        node_id=record.node_id,
                        detail=f"{cap:.1f}->{clamped:.1f}",
                    )
                wire[local] = quantize_w(clamped)
                batch.append(encode(MSG_CAP, local, clamped))
            batches.append((record, batch, wire))
        bytes_down = 0
        for record, batch, wire in batches:
            try:
                bytes_down += framing.send_batch(
                    record.conn, framing.FRAME_CAPS, batch
                )
            except OSError as exc:
                self._quarantine(record, f"caps: {exc}")
                quarantined_now.append(record.node_id)
            else:
                if self.envelope is not None:
                    # The dispatched view holds the exact wire value the
                    # client will program: post-clamp, post-quantization.
                    self.envelope.record_dispatched(
                        slice(record.base, record.base + record.n_units),
                        wire,
                    )
        self.total_caps_clamped += caps_clamped
        return bytes_down, caps_clamped

    def shutdown(self) -> None:
        """Send QUIT to every client and close all sockets (idempotent)."""
        if self._closed:
            return
        for record in self._clients:
            if record.conn is None:
                continue
            try:
                framing.send_tag(record.conn, framing.FRAME_QUIT)
            except OSError:
                pass
            record.conn.close()
        self._clients.clear()
        self._listener.close()
        self._closed = True

    def __enter__(self) -> "DeployServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

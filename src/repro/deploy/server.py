"""The DPS central server over real TCP sockets (paper §4.3).

``DeployServer`` is the deployable counterpart of the in-memory
:class:`repro.comm.service.PowerServer`: it listens on a TCP port, waits
for every client daemon to register, and then runs synchronous control
cycles — POLL every client, collect readings, run the bound power
manager, push per-unit CAPS frames back.  The cycle is strictly
request/response over persistent connections, matching the artifact's
one-second blocking decision loop.

Unlike the artifact's loop, a control cycle survives partial failures: a
client that times out, disconnects, or violates the protocol is
*quarantined* (its connection is closed — a framed request/response
stream cannot be trusted after a mid-frame fault) instead of killing the
controller.  Quarantined clients walk the
:class:`~repro.resilience.health.ClientHealth` state machine
(DEGRADED → DEAD under exponential-backoff rejoin windows), their units
fall back to a configurable reading policy, and a dead client's daemon
may reconnect and re-register through the HELLO-rejoin path drained at
the top of every cycle.  The cluster budget stays enforced throughout:
the manager's budget invariant holds for whatever reading vector the
cycle assembles.
"""

from __future__ import annotations

import select
import socket
from dataclasses import dataclass, field

import numpy as np

from repro.comm.protocol import MSG_CAP, MSG_READING, decode, encode
from repro.core.managers import PowerManager
from repro.deploy import framing
from repro.resilience.health import ClientHealth, HealthState, ResilienceConfig
from repro.telemetry.log import ResilienceEventLog

__all__ = ["DeployServer", "DeployCycleStats", "PROTOCOL_MAX_W"]

#: Largest value a 3-byte protocol message can carry (§6.5 wire format).
PROTOCOL_MAX_W = 409.5


@dataclass(frozen=True)
class DeployCycleStats:
    """Traffic and health accounting of one TCP control cycle.

    Attributes:
        bytes_up / bytes_down: reading / cap payload bytes (3 B messages,
            excluding the 2-byte frame headers).
        readings_w: the reading vector the manager consumed this cycle —
            decoded wire values for healthy clients, fallback values for
            quarantined ones.
        n_healthy / n_degraded / n_dead: client health census after the
            cycle.
        fallback_units: units whose reading came from the fallback policy.
        caps_clamped: cap messages clamped at the 3-byte protocol ceiling
            (409.5 W) this cycle.
        quarantined: node ids quarantined *during* this cycle.
        rejoined: node ids re-integrated during this cycle.
    """

    bytes_up: int
    bytes_down: int
    readings_w: np.ndarray
    n_healthy: int = 0
    n_degraded: int = 0
    n_dead: int = 0
    fallback_units: int = 0
    caps_clamped: int = 0
    quarantined: tuple[int, ...] = ()
    rejoined: tuple[int, ...] = ()


@dataclass
class _ClientRecord:
    """Server-side state of one registered client."""

    conn: socket.socket | None
    node_id: int
    base: int
    n_units: int
    health: ClientHealth = field(
        default_factory=lambda: ClientHealth(ResilienceConfig())
    )
    #: True once the current quarantine episode's fallback was logged.
    fallback_announced: bool = False


class DeployServer:
    """Blocking TCP control server with per-client failure isolation.

    Args:
        manager: a *bound* power manager whose unit count equals the sum
            of the registered clients' units.
        host / port: listen address; port 0 picks a free port (see
            :attr:`address` after construction).
        timeout_s: per-socket-operation timeout — a stuck client is
            quarantined instead of hanging the controller.
        resilience: quarantine/backoff/fallback configuration.
        events: structured event sink for quarantine/fallback/clamp
            transitions (an internal log is created if omitted; see
            :attr:`events`).  Event times are control-cycle indices — the
            deploy layer has no simulated clock.
    """

    def __init__(
        self,
        manager: PowerManager,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_s: float = 5.0,
        resilience: ResilienceConfig | None = None,
        events: ResilienceEventLog | None = None,
    ) -> None:
        self.manager = manager
        self.timeout_s = timeout_s
        self.resilience = resilience or ResilienceConfig()
        self.events = events if events is not None else ResilienceEventLog()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self._listener.settimeout(timeout_s)
        self._clients: list[_ClientRecord] = []
        self._closed = False
        self._cycle = 0
        self._last_good: np.ndarray | None = None
        #: Total cap messages clamped at the protocol ceiling (all cycles).
        self.total_caps_clamped = 0

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server listens on."""
        return self._listener.getsockname()

    @property
    def n_registered_units(self) -> int:
        """Units across all registered clients."""
        return sum(c.n_units for c in self._clients)

    @property
    def health(self) -> dict[int, HealthState]:
        """Current health state per registered node id."""
        return {c.node_id: c.health.state for c in self._clients}

    def accept_clients(self, n_clients: int) -> None:
        """Block until ``n_clients`` have connected and sent HELLO.

        On a failed registration (over-registration or duplicate node id)
        every connection accepted by *this call* is sent QUIT and closed
        before the error propagates, so no half-registered session leaks.

        Raises:
            ValueError: registered units exceed the manager's binding, or
                a node id registers twice.
        """
        accepted: list[_ClientRecord] = []
        try:
            for _ in range(n_clients):
                conn, _ = self._listener.accept()
                conn.settimeout(self.timeout_s)
                try:
                    hello = framing.recv_hello(conn)
                    base = self.n_registered_units
                    if any(
                        c.node_id == hello.node_id for c in self._clients
                    ):
                        raise ValueError(
                            f"node {hello.node_id} is already registered"
                        )
                    if base + hello.n_units > self.manager.n_units:
                        raise ValueError(
                            f"client node {hello.node_id} would register "
                            f"unit {base + hello.n_units} but the manager "
                            f"is bound to {self.manager.n_units}"
                        )
                except BaseException:
                    conn.close()
                    raise
                record = _ClientRecord(
                    conn=conn,
                    node_id=hello.node_id,
                    base=base,
                    n_units=hello.n_units,
                    health=ClientHealth(self.resilience),
                )
                self._clients.append(record)
                accepted.append(record)
        except BaseException:
            for record in accepted:
                if record.conn is not None:
                    try:
                        framing.send_tag(record.conn, framing.FRAME_QUIT)
                    except OSError:
                        pass
                    record.conn.close()
                self._clients.remove(record)
            raise

    # ------------------------------------------------------------------
    # Failure isolation internals.
    # ------------------------------------------------------------------

    def _quarantine(self, record: _ClientRecord, reason: str) -> None:
        """Close a faulted client's connection and advance its health."""
        if record.conn is not None:
            record.conn.close()
            record.conn = None
        state = record.health.record_failure()
        self.events.emit(
            float(self._cycle),
            "client_quarantined",
            node_id=record.node_id,
            detail=reason,
        )
        if state is HealthState.DEAD:
            self.events.emit(
                float(self._cycle),
                "client_dead",
                node_id=record.node_id,
                detail=f"after {record.health.consecutive_failures} failures",
            )

    def _drain_rejoins(self) -> list[int]:
        """Accept pending reconnects and re-attach known quarantined nodes.

        A pending connection must HELLO as a quarantined node id with the
        same unit count it registered originally; anything else is closed.
        Returns the node ids that rejoined.
        """
        rejoined = []
        while True:
            ready, _, _ = select.select([self._listener], [], [], 0.0)
            if not ready:
                break
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break
            conn.settimeout(self.timeout_s)
            try:
                hello = framing.recv_hello(conn)
            except (OSError, ValueError, ConnectionError):
                conn.close()
                continue
            record = next(
                (
                    c
                    for c in self._clients
                    if c.node_id == hello.node_id
                    and c.health.quarantined
                    and c.n_units == hello.n_units
                ),
                None,
            )
            if record is None:
                conn.close()
                continue
            record.conn = conn
            record.health.rejoin()
            record.fallback_announced = False
            rejoined.append(record.node_id)
            self.events.emit(
                float(self._cycle),
                "client_rejoined",
                node_id=record.node_id,
            )
        return rejoined

    def _fallback_readings(
        self, record: _ClientRecord, readings: np.ndarray
    ) -> None:
        """Fill a quarantined client's slice of the reading vector."""
        lo, hi = record.base, record.base + record.n_units
        if self.resilience.fallback == "assume-tdp":
            readings[lo:hi] = self.manager.max_cap_w
        else:  # hold-last
            assert self._last_good is not None
            readings[lo:hi] = self._last_good[lo:hi]

    # ------------------------------------------------------------------
    # The control cycle.
    # ------------------------------------------------------------------

    def control_cycle(self) -> DeployCycleStats:
        """Run one poll → decide → cap cycle over TCP.

        Client faults (timeout, disconnect, protocol violation) quarantine
        the client and substitute fallback readings; the cycle itself
        always completes and reports the health census in its stats.

        Raises:
            RuntimeError: no clients registered, or registration does not
                cover the manager's units (configuration errors, not
                runtime faults).
        """
        if not self._clients:
            raise RuntimeError("no clients registered")
        if self.n_registered_units != self.manager.n_units:
            raise RuntimeError(
                f"{self.n_registered_units} registered units != manager's "
                f"{self.manager.n_units}"
            )
        self._cycle += 1
        if self._last_good is None:
            # Neutral prior before any reading: the equal-share cap.
            self._last_good = np.full(
                self.manager.n_units, self.manager.initial_cap_w
            )

        rejoined = self._drain_rejoins()

        readings = np.empty(self.manager.n_units, dtype=np.float64)
        bytes_up = 0
        fallback_units = 0
        quarantined_now: list[int] = []
        for record in self._clients:
            if record.health.quarantined:
                before = record.health.state
                after = record.health.tick()
                if (
                    after is HealthState.DEAD
                    and before is not HealthState.DEAD
                ):
                    self.events.emit(
                        float(self._cycle),
                        "client_dead",
                        node_id=record.node_id,
                        detail="rejoin window expired",
                    )
                self._fallback_readings(record, readings)
                fallback_units += record.n_units
                if not record.fallback_announced:
                    record.fallback_announced = True
                    self.events.emit(
                        float(self._cycle),
                        "fallback_applied",
                        node_id=record.node_id,
                        detail=self.resilience.fallback,
                    )
                continue
            try:
                bytes_up += self._poll_client(record, readings)
                record.health.record_success()
            except (OSError, ValueError, RuntimeError) as exc:
                self._quarantine(record, f"poll: {exc}")
                quarantined_now.append(record.node_id)
                self._fallback_readings(record, readings)
                fallback_units += record.n_units

        for record in self._clients:
            if not record.health.quarantined:
                lo, hi = record.base, record.base + record.n_units
                self._last_good[lo:hi] = readings[lo:hi]

        caps = self.manager.step(readings)

        bytes_down = 0
        caps_clamped = 0
        for record in self._clients:
            if record.health.quarantined:
                continue
            batch = []
            for local in range(record.n_units):
                cap = float(caps[record.base + local])
                if cap > PROTOCOL_MAX_W:
                    caps_clamped += 1
                    self.events.emit(
                        float(self._cycle),
                        "cap_clamped",
                        unit=record.base + local,
                        node_id=record.node_id,
                        detail=f"{cap:.1f}->{PROTOCOL_MAX_W}",
                    )
                    cap = PROTOCOL_MAX_W
                batch.append(encode(MSG_CAP, local, cap))
            try:
                bytes_down += framing.send_batch(
                    record.conn, framing.FRAME_CAPS, batch
                )
            except (OSError, ValueError) as exc:
                self._quarantine(record, f"caps: {exc}")
                quarantined_now.append(record.node_id)
        self.total_caps_clamped += caps_clamped

        census = {state: 0 for state in HealthState}
        for record in self._clients:
            census[record.health.state] += 1
        return DeployCycleStats(
            bytes_up=bytes_up,
            bytes_down=bytes_down,
            readings_w=readings,
            n_healthy=census[HealthState.HEALTHY],
            n_degraded=census[HealthState.DEGRADED],
            n_dead=census[HealthState.DEAD],
            fallback_units=fallback_units,
            caps_clamped=caps_clamped,
            quarantined=tuple(quarantined_now),
            rejoined=tuple(rejoined),
        )

    def _poll_client(
        self, record: _ClientRecord, readings: np.ndarray
    ) -> int:
        """POLL one healthy client into ``readings``; returns bytes read.

        Raises:
            OSError / ValueError / RuntimeError: socket or protocol fault
                (handled by the caller's quarantine path).
        """
        assert record.conn is not None
        framing.send_tag(record.conn, framing.FRAME_POLL)
        batch = framing.recv_batch(record.conn, framing.FRAME_READINGS)
        if len(batch) != record.n_units:
            raise RuntimeError(
                f"client at base {record.base} sent {len(batch)} readings "
                f"for {record.n_units} units"
            )
        bytes_up = 0
        for payload in batch:
            msg = decode(payload)
            if msg.kind != MSG_READING:
                raise RuntimeError(f"expected reading, got {msg}")
            if msg.unit >= record.n_units:
                raise RuntimeError(
                    f"reading for unit {msg.unit} out of range "
                    f"[0, {record.n_units})"
                )
            readings[record.base + msg.unit] = msg.value_w
            bytes_up += len(payload)
        return bytes_up

    def shutdown(self) -> None:
        """Send QUIT to every client and close all sockets (idempotent)."""
        if self._closed:
            return
        for record in self._clients:
            if record.conn is None:
                continue
            try:
                framing.send_tag(record.conn, framing.FRAME_QUIT)
            except OSError:
                pass
            record.conn.close()
        self._clients.clear()
        self._listener.close()
        self._closed = True

    def __enter__(self) -> "DeployServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

"""The DPS central server over real TCP sockets (paper §4.3).

``DeployServer`` is the deployable counterpart of the in-memory
:class:`repro.comm.service.PowerServer`: it listens on a TCP port, waits
for every client daemon to register, and then runs synchronous control
cycles — POLL every client, collect readings, run the bound power
manager, push per-unit CAPS frames back.  The cycle is strictly
request/response over persistent connections, matching the artifact's
one-second blocking decision loop.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass

import numpy as np

from repro.comm.protocol import MSG_CAP, MSG_READING, decode, encode
from repro.core.managers import PowerManager
from repro.deploy import framing

__all__ = ["DeployServer", "DeployCycleStats"]


@dataclass(frozen=True)
class DeployCycleStats:
    """Traffic accounting of one TCP control cycle.

    Attributes:
        bytes_up / bytes_down: reading / cap payload bytes (3 B messages,
            excluding the 2-byte frame headers).
        readings_w: the decoded reading vector of the cycle.
    """

    bytes_up: int
    bytes_down: int
    readings_w: np.ndarray


class DeployServer:
    """Blocking TCP control server.

    Args:
        manager: a *bound* power manager whose unit count equals the sum
            of the registered clients' units.
        host / port: listen address; port 0 picks a free port (see
            :attr:`address` after construction).
        timeout_s: per-socket-operation timeout — a stuck client fails the
            cycle instead of hanging the controller.
    """

    def __init__(
        self,
        manager: PowerManager,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_s: float = 5.0,
    ) -> None:
        self.manager = manager
        self.timeout_s = timeout_s
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self._listener.settimeout(timeout_s)
        #: (connection, node_id, base_unit, n_units), registration order.
        self._clients: list[tuple[socket.socket, int, int, int]] = []
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server listens on."""
        return self._listener.getsockname()

    @property
    def n_registered_units(self) -> int:
        """Units across all registered clients."""
        return sum(c[3] for c in self._clients)

    def accept_clients(self, n_clients: int) -> None:
        """Block until ``n_clients`` have connected and sent HELLO.

        Raises:
            ValueError: registered units exceed the manager's binding.
        """
        for _ in range(n_clients):
            conn, _ = self._listener.accept()
            conn.settimeout(self.timeout_s)
            hello = framing.recv_hello(conn)
            base = self.n_registered_units
            if base + hello.n_units > self.manager.n_units:
                conn.close()
                raise ValueError(
                    f"client node {hello.node_id} would register unit "
                    f"{base + hello.n_units} but the manager is bound to "
                    f"{self.manager.n_units}"
                )
            self._clients.append((conn, hello.node_id, base, hello.n_units))

    def control_cycle(self) -> DeployCycleStats:
        """Run one poll → decide → cap cycle over TCP.

        Raises:
            RuntimeError: no clients registered, or registration does not
                cover the manager's units.
        """
        if not self._clients:
            raise RuntimeError("no clients registered")
        if self.n_registered_units != self.manager.n_units:
            raise RuntimeError(
                f"{self.n_registered_units} registered units != manager's "
                f"{self.manager.n_units}"
            )
        readings = np.empty(self.manager.n_units, dtype=np.float64)
        bytes_up = 0
        for conn, _, base, n_units in self._clients:
            framing.send_tag(conn, framing.FRAME_POLL)
            batch = framing.recv_batch(conn, framing.FRAME_READINGS)
            if len(batch) != n_units:
                raise RuntimeError(
                    f"client at base {base} sent {len(batch)} readings "
                    f"for {n_units} units"
                )
            for payload in batch:
                msg = decode(payload)
                if msg.kind != MSG_READING:
                    raise RuntimeError(f"expected reading, got {msg}")
                readings[base + msg.unit] = msg.value_w
                bytes_up += len(payload)

        caps = self.manager.step(readings)

        bytes_down = 0
        for conn, _, base, n_units in self._clients:
            batch = [
                encode(MSG_CAP, local, min(float(caps[base + local]), 409.5))
                for local in range(n_units)
            ]
            bytes_down += framing.send_batch(
                conn, framing.FRAME_CAPS, batch
            )
        return DeployCycleStats(
            bytes_up=bytes_up, bytes_down=bytes_down, readings_w=readings
        )

    def shutdown(self) -> None:
        """Send QUIT to every client and close all sockets (idempotent)."""
        if self._closed:
            return
        for conn, _, _, _ in self._clients:
            try:
                framing.send_tag(conn, framing.FRAME_QUIT)
            except OSError:
                pass
            conn.close()
        self._clients.clear()
        self._listener.close()
        self._closed = True

    def __enter__(self) -> "DeployServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

"""Loopback deployment: the full TCP control plane in one process.

Runs the real :class:`~repro.deploy.server.DeployServer` and one
:class:`~repro.deploy.client.DeployClient` thread per node over localhost
TCP, while the calling thread advances the simulated cluster physics —
the closest this repo gets to the artifact's actual deployment, exercising
sockets, framing, quantization, and the threaded daemons end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.managers import PowerManager
from repro.deploy.client import DeployClient
from repro.deploy.server import DeployServer

__all__ = ["LoopbackResult", "run_loopback"]


@dataclass
class LoopbackResult:
    """Outcome of a loopback session.

    Attributes:
        cycles: control cycles executed.
        bytes_total: protocol payload bytes both directions.
        caps_history: the manager's cap decisions per cycle,
            ``(cycles, units)``.  Clients apply them asynchronously (each
            before answering its next POLL), so the hardware-side caps may
            trail by under one cycle and differ by the protocol's 0.1 W
            quantization.
        readings_history: decoded readings per cycle, ``(cycles, units)``.
        client_cycles: per-node cycles served (all equal on success).
    """

    cycles: int
    bytes_total: int
    caps_history: np.ndarray
    readings_history: np.ndarray
    client_cycles: list[int] = field(default_factory=list)


def run_loopback(
    cluster: Cluster,
    manager: PowerManager,
    demand_fn: Callable[[int], np.ndarray],
    cycles: int,
    dt_s: float = 1.0,
    rng: np.random.Generator | None = None,
) -> LoopbackResult:
    """Drive a full TCP control-plane session on localhost.

    Args:
        cluster: the simulated hardware (provides nodes and physics).
        manager: power manager; bound here to the cluster's topology.
        demand_fn: step index → per-unit demand vector (W).
        cycles: number of control cycles to run.
        dt_s: control period.
        rng: manager randomness (seeded default if omitted).

    Returns:
        A :class:`LoopbackResult`; the server and every client are shut
        down before returning, succeed or fail.
    """
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    manager.bind(
        n_units=cluster.n_units,
        budget_w=cluster.budget_w,
        max_cap_w=cluster.spec.tdp_w,
        min_cap_w=cluster.spec.min_cap_w,
        dt_s=dt_s,
        rng=rng if rng is not None else np.random.default_rng(0),
    )
    caps_history = np.empty((cycles, cluster.n_units))
    readings_history = np.empty((cycles, cluster.n_units))
    bytes_total = 0

    clients: list[DeployClient] = []
    with DeployServer(manager) as server:
        try:
            for node in cluster.nodes:
                client = DeployClient(node, server.address, dt_s=dt_s)
                client.start()
                clients.append(client)
            server.accept_clients(len(clients))

            for step in range(cycles):
                demand = demand_fn(step)
                cluster.step_physics(demand, dt_s)
                stats = server.control_cycle()
                bytes_total += stats.bytes_up + stats.bytes_down
                readings_history[step] = stats.readings_w
                caps_history[step] = np.asarray(manager.caps)
        finally:
            server.shutdown()
            for client in clients:
                client.join()

    return LoopbackResult(
        cycles=cycles,
        bytes_total=bytes_total,
        caps_history=caps_history,
        readings_history=readings_history,
        client_cycles=[c.cycles_served for c in clients],
    )

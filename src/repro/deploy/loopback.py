"""Loopback deployment: the full TCP control plane in one process.

Runs the real :class:`~repro.deploy.server.DeployServer` and one
:class:`~repro.deploy.client.DeployClient` thread per node over localhost
TCP, while the calling thread advances the simulated cluster physics —
the closest this repo gets to the artifact's actual deployment, exercising
sockets, framing, quantization, and the threaded daemons end to end.

A :class:`ChaosSchedule` lets a session kill client daemons mid-run and
reconnect them later, driving the server's quarantine / fallback /
HELLO-rejoin machinery over real sockets — and, with
``controller_kill_at`` / ``controller_hang_at``, kill or hang the
*controller itself*.  Controller chaos requires :class:`RecoveryOptions`:
the session then runs under a
:class:`~repro.recovery.supervisor.Supervisor`, the manager is wrapped in
a :class:`~repro.recovery.controller.RecoverableController`
(journal + periodic checkpoints), and each restart warm-restores from the
latest valid checkpoint, replays the journal tail, re-baselines the
meters, and waits for every client to re-HELLO before the control loop
continues.  Cycles during the outage advance physics only — the hardware
holds its last programmed caps, exactly as RAPL does when the controller
is down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.managers import PowerManager
from repro.deploy.client import DeployClient
from repro.deploy.server import DeployServer
from repro.recovery.checkpoint import CheckpointStore, CycleJournal
from repro.recovery.controller import RecoverableController
from repro.recovery.supervisor import (
    ControllerCrash,
    ControllerHang,
    Heartbeat,
    Supervisor,
)
from repro.resilience.health import HealthState, ResilienceConfig
from repro.safety import SafetyConfig
from repro.telemetry.log import CycleTimingLog, ResilienceEventLog

__all__ = [
    "ChaosSchedule",
    "LoopbackResult",
    "RecoveryOptions",
    "run_loopback",
]


@dataclass(frozen=True)
class ChaosSchedule:
    """Failure plan for a loopback session.

    Attributes:
        kill_at: node id → cycle index at which that node's daemon is
            killed (socket severed without QUIT — the daemon crashes, the
            node's hardware keeps running under its last caps).
        reconnect_at: node id → cycle index at which a fresh daemon for
            that node connects and HELLO-rejoins.
        controller_kill_at: cycle indices at which the *controller*
            process crashes (each fires once; requires recovery options).
        controller_hang_at: cycle indices at which the controller stops
            making progress until the watchdog aborts it (each fires
            once; requires recovery options).
    """

    kill_at: Mapping[int, int] = field(default_factory=dict)
    reconnect_at: Mapping[int, int] = field(default_factory=dict)
    controller_kill_at: tuple[int, ...] = ()
    controller_hang_at: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for node_id, cycle in self.reconnect_at.items():
            if node_id in self.kill_at and cycle <= self.kill_at[node_id]:
                raise ValueError(
                    f"node {node_id} reconnects at cycle {cycle}, before "
                    f"its kill at cycle {self.kill_at[node_id]}"
                )
        for label, steps in (
            ("controller_kill_at", self.controller_kill_at),
            ("controller_hang_at", self.controller_hang_at),
        ):
            for step in steps:
                if step < 0:
                    raise ValueError(f"{label} holds negative cycle {step}")
        overlap = set(self.controller_kill_at) & set(self.controller_hang_at)
        if overlap:
            raise ValueError(
                f"cycles {sorted(overlap)} appear in both controller_kill_at "
                "and controller_hang_at"
            )

    @property
    def has_controller_chaos(self) -> bool:
        """True when any controller kill/hang is scheduled."""
        return bool(self.controller_kill_at or self.controller_hang_at)


@dataclass(frozen=True)
class RecoveryOptions:
    """Controller crash-recovery configuration of a loopback session.

    Attributes:
        checkpoint_dir: directory for checkpoint generations and the
            cycle journal.
        checkpoint_every: cycles between checkpoints.
        keep_generations: checkpoint generations retained.
        max_restarts: controller restarts allowed before the session
            fails.
        hang_timeout_s: heartbeat staleness (wall-clock) at which the
            watchdog declares the controller hung.
        restart_delay_cycles: control cycles the restart takes — physics
            advances, hardware holds its last caps, no control happens.
    """

    checkpoint_dir: str | Path
    checkpoint_every: int = 5
    keep_generations: int = 3
    max_restarts: int = 3
    hang_timeout_s: float = 2.0
    restart_delay_cycles: int = 2

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.keep_generations < 1:
            raise ValueError(
                f"keep_generations must be >= 1, got {self.keep_generations}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.restart_delay_cycles < 0:
            raise ValueError(
                "restart_delay_cycles must be >= 0, got "
                f"{self.restart_delay_cycles}"
            )


@dataclass
class LoopbackResult:
    """Outcome of a loopback session.

    Attributes:
        cycles: control cycles executed (including controller-outage
            cycles, which advance physics only).
        bytes_total: protocol payload bytes both directions.
        caps_history: the manager's cap decisions per cycle,
            ``(cycles, units)``.  Clients apply them asynchronously (each
            before answering its next POLL), so the hardware-side caps may
            trail by under one cycle and differ by the protocol's 0.1 W
            quantization.  During a controller outage the row holds the
            hardware's held caps.
        readings_history: the reading vectors the manager consumed per
            cycle, ``(cycles, units)`` — wire readings for healthy
            clients, fallback values for quarantined ones, NaN during a
            controller outage (nobody read the meters).
        power_history: true per-unit power at the end of each cycle,
            ``(cycles, units)`` — the progress ground truth.
        client_cycles: per-node cycles served by the *original* daemons
            (all equal when no chaos was scheduled).
        fallback_cycles: cycles in which at least one unit's reading came
            from the fallback policy.
        events: structured resilience *and* recovery events of the whole
            session (all attempts).
        timings: per-cycle phase timings of the server's control cycles
            (all attempts; outage cycles run no control and are absent).
        final_health: health state per node id at session end.
        controller_restarts: supervisor restarts performed.
        checkpoints_written: checkpoint generations written.
        journal_replayed: journal records replayed across all restarts.
    """

    cycles: int
    bytes_total: int
    caps_history: np.ndarray
    readings_history: np.ndarray
    power_history: np.ndarray
    client_cycles: list[int] = field(default_factory=list)
    fallback_cycles: int = 0
    events: ResilienceEventLog = field(default_factory=ResilienceEventLog)
    timings: CycleTimingLog = field(default_factory=CycleTimingLog)
    final_health: dict[int, HealthState] = field(default_factory=dict)
    controller_restarts: int = 0
    checkpoints_written: int = 0
    journal_replayed: int = 0


def _await_cap_application(
    server: DeployServer,
    clients_by_id: Mapping[int, DeployClient],
    served_before: Mapping[int, int],
    timeout_s: float = 1.0,
) -> None:
    """Block until every healthy client has applied this cycle's caps.

    ``control_cycle`` returns once the cap frames are *written*; the
    client threads decode and program them asynchronously.  Real
    deployments have the same property, but leaving the race in the
    harness makes session power — and therefore every quality
    measurement built on it — depend on thread scheduling.  The harness
    serializes instead: physics advance only after the caps this cycle
    decided are actually on the domains.  (A client increments
    ``cycles_served`` immediately after programming its caps.)
    """
    deadline = time.monotonic() + timeout_s
    for node_id, health in server.health.items():
        if health is not HealthState.HEALTHY:
            continue
        client = clients_by_id.get(node_id)
        if client is None:
            continue
        while (
            client.cycles_served <= served_before.get(node_id, 0)
            and client.error is None
            and not client.killed
            and time.monotonic() < deadline
        ):
            time.sleep(0.0005)


def _validate_chaos(chaos: ChaosSchedule, cluster: Cluster) -> None:
    node_ids = {node.node_id for node in cluster.nodes}
    for label, schedule in (
        ("kill_at", chaos.kill_at),
        ("reconnect_at", chaos.reconnect_at),
    ):
        for node_id in schedule:
            if node_id not in node_ids:
                raise ValueError(f"chaos {label} names unknown node {node_id}")


def run_loopback(
    cluster: Cluster,
    manager: PowerManager,
    demand_fn: Callable[[int], np.ndarray],
    cycles: int,
    dt_s: float = 1.0,
    rng: np.random.Generator | None = None,
    chaos: ChaosSchedule | None = None,
    resilience: ResilienceConfig | None = None,
    recovery: RecoveryOptions | None = None,
    poll_mode: str = "concurrent",
    safety: SafetyConfig | None = None,
) -> LoopbackResult:
    """Drive a full TCP control-plane session on localhost.

    Args:
        cluster: the simulated hardware (provides nodes and physics).
        manager: power manager; bound here to the cluster's topology.
        demand_fn: step index → per-unit demand vector (W).
        cycles: number of control cycles to run.
        dt_s: control period.
        rng: manager randomness (seeded default if omitted).
        chaos: optional daemon/controller kill schedule.
        resilience: server quarantine/fallback configuration.
        recovery: checkpoint/supervisor configuration; required when the
            chaos schedule kills or hangs the controller, optional (plain
            periodic checkpointing) otherwise.
        poll_mode: the server's cycle strategy — ``"concurrent"``
            fan-out/fan-in (default) or the ``"sequential"`` baseline.
            Sessions are reproducible cycle-for-cycle in either mode, and
            both modes produce the identical trace.
        safety: budget-safety envelope configuration, passed through to
            every :class:`~repro.deploy.server.DeployServer` the session
            creates.  After a supervised restart the new server's
            envelope starts from the pessimistic applied-view prior
            (hardware assumed uncapped) — the conservative posture when
            the controller's knowledge of the hardware was lost.

    Returns:
        A :class:`LoopbackResult`; the server and every client are shut
        down before returning, succeed or fail.
    """
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    chaos = chaos or ChaosSchedule()
    _validate_chaos(chaos, cluster)
    if chaos.has_controller_chaos and recovery is None:
        raise ValueError(
            "controller kill/hang chaos requires recovery options"
        )
    manager.bind(
        n_units=cluster.n_units,
        budget_w=cluster.budget_w,
        max_cap_w=cluster.spec.tdp_w,
        min_cap_w=cluster.spec.min_cap_w,
        dt_s=dt_s,
        rng=rng if rng is not None else np.random.default_rng(0),
    )
    if recovery is None:
        return _run_plain(
            cluster, manager, demand_fn, cycles, dt_s, chaos, resilience,
            poll_mode, safety,
        )
    return _run_supervised(
        cluster, manager, demand_fn, cycles, dt_s, chaos, resilience,
        recovery, poll_mode, safety,
    )


def _run_plain(
    cluster: Cluster,
    manager: PowerManager,
    demand_fn: Callable[[int], np.ndarray],
    cycles: int,
    dt_s: float,
    chaos: ChaosSchedule,
    resilience: ResilienceConfig | None,
    poll_mode: str,
    safety: SafetyConfig | None,
) -> LoopbackResult:
    """The unsupervised session: one attempt, no checkpoints."""
    caps_history = np.empty((cycles, cluster.n_units))
    readings_history = np.empty((cycles, cluster.n_units))
    power_history = np.empty((cycles, cluster.n_units))
    bytes_total = 0
    fallback_cycles = 0

    originals: list[DeployClient] = []
    replacements: list[DeployClient] = []
    nodes_by_id = {node.node_id: node for node in cluster.nodes}
    clients_by_id: dict[int, DeployClient] = {}
    with DeployServer(
        manager, resilience=resilience, poll_mode=poll_mode, safety=safety
    ) as server:
        try:
            for node in cluster.nodes:
                client = DeployClient(node, server.address, dt_s=dt_s)
                client.start()
                originals.append(client)
                clients_by_id[node.node_id] = client
            server.accept_clients(len(originals))

            for step in range(cycles):
                for node_id, kill_cycle in chaos.kill_at.items():
                    if kill_cycle == step:
                        clients_by_id[node_id].kill()
                for node_id, rc_cycle in chaos.reconnect_at.items():
                    if rc_cycle == step:
                        fresh = DeployClient(
                            nodes_by_id[node_id], server.address, dt_s=dt_s
                        )
                        fresh.start()
                        replacements.append(fresh)
                        clients_by_id[node_id] = fresh

                demand = demand_fn(step)
                cluster.step_physics(demand, dt_s)
                served_before = {
                    nid: c.cycles_served for nid, c in clients_by_id.items()
                }
                stats = server.control_cycle()
                _await_cap_application(server, clients_by_id, served_before)
                bytes_total += stats.bytes_up + stats.bytes_down
                readings_history[step] = stats.readings_w
                caps_history[step] = np.asarray(manager.caps)
                power_history[step] = cluster.true_power_w()
                if stats.fallback_units > 0:
                    fallback_cycles += 1
            final_health = server.health
        finally:
            server.shutdown()
            for client in originals + replacements:
                client.join()

    return LoopbackResult(
        cycles=cycles,
        bytes_total=bytes_total,
        caps_history=caps_history,
        readings_history=readings_history,
        power_history=power_history,
        client_cycles=[c.cycles_served for c in originals],
        fallback_cycles=fallback_cycles,
        events=server.events,
        timings=server.timings,
        final_health=final_health,
    )


def _run_supervised(
    cluster: Cluster,
    manager: PowerManager,
    demand_fn: Callable[[int], np.ndarray],
    cycles: int,
    dt_s: float,
    chaos: ChaosSchedule,
    resilience: ResilienceConfig | None,
    recovery: RecoveryOptions,
    poll_mode: str,
    safety: SafetyConfig | None,
) -> LoopbackResult:
    """The supervised session: restartable attempts over one step counter."""
    ckpt_dir = Path(recovery.checkpoint_dir)
    events = ResilienceEventLog()
    timings = CycleTimingLog()
    controller = RecoverableController(
        manager,
        store=CheckpointStore(ckpt_dir, keep=recovery.keep_generations),
        journal=CycleJournal(ckpt_dir / "journal.log"),
        checkpoint_every=recovery.checkpoint_every,
        events=events,
    )
    supervisor = Supervisor(
        max_restarts=recovery.max_restarts,
        hang_timeout_s=recovery.hang_timeout_s,
        events=events,
    )

    caps_history = np.full((cycles, cluster.n_units), np.nan)
    readings_history = np.full((cycles, cluster.n_units), np.nan)
    power_history = np.full((cycles, cluster.n_units), np.nan)
    nodes_by_id = {node.node_id: node for node in cluster.nodes}

    # Shared across attempts: the global step cursor, the chaos events
    # already fired, and the session accounting.
    state = {"step": 0, "bytes": 0, "fallback": 0, "replayed": 0}
    fired: set[int] = set()
    first_clients: list[DeployClient] = []
    final_health: dict[int, HealthState] = {}

    def outage_cycle(step: int) -> None:
        """One controller-down cycle: physics only, caps held by hardware."""
        cluster.step_physics(demand_fn(step), dt_s)
        caps_history[step] = cluster.caps_w()
        power_history[step] = cluster.true_power_w()

    def attempt(index: int, heartbeat: Heartbeat) -> dict[int, HealthState]:
        if index > 0:
            # The restart window: the supervisor is re-launching the
            # controller while the machines keep running under their
            # last programmed caps.
            for _ in range(recovery.restart_delay_cycles):
                if state["step"] >= cycles:
                    break
                outage_cycle(state["step"])
                state["step"] += 1
            if controller.resume():
                state["replayed"] += controller.replayed
            # A restarted metering daemon re-anchors its energy cursors;
            # without this the outage's accumulated energy lands on the
            # first post-restart reading.
            cluster.rebaseline_meters()
        if state["step"] >= cycles:
            return dict(final_health)

        clients: list[DeployClient] = []
        clients_by_id: dict[int, DeployClient] = {}
        with DeployServer(
            controller,
            resilience=resilience,
            events=events,
            poll_mode=poll_mode,
            safety=safety,
        ) as server:
            try:
                for node in cluster.nodes:
                    client = DeployClient(node, server.address, dt_s=dt_s)
                    client.start()
                    clients.append(client)
                    clients_by_id[node.node_id] = client
                if index == 0:
                    first_clients.extend(clients)
                # Safe until every client re-HELLOs: accept_clients blocks
                # here, so no control decision happens before the plane is
                # fully re-registered.
                server.accept_clients(len(clients))

                while state["step"] < cycles:
                    step = state["step"]
                    if step in chaos.controller_kill_at and step not in fired:
                        fired.add(step)
                        raise ControllerCrash(f"injected kill at cycle {step}")
                    if step in chaos.controller_hang_at and step not in fired:
                        fired.add(step)
                        # Stall without beating until the watchdog aborts
                        # the attempt — the hang is *detected*, not timed.
                        while not heartbeat.aborted:
                            time.sleep(0.005)
                        raise ControllerHang(f"hang detected at cycle {step}")
                    for node_id, kill_cycle in chaos.kill_at.items():
                        if kill_cycle == step:
                            clients_by_id[node_id].kill()
                    for node_id, rc_cycle in chaos.reconnect_at.items():
                        if rc_cycle == step:
                            fresh = DeployClient(
                                nodes_by_id[node_id], server.address, dt_s=dt_s
                            )
                            fresh.start()
                            clients.append(fresh)
                            clients_by_id[node_id] = fresh

                    cluster.step_physics(demand_fn(step), dt_s)
                    served_before = {
                        nid: c.cycles_served
                        for nid, c in clients_by_id.items()
                    }
                    stats = server.control_cycle()
                    _await_cap_application(
                        server, clients_by_id, served_before
                    )
                    heartbeat.beat()
                    state["bytes"] += stats.bytes_up + stats.bytes_down
                    readings_history[step] = stats.readings_w
                    caps_history[step] = np.asarray(controller.caps)
                    power_history[step] = cluster.true_power_w()
                    if stats.fallback_units > 0:
                        state["fallback"] += 1
                    state["step"] = step + 1
                return server.health
            finally:
                final_health.clear()
                final_health.update(server.health)
                timings.extend(server.timings)
                server.shutdown()
                for client in clients:
                    # A client of a crashed controller exits on the broken
                    # socket; don't let its error fail the session.
                    try:
                        client.join()
                    except RuntimeError:
                        pass

    health = supervisor.run(attempt)

    return LoopbackResult(
        cycles=cycles,
        bytes_total=state["bytes"],
        caps_history=caps_history,
        readings_history=readings_history,
        power_history=power_history,
        client_cycles=[c.cycles_served for c in first_clients],
        fallback_cycles=state["fallback"],
        events=events,
        timings=timings,
        final_health=health,
        controller_restarts=supervisor.restarts,
        checkpoints_written=len(events.of_kind("checkpoint_written")),
        journal_replayed=state["replayed"],
    )

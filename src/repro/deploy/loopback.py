"""Loopback deployment: the full TCP control plane in one process.

Runs the real :class:`~repro.deploy.server.DeployServer` and one
:class:`~repro.deploy.client.DeployClient` thread per node over localhost
TCP, while the calling thread advances the simulated cluster physics —
the closest this repo gets to the artifact's actual deployment, exercising
sockets, framing, quantization, and the threaded daemons end to end.

A :class:`ChaosSchedule` lets a session kill client daemons mid-run and
reconnect them later, driving the server's quarantine / fallback /
HELLO-rejoin machinery over real sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.managers import PowerManager
from repro.deploy.client import DeployClient
from repro.deploy.server import DeployServer
from repro.resilience.health import HealthState, ResilienceConfig
from repro.telemetry.log import ResilienceEventLog

__all__ = ["ChaosSchedule", "LoopbackResult", "run_loopback"]


@dataclass(frozen=True)
class ChaosSchedule:
    """Client-daemon failure plan for a loopback session.

    Attributes:
        kill_at: node id → cycle index at which that node's daemon is
            killed (socket severed without QUIT — the daemon crashes, the
            node's hardware keeps running under its last caps).
        reconnect_at: node id → cycle index at which a fresh daemon for
            that node connects and HELLO-rejoins.
    """

    kill_at: Mapping[int, int] = field(default_factory=dict)
    reconnect_at: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node_id, cycle in self.reconnect_at.items():
            if node_id in self.kill_at and cycle <= self.kill_at[node_id]:
                raise ValueError(
                    f"node {node_id} reconnects at cycle {cycle}, before "
                    f"its kill at cycle {self.kill_at[node_id]}"
                )


@dataclass
class LoopbackResult:
    """Outcome of a loopback session.

    Attributes:
        cycles: control cycles executed.
        bytes_total: protocol payload bytes both directions.
        caps_history: the manager's cap decisions per cycle,
            ``(cycles, units)``.  Clients apply them asynchronously (each
            before answering its next POLL), so the hardware-side caps may
            trail by under one cycle and differ by the protocol's 0.1 W
            quantization.
        readings_history: the reading vectors the manager consumed per
            cycle, ``(cycles, units)`` — wire readings for healthy
            clients, fallback values for quarantined ones.
        client_cycles: per-node cycles served by the *original* daemons
            (all equal when no chaos was scheduled).
        fallback_cycles: cycles in which at least one unit's reading came
            from the fallback policy.
        events: structured quarantine/fallback/rejoin/clamp events.
        final_health: health state per node id at session end.
    """

    cycles: int
    bytes_total: int
    caps_history: np.ndarray
    readings_history: np.ndarray
    client_cycles: list[int] = field(default_factory=list)
    fallback_cycles: int = 0
    events: ResilienceEventLog = field(default_factory=ResilienceEventLog)
    final_health: dict[int, HealthState] = field(default_factory=dict)


def run_loopback(
    cluster: Cluster,
    manager: PowerManager,
    demand_fn: Callable[[int], np.ndarray],
    cycles: int,
    dt_s: float = 1.0,
    rng: np.random.Generator | None = None,
    chaos: ChaosSchedule | None = None,
    resilience: ResilienceConfig | None = None,
) -> LoopbackResult:
    """Drive a full TCP control-plane session on localhost.

    Args:
        cluster: the simulated hardware (provides nodes and physics).
        manager: power manager; bound here to the cluster's topology.
        demand_fn: step index → per-unit demand vector (W).
        cycles: number of control cycles to run.
        dt_s: control period.
        rng: manager randomness (seeded default if omitted).
        chaos: optional daemon kill/reconnect schedule.
        resilience: server quarantine/fallback configuration.

    Returns:
        A :class:`LoopbackResult`; the server and every client are shut
        down before returning, succeed or fail.
    """
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    chaos = chaos or ChaosSchedule()
    node_ids = {node.node_id for node in cluster.nodes}
    for label, schedule in (
        ("kill_at", chaos.kill_at),
        ("reconnect_at", chaos.reconnect_at),
    ):
        for node_id in schedule:
            if node_id not in node_ids:
                raise ValueError(
                    f"chaos {label} names unknown node {node_id}"
                )
    manager.bind(
        n_units=cluster.n_units,
        budget_w=cluster.budget_w,
        max_cap_w=cluster.spec.tdp_w,
        min_cap_w=cluster.spec.min_cap_w,
        dt_s=dt_s,
        rng=rng if rng is not None else np.random.default_rng(0),
    )
    caps_history = np.empty((cycles, cluster.n_units))
    readings_history = np.empty((cycles, cluster.n_units))
    bytes_total = 0
    fallback_cycles = 0

    originals: list[DeployClient] = []
    replacements: list[DeployClient] = []
    nodes_by_id = {node.node_id: node for node in cluster.nodes}
    clients_by_id: dict[int, DeployClient] = {}
    with DeployServer(manager, resilience=resilience) as server:
        try:
            for node in cluster.nodes:
                client = DeployClient(node, server.address, dt_s=dt_s)
                client.start()
                originals.append(client)
                clients_by_id[node.node_id] = client
            server.accept_clients(len(originals))

            for step in range(cycles):
                for node_id, kill_cycle in chaos.kill_at.items():
                    if kill_cycle == step:
                        clients_by_id[node_id].kill()
                for node_id, rc_cycle in chaos.reconnect_at.items():
                    if rc_cycle == step:
                        fresh = DeployClient(
                            nodes_by_id[node_id], server.address, dt_s=dt_s
                        )
                        fresh.start()
                        replacements.append(fresh)
                        clients_by_id[node_id] = fresh

                demand = demand_fn(step)
                cluster.step_physics(demand, dt_s)
                stats = server.control_cycle()
                bytes_total += stats.bytes_up + stats.bytes_down
                readings_history[step] = stats.readings_w
                caps_history[step] = np.asarray(manager.caps)
                if stats.fallback_units > 0:
                    fallback_cycles += 1
            final_health = server.health
        finally:
            server.shutdown()
            for client in originals + replacements:
                client.join()

    return LoopbackResult(
        cycles=cycles,
        bytes_total=bytes_total,
        caps_history=caps_history,
        readings_history=readings_history,
        client_cycles=[c.cycles_served for c in originals],
        fallback_cycles=fallback_cycles,
        events=server.events,
        final_health=final_health,
    )

"""Throughput-time speedups and harmonic means (paper §6, Appendix).

The paper's performance metric is *throughput time* (workload latency).
Every figure normalizes to the constant-allocation baseline:

* the baseline of a workload is the harmonic mean of its throughput times
  under constant allocation;
* the speedup of a workload under a manager is ``baseline / hmean(times
  under that manager)``;
* when several runs or pairs are grouped, the group value is the harmonic
  mean of the members (Figures 4-6); Figure 5(b)/6 additionally take the
  harmonic mean of the *two paired workloads'* speedups.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["hmean", "speedup", "paired_hmean_speedup"]


def hmean(values: Sequence[float] | np.ndarray) -> float:
    """Harmonic mean of positive values.

    Raises:
        ValueError: empty input or any non-positive value (the harmonic
            mean is undefined there, and a zero latency is always a bug).
    """
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("hmean of empty sequence")
    if np.any(v <= 0):
        raise ValueError(f"hmean requires positive values, got min {v.min()}")
    return float(v.size / np.sum(1.0 / v))


def speedup(
    baseline_times_s: Sequence[float] | np.ndarray,
    manager_times_s: Sequence[float] | np.ndarray,
) -> float:
    """Normalized performance of a workload under a manager.

    Args:
        baseline_times_s: throughput times under constant allocation.
        manager_times_s: throughput times under the manager being evaluated.

    Returns:
        ``hmean(baseline) / hmean(manager)`` — above 1 means the manager
        beats constant allocation.
    """
    return hmean(baseline_times_s) / hmean(manager_times_s)


def paired_hmean_speedup(speedup_a: float, speedup_b: float) -> float:
    """Harmonic mean of the two paired workloads' speedups (Figs. 5b, 6)."""
    return hmean([speedup_a, speedup_b])

"""Repeat-run statistics (the paper's variance methodology, §5.2/§6.1).

The paper repeats every workload >= 10 times because "the Spark workloads
demonstrate such variable performance between different runs" that single
runs are meaningless — §6.1 even observes DPS beating the oracle within
that variance.  This module provides the tools to quantify it:

* bootstrap confidence intervals on the harmonic-mean speedup (the
  statistic every figure reports);
* coefficient of variation of throughput times;
* a two-sample bootstrap test for "manager A beats manager B" claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.metrics.speedup import hmean

__all__ = [
    "BootstrapCI",
    "bootstrap_hmean_ci",
    "coefficient_of_variation",
    "prob_speedup_exceeds",
]


@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap confidence interval.

    Attributes:
        point: the statistic on the full sample.
        low / high: interval bounds.
        confidence: nominal coverage (e.g. 0.95).
    """

    point: float
    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise ValueError(f"low {self.low} > high {self.high}")

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap_hmean_ci(
    times_s: Sequence[float],
    baseline_times_s: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile-bootstrap CI on the speedup ``hmean(base)/hmean(times)``.

    Args:
        times_s: throughput times under the manager being evaluated.
        baseline_times_s: times under constant allocation.
        confidence: nominal coverage in (0, 1).
        n_resamples: bootstrap resamples.
        seed: resampling seed.

    Returns:
        A :class:`BootstrapCI` on the speedup.
    """
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 100:
        raise ValueError(f"n_resamples must be >= 100, got {n_resamples}")
    t = np.asarray(times_s, dtype=np.float64)
    b = np.asarray(baseline_times_s, dtype=np.float64)
    if t.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    if np.any(t <= 0) or np.any(b <= 0):
        raise ValueError("times must be positive")

    point = hmean(b) / hmean(t)
    rng = np.random.default_rng(seed)
    # Vectorized resampling: harmonic mean = n / sum(1/x).
    inv_t = 1.0 / t
    inv_b = 1.0 / b
    t_idx = rng.integers(0, t.size, size=(n_resamples, t.size))
    b_idx = rng.integers(0, b.size, size=(n_resamples, b.size))
    hm_t = t.size / inv_t[t_idx].sum(axis=1)
    hm_b = b.size / inv_b[b_idx].sum(axis=1)
    speedups = hm_b / hm_t
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(speedups, [alpha, 1.0 - alpha])
    return BootstrapCI(
        point=float(point),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def coefficient_of_variation(times_s: Sequence[float]) -> float:
    """Std / mean of a positive sample (run-to-run variance measure)."""
    t = np.asarray(times_s, dtype=np.float64)
    if t.size < 2:
        raise ValueError("need at least 2 samples")
    if np.any(t <= 0):
        raise ValueError("times must be positive")
    return float(np.std(t, ddof=1) / np.mean(t))


def prob_speedup_exceeds(
    times_a_s: Sequence[float],
    times_b_s: Sequence[float],
    n_resamples: int = 2000,
    seed: int = 0,
) -> float:
    """Bootstrap probability that sample A is faster than sample B.

    Resamples both time samples and returns the fraction of resamples
    where ``hmean(A) < hmean(B)`` — the confidence behind statements like
    "DPS outperforms SLURM on this pair".

    Returns:
        Probability in [0, 1].
    """
    a = np.asarray(times_a_s, dtype=np.float64)
    b = np.asarray(times_b_s, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    if np.any(a <= 0) or np.any(b <= 0):
        raise ValueError("times must be positive")
    rng = np.random.default_rng(seed)
    inv_a, inv_b = 1.0 / a, 1.0 / b
    a_idx = rng.integers(0, a.size, size=(n_resamples, a.size))
    b_idx = rng.integers(0, b.size, size=(n_resamples, b.size))
    hm_a = a.size / inv_a[a_idx].sum(axis=1)
    hm_b = b.size / inv_b[b_idx].sum(axis=1)
    return float(np.mean(hm_a < hm_b))

"""Satisfaction metric (paper Eq. 1).

A node's *satisfaction* is how well its power demand was met over the
lifetime of a workload::

    satisfaction(n) = avg power under the current cap / avg power under no cap

The uncapped average comes from a reference run of the same workload with
the budget lifted (the harness caches these per workload).  Satisfaction is
clipped to 1: measurement noise or headroom can push the capped average a
hair above the uncapped one, which would otherwise produce satisfactions
above unity and nonsense fairness values.
"""

from __future__ import annotations

__all__ = ["satisfaction"]


def satisfaction(avg_power_capped_w: float, avg_power_uncapped_w: float) -> float:
    """Eq. 1: fraction of the demanded power actually delivered.

    Args:
        avg_power_capped_w: mean per-socket power over the workload's runs
            under the manager being evaluated.
        avg_power_uncapped_w: mean per-socket power over reference runs with
            no effective cap.

    Returns:
        Value in ``[0, 1]``.

    Raises:
        ValueError: non-positive uncapped power or negative capped power.
    """
    if avg_power_uncapped_w <= 0:
        raise ValueError(
            f"uncapped average power must be > 0, got {avg_power_uncapped_w}"
        )
    if avg_power_capped_w < 0:
        raise ValueError(
            f"capped average power must be >= 0, got {avg_power_capped_w}"
        )
    return min(avg_power_capped_w / avg_power_uncapped_w, 1.0)

"""Fairness metric (paper Eq. 2).

The paper's novel fairness definition is demand-proportional: two workloads
are treated fairly when they receive the *same fraction of the power they
demand*, regardless of the absolute wattages.  For workloads ``i`` and
``j``::

    fairness(i, j) = 1 - |satisfaction(i) - satisfaction(j)|

Fairness lies in ``[0, 1]``; 1 means both workloads were penalized equally.
§6.4 observes a general positive correlation between fairness and harmonic
mean performance — the correlation helper here lets the figure-7 bench
verify that on simulated data.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fairness", "pairwise_fairness", "fairness_performance_correlation"]


def fairness(satisfaction_i: float, satisfaction_j: float) -> float:
    """Eq. 2: unity minus the absolute satisfaction gap.

    Args:
        satisfaction_i / satisfaction_j: Eq. 1 values in ``[0, 1]``.

    Returns:
        Fairness in ``[0, 1]``.
    """
    for name, s in (("satisfaction_i", satisfaction_i),
                    ("satisfaction_j", satisfaction_j)):
        if not 0.0 <= s <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {s}")
    return 1.0 - abs(satisfaction_i - satisfaction_j)


def pairwise_fairness(satisfactions: np.ndarray) -> np.ndarray:
    """Fairness matrix over many workloads.

    Args:
        satisfactions: shape ``(k,)`` of Eq. 1 values.

    Returns:
        Symmetric ``(k, k)`` matrix with unit diagonal.
    """
    s = np.asarray(satisfactions, dtype=np.float64)
    if s.ndim != 1:
        raise ValueError(f"expected 1-D satisfactions, got shape {s.shape}")
    if np.any((s < 0) | (s > 1)):
        raise ValueError("satisfactions must lie in [0, 1]")
    return 1.0 - np.abs(s[:, None] - s[None, :])


def fairness_performance_correlation(
    fairness_values: np.ndarray, hmean_speedups: np.ndarray
) -> float:
    """Pearson correlation between fairness and harmonic-mean speedup.

    Quantifies the §6.4 observation ("a general positive correlation
    between fairness and harmonic mean performance").

    Args:
        fairness_values: one fairness per workload pair.
        hmean_speedups: matching harmonic-mean speedups.

    Returns:
        Correlation coefficient in ``[-1, 1]``; 0 for degenerate inputs
        (fewer than two points or zero variance).
    """
    f = np.asarray(fairness_values, dtype=np.float64)
    h = np.asarray(hmean_speedups, dtype=np.float64)
    if f.shape != h.shape or f.ndim != 1:
        raise ValueError(
            f"inputs must be equal-length 1-D arrays, got {f.shape}, {h.shape}"
        )
    if f.size < 2 or np.std(f) == 0 or np.std(h) == 0:
        return 0.0
    return float(np.corrcoef(f, h)[0, 1])

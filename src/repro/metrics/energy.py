"""Energy metrics derived from telemetry.

The paper evaluates performance under a *power* budget, but power capping
is ultimately about energy: the artifact's logs support computing "the
average power consumption during the lifetime of a workload", from which
energy-to-solution and the energy-delay product follow.  These helpers
close that loop for any unit set and time window of a telemetry log.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.log import TelemetryLog

__all__ = ["energy_j", "energy_to_solution_j", "energy_delay_product"]


def energy_j(
    log: TelemetryLog,
    unit_ids: np.ndarray,
    start_s: float,
    end_s: float,
) -> float:
    """Energy consumed by the given units over a window (trapezoid-free:
    per-step power times step length, matching how the simulated RAPL
    counter integrates).

    Args:
        log: telemetry to integrate.
        unit_ids: units summed over.
        start_s / end_s: window bounds (``start < t <= end``).

    Returns:
        Joules.

    Raises:
        ValueError: empty window.
    """
    data = log.window(start_s, end_s)
    t = data["time_s"]
    power = data["power_w"][:, np.asarray(unit_ids, dtype=np.intp)]
    if t.size == 0:
        raise ValueError(f"no samples in window ({start_s}, {end_s}]")
    if t.size == 1:
        dt = np.asarray([t[0] - start_s])
    else:
        steps = np.diff(t)
        dt = np.concatenate(([steps[0]], steps))
    return float((power.sum(axis=1) * dt).sum())


def energy_to_solution_j(
    log: TelemetryLog,
    unit_ids: np.ndarray,
    start_s: float,
    end_s: float,
) -> float:
    """Energy of one workload run — alias of :func:`energy_j` with run
    bounds, named for the HPC convention."""
    return energy_j(log, unit_ids, start_s, end_s)


def energy_delay_product(
    log: TelemetryLog,
    unit_ids: np.ndarray,
    start_s: float,
    end_s: float,
) -> float:
    """Energy-delay product (J·s) of a run window.

    Raises:
        ValueError: non-positive window length.
    """
    delay = end_s - start_s
    if delay <= 0:
        raise ValueError(f"window must have positive length, got {delay}")
    return energy_j(log, unit_ids, start_s, end_s) * delay

"""Aggregation helpers shared by the figure generators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.metrics.speedup import hmean

__all__ = ["GroupStats", "summarize", "mean_gain_pct", "gain_pct"]


@dataclass(frozen=True)
class GroupStats:
    """Summary statistics of a group of speedups.

    Attributes:
        hmean: harmonic mean of the group.
        mean: arithmetic mean.
        min / max: range.
        n: member count.
    """

    hmean: float
    mean: float
    min: float
    max: float
    n: int


def summarize(values: Sequence[float] | np.ndarray) -> GroupStats:
    """Compute :class:`GroupStats` over positive values."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("cannot summarize an empty group")
    return GroupStats(
        hmean=hmean(v),
        mean=float(v.mean()),
        min=float(v.min()),
        max=float(v.max()),
        n=int(v.size),
    )


def gain_pct(speedup: float) -> float:
    """Speedup expressed as a percentage gain over the baseline."""
    if speedup <= 0:
        raise ValueError(f"speedup must be > 0, got {speedup}")
    return (speedup - 1.0) * 100.0


def mean_gain_pct(speedups_by_key: Mapping[str, float]) -> float:
    """Mean percentage gain across a keyed set of speedups (paper's
    "mean X % improvement" statements)."""
    if not speedups_by_key:
        raise ValueError("empty speedup mapping")
    return float(np.mean([gain_pct(s) for s in speedups_by_key.values()]))

"""Evaluation metrics: satisfaction (Eq. 1), fairness (Eq. 2), speedups."""

from repro.metrics.energy import (
    energy_delay_product,
    energy_j,
    energy_to_solution_j,
)
from repro.metrics.fairness import (
    fairness,
    fairness_performance_correlation,
    pairwise_fairness,
)
from repro.metrics.satisfaction import satisfaction
from repro.metrics.speedup import hmean, paired_hmean_speedup, speedup
from repro.metrics.stats import (
    BootstrapCI,
    bootstrap_hmean_ci,
    coefficient_of_variation,
    prob_speedup_exceeds,
)
from repro.metrics.summary import GroupStats, gain_pct, mean_gain_pct, summarize

__all__ = [
    "BootstrapCI",
    "GroupStats",
    "bootstrap_hmean_ci",
    "coefficient_of_variation",
    "energy_delay_product",
    "energy_j",
    "energy_to_solution_j",
    "prob_speedup_exceeds",
    "fairness",
    "fairness_performance_correlation",
    "gain_pct",
    "hmean",
    "mean_gain_pct",
    "paired_hmean_speedup",
    "pairwise_fairness",
    "satisfaction",
    "speedup",
    "summarize",
]

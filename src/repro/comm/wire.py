"""Length-prefixed framing for the distributed experiment/shard planes.

The control plane's 3-byte messages (:mod:`repro.comm.protocol`) are sized
for §6.5's per-cycle reading/cap traffic; the *experiment* plane moves
whole job descriptions and result payloads between a campaign coordinator
and its remote workers (:mod:`repro.experiments.distributed`), and the
*shard* plane moves per-cycle demand and power vectors between a fleet
parent and its shard-server subprocesses (:mod:`repro.shard.process`).
This module frames documents over a TCP stream:

``[4-byte big-endian length][body]``

Two body encodings share the stream, distinguished by the body's first
byte (the *frame tag*):

* **JSON** (tag ``{`` — any byte other than :data:`BINARY_TAG`): the
  UTF-8 JSON object encoding every control document uses (HELLO, leases,
  summaries, job descriptions).  Byte-for-byte identical to the format
  before binary frames existed, so mixed-version peers interoperate on
  control traffic.
* **Binary** (tag :data:`BINARY_TAG`): a JSON *header* followed by raw
  little-endian array payloads, for documents whose weight is numpy
  vectors (per-unit demand, power, caps).  Array bytes go on the wire
  via ``tobytes()`` and come back via ``frombuffer`` — no per-element
  Python objects, no decimal text round-trip.  float64 arrays are
  bit-exact (NaN and signed zero pass through); arrays nominated as
  *quantized* are packed as u16 deci-watts exactly when
  :func:`repro.comm.protocol.quantize_w` round-trips them unchanged
  (the deploy plane's cap vectors always do), and fall back to raw
  float64 otherwise so the codec never silently moves a value.

Two further array codes shrink the common shapes of bulk traffic, both
still bit-exact:

* **fill** — an array whose elements share one bit pattern (a uniform
  fleet's power row, an all-equal cap vector) ships as that single
  element plus its count.
* **repeat** — with an :class:`ArrayCache` attached to both ends of a
  connection, an array bitwise identical to the last one sent under the
  same key ships as a zero-payload marker (steady-state demand and cap
  vectors between arbiter periods).  The cache is strictly
  per-connection: senders start a fresh cache per (re)connect and
  :meth:`FrameAssembler.reset` drops the receive side, so a marker can
  never resolve against another stream's state.

Framing guarantees mirror :mod:`repro.deploy.framing`: a reader either
gets a whole verified document or a hard error — no partial trust of a
stream after a malformed frame.  :class:`FrameAssembler` provides the
non-blocking incremental variant for selector-driven event loops, exactly
as ``BatchAssembler`` does for the control plane; it dispatches on the
frame tag per frame, so binary and JSON frames interleave freely on one
stream.
"""

from __future__ import annotations

import json
import socket

import numpy as np

__all__ = [
    "BINARY_TAG",
    "MAX_FRAME_BYTES",
    "ArrayCache",
    "FrameAssembler",
    "FrameError",
    "encode_frame",
    "recv_doc",
    "send_doc",
]

#: Upper bound on one frame's body.  A result payload is a few KiB (two
#: run-time tuples plus scalars) and a 100k-unit f64 vector is 800 KiB;
#: anything near this limit is a protocol violation, not a big job.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN_BYTES = 4

#: First body byte of a binary frame.  JSON objects start with ``{``
#: (0x7B), so 0x01 can never open a valid JSON body.
BINARY_TAG = 0x01

_BINARY_HEADER_LEN_BYTES = 4

#: Array payload codes in a binary header: raw little-endian float64,
#: u16 deci-watts (the cap lattice of :mod:`repro.comm.protocol`), the
#: fill variants of both (one element, replicated ``n`` times), and the
#: zero-payload repeat marker backed by :class:`ArrayCache`.
_CODE_F64 = "f8"
_CODE_W16 = "w2"
_CODE_F64_FILL = "F8"
_CODE_W16_FILL = "W2"
_CODE_REPEAT = "=="
_ITEM_BYTES = {_CODE_F64: 8, _CODE_W16: 2}
_FILL_BYTES = {_CODE_F64_FILL: 8, _CODE_W16_FILL: 2}

#: u16 deci-watt ceiling — one lattice with the 12-bit cap protocol
#: (409.5 W), though u16 itself could carry more.
_MAX_W16_DECIS = (1 << 12) - 1


class FrameError(ValueError):
    """A malformed frame — the stream cannot be trusted afterwards."""


class ArrayCache:
    """Per-connection memo behind the binary repeat code.

    One instance lives at each end of one TCP stream: the sender
    remembers the raw float64 image of the last array shipped under each
    document key, the receiver the last array decoded for it.  When the
    next send under a key is bitwise identical, the wire carries a
    zero-payload ``==`` entry and the receiver replays its cached array
    — exact by construction, since equality is checked on the bytes.

    The memo is meaningless across connections.  Endpoints must start a
    fresh cache (or :meth:`clear` this one) whenever the underlying
    socket is replaced; :class:`FrameAssembler` does so automatically in
    :meth:`FrameAssembler.reset`.
    """

    def __init__(self) -> None:
        self.sent: dict[str, bytes] = {}
        self.seen: dict[str, np.ndarray] = {}

    def clear(self) -> None:
        self.sent.clear()
        self.seen.clear()


def _quantizable(array: np.ndarray) -> np.ndarray | None:
    """The u16 deci-watt image of ``array``, or None when lossy.

    Quantization must be *exact*: ``decis / 10.0`` has to reproduce the
    input bit for bit (matching :func:`repro.comm.protocol.quantize_w`'s
    half-up lattice), otherwise the caller's array is shipped raw.
    """
    if array.dtype != np.float64 or not np.isfinite(array).all():
        return None
    if array.size and (array.min() < 0.0 or array.max() > _MAX_W16_DECIS / 10.0):
        return None
    decis = np.floor(array * 10.0 + 0.5)
    if not np.array_equal(decis / 10.0, array):
        return None
    return decis.astype("<u2")


def _uniform(ints: np.ndarray) -> bool:
    """True when every element shares one bit pattern (NaN included)."""
    return ints.size > 1 and bool((ints == ints[0]).all())


def _encode_array(
    key: str,
    value: np.ndarray,
    quantized: tuple[str, ...],
    cache: ArrayCache | None,
) -> tuple[str, bytes, int]:
    """Pick the cheapest exact code for one array: repeat/fill/w2/f8."""
    as_f64 = np.ascontiguousarray(value, dtype="<f8")
    raw = as_f64.tobytes()
    if cache is not None:
        if cache.sent.get(key) == raw:
            return _CODE_REPEAT, b"", value.size
        cache.sent[key] = raw
    if key in quantized:
        decis = _quantizable(value)
        if decis is not None:
            if _uniform(decis):
                return _CODE_W16_FILL, decis[:1].tobytes(), value.size
            return _CODE_W16, decis.tobytes(), value.size
    if _uniform(as_f64.view("<u8")):
        return _CODE_F64_FILL, raw[:8], value.size
    return _CODE_F64, raw, value.size


def _encode_binary_body(
    doc: dict, quantized: tuple[str, ...], cache: ArrayCache | None
) -> bytes:
    """Serialize a document whose array values ride as raw bytes."""
    scalars: dict = {}
    arrays: list[tuple[str, str, bytes, int]] = []
    for key, value in doc.items():
        if not isinstance(value, np.ndarray):
            scalars[key] = value
            continue
        if value.ndim != 1:
            raise FrameError(
                f"binary frame arrays must be 1-D, {key!r} has shape "
                f"{value.shape}"
            )
        code, payload, n = _encode_array(key, value, quantized, cache)
        arrays.append((key, code, payload, n))
    header = json.dumps(
        {
            "doc": scalars,
            "arrays": [[key, code, n] for key, code, _, n in arrays],
        },
        separators=(",", ":"),
    ).encode("utf-8")
    parts = [
        bytes([BINARY_TAG]),
        len(header).to_bytes(_BINARY_HEADER_LEN_BYTES, "big"),
        header,
    ]
    parts.extend(payload for _, _, payload, _ in arrays)
    return b"".join(parts)


def _decode_array_entry(
    key: str,
    code: str,
    n: int,
    body: bytes,
    offset: int,
    cache: ArrayCache | None,
) -> tuple[np.ndarray, int]:
    """Decode one header entry; returns the array and its payload size."""
    if code == _CODE_REPEAT:
        cached = None if cache is None else cache.seen.get(key)
        if cached is None:
            raise FrameError(
                f"repeat of array {key!r} with nothing cached on this "
                f"stream"
            )
        if cached.size != n:
            raise FrameError(
                f"repeat of array {key!r} declares {n} items, cache "
                f"holds {cached.size}"
            )
        return cached, 0
    fill = _FILL_BYTES.get(code)
    if fill is not None:
        if offset + fill > len(body):
            raise FrameError(f"binary array {key!r} overruns the frame body")
        if n < 0:
            raise FrameError(f"binary array {key!r} declares {n} items")
        array = np.empty(n, dtype="<f8")
        if code == _CODE_W16_FILL:
            deci = np.frombuffer(body, dtype="<u2", count=1, offset=offset)
            array[:] = np.float64(deci[0]) / 10.0
        else:
            ints = np.frombuffer(body, dtype="<u8", count=1, offset=offset)
            array.view("<u8")[:] = ints[0]
        array.setflags(write=False)
        return array, fill
    item = _ITEM_BYTES.get(code)
    if item is None:
        raise FrameError(f"unknown binary array code {code!r}")
    if n < 0 or offset + n * item > len(body):
        raise FrameError(f"binary array {key!r} overruns the frame body")
    if code == _CODE_W16:
        decis = np.frombuffer(body, dtype="<u2", count=n, offset=offset)
        return decis.astype(np.float64) / 10.0, n * item
    return np.frombuffer(body, dtype="<f8", count=n, offset=offset), n * item


def _decode_binary_body(body: bytes, cache: ArrayCache | None) -> dict:
    """Rebuild a binary frame's document; arrays come back as ndarrays."""
    prefix = 1 + _BINARY_HEADER_LEN_BYTES
    if len(body) < prefix:
        raise FrameError("binary frame truncated before its header length")
    header_len = int.from_bytes(body[1:prefix], "big")
    if len(body) < prefix + header_len:
        raise FrameError(
            f"binary frame header declares {header_len} bytes, "
            f"{len(body) - prefix} present"
        )
    try:
        header = json.loads(body[prefix : prefix + header_len].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"binary frame header is not valid JSON: {exc}") from None
    if (
        not isinstance(header, dict)
        or not isinstance(header.get("doc"), dict)
        or not isinstance(header.get("arrays"), list)
    ):
        raise FrameError("binary frame header must hold 'doc' and 'arrays'")
    doc = dict(header["doc"])
    offset = prefix + header_len
    for entry in header["arrays"]:
        try:
            key, code, n = entry
            n = int(n)
        except (TypeError, ValueError):
            raise FrameError(f"malformed binary array entry {entry!r}") from None
        array, consumed = _decode_array_entry(
            key, code, n, body, offset, cache
        )
        doc[key] = array
        if cache is not None:
            cache.seen[key] = array
        offset += consumed
    if offset != len(body):
        raise FrameError(
            f"binary frame carries {len(body) - offset} trailing bytes"
        )
    return doc


def encode_frame(
    doc: dict,
    quantized: tuple[str, ...] = (),
    cache: ArrayCache | None = None,
) -> bytes:
    """Serialize one document to its on-wire frame.

    A document whose values are all JSON scalars/containers encodes as a
    JSON frame, byte-identical to the pre-binary wire format.  Any
    :class:`numpy.ndarray` value switches the document to a binary
    frame; keys named in ``quantized`` pack as u16 deci-watts when the
    :func:`~repro.comm.protocol.quantize_w` lattice holds them exactly.
    Bitwise-uniform arrays collapse to one element (fill codes), and
    with a per-connection ``cache`` an array identical to the last one
    sent under its key collapses to a zero-payload repeat marker — the
    receiving end must then decode through the matching cache of a
    :class:`FrameAssembler` (or :func:`recv_doc`'s ``cache``).

    Raises:
        FrameError: the encoded body exceeds :data:`MAX_FRAME_BYTES`, or
            an array value is not 1-D.
    """
    if any(isinstance(v, np.ndarray) for v in doc.values()):
        body = _encode_binary_body(doc, quantized, cache)
    else:
        body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame body of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return len(body).to_bytes(_LEN_BYTES, "big") + body


def _decode_body(body: bytes, cache: ArrayCache | None = None) -> dict:
    if body[:1] == bytes([BINARY_TAG]):
        return _decode_binary_body(body, cache)
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise FrameError(
            f"frame body must be a JSON object, got {type(doc).__name__}"
        )
    return doc


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError(
                f"peer closed with {remaining} of {n} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_doc(
    sock: socket.socket,
    doc: dict,
    quantized: tuple[str, ...] = (),
    cache: ArrayCache | None = None,
) -> None:
    """Send one framed document (blocking); arrays ride as binary frames."""
    sock.sendall(encode_frame(doc, quantized, cache))


def recv_doc(
    sock: socket.socket, cache: ArrayCache | None = None
) -> dict | None:
    """Receive one framed document (blocking), JSON or binary.

    Returns:
        The decoded document, or None on a clean EOF *at a frame
        boundary* (the peer closed between messages).

    Raises:
        ConnectionError: EOF in the middle of a frame.
        FrameError: oversized length prefix or malformed body.
    """
    try:
        header = _recv_exact(sock, _LEN_BYTES)
    except ConnectionError:
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"declared frame length {length} exceeds {MAX_FRAME_BYTES}"
        )
    return _decode_body(_recv_exact(sock, length), cache)


class FrameAssembler:
    """Incremental reassembly of framed documents from stream fragments.

    A selector-driven loop reads whatever bytes a socket has ready and
    feeds them in; the assembler yields every document completed so far
    without ever blocking.  Unlike the control plane's one-shot
    ``BatchAssembler``, a frame stream is long-lived: the assembler keeps
    consuming frames back to back, dispatching each on its frame tag —
    binary array frames and JSON control frames interleave freely.
    """

    def __init__(self, cache: ArrayCache | None = None) -> None:
        self._buffer = bytearray()
        self.cache = cache

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)

    def reset(self) -> None:
        """Discard any partially assembled frame and the repeat memo.

        Call on reconnect: a frame torn by a dead connection must not
        prefix (and thereby corrupt) the first frame of the next
        session, which arrives on a fresh stream with no relation to the
        old one's framing — and a repeat marker on the new stream must
        never resolve against an array the old stream delivered.
        """
        self._buffer.clear()
        if self.cache is not None:
            self.cache.clear()

    def feed(self, data: bytes) -> list[dict]:
        """Consume one fragment; returns all documents it completed.

        Raises:
            FrameError: oversized length prefix or malformed body — the
                stream cannot be trusted afterwards.
        """
        self._buffer.extend(data)
        docs: list[dict] = []
        while True:
            if len(self._buffer) < _LEN_BYTES:
                return docs
            length = int.from_bytes(self._buffer[:_LEN_BYTES], "big")
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"declared frame length {length} exceeds "
                    f"{MAX_FRAME_BYTES}"
                )
            end = _LEN_BYTES + length
            if len(self._buffer) < end:
                return docs
            body = bytes(self._buffer[_LEN_BYTES:end])
            del self._buffer[:end]
            docs.append(_decode_body(body, self.cache))

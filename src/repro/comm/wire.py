"""Length-prefixed JSON framing for the distributed experiment plane.

The control plane's 3-byte messages (:mod:`repro.comm.protocol`) are sized
for §6.5's per-cycle reading/cap traffic; the *experiment* plane moves
whole job descriptions and result payloads between a campaign coordinator
and its remote workers (:mod:`repro.experiments.distributed`).  This
module frames arbitrary JSON documents over a TCP stream:

``[4-byte big-endian length][UTF-8 JSON body]``

Framing guarantees mirror :mod:`repro.deploy.framing`: a reader either
gets a whole verified document or a hard error — no partial trust of a
stream after a malformed frame.  :class:`FrameAssembler` provides the
non-blocking incremental variant for selector-driven event loops, exactly
as ``BatchAssembler`` does for the control plane.
"""

from __future__ import annotations

import json
import socket

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameAssembler",
    "FrameError",
    "encode_frame",
    "recv_doc",
    "send_doc",
]

#: Upper bound on one frame's body.  A result payload is a few KiB (two
#: run-time tuples plus scalars); anything near this limit is a protocol
#: violation, not a big job.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN_BYTES = 4


class FrameError(ValueError):
    """A malformed frame — the stream cannot be trusted afterwards."""


def encode_frame(doc: dict) -> bytes:
    """Serialize one document to its on-wire frame.

    Raises:
        FrameError: the encoded body exceeds :data:`MAX_FRAME_BYTES`.
    """
    body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame body of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return len(body).to_bytes(_LEN_BYTES, "big") + body


def _decode_body(body: bytes) -> dict:
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise FrameError(
            f"frame body must be a JSON object, got {type(doc).__name__}"
        )
    return doc


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError(
                f"peer closed with {remaining} of {n} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_doc(sock: socket.socket, doc: dict) -> None:
    """Send one framed document (blocking)."""
    sock.sendall(encode_frame(doc))


def recv_doc(sock: socket.socket) -> dict | None:
    """Receive one framed document (blocking).

    Returns:
        The decoded document, or None on a clean EOF *at a frame
        boundary* (the peer closed between messages).

    Raises:
        ConnectionError: EOF in the middle of a frame.
        FrameError: oversized length prefix or non-JSON body.
    """
    try:
        header = _recv_exact(sock, _LEN_BYTES)
    except ConnectionError:
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"declared frame length {length} exceeds {MAX_FRAME_BYTES}"
        )
    return _decode_body(_recv_exact(sock, length))


class FrameAssembler:
    """Incremental reassembly of framed documents from stream fragments.

    A selector-driven loop reads whatever bytes a socket has ready and
    feeds them in; the assembler yields every document completed so far
    without ever blocking.  Unlike the control plane's one-shot
    ``BatchAssembler``, a frame stream is long-lived: the assembler keeps
    consuming frames back to back.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)

    def reset(self) -> None:
        """Discard any partially assembled frame.

        Call on reconnect: a frame torn by a dead connection must not
        prefix (and thereby corrupt) the first frame of the next
        session, which arrives on a fresh stream with no relation to the
        old one's framing.
        """
        self._buffer.clear()

    def feed(self, data: bytes) -> list[dict]:
        """Consume one fragment; returns all documents it completed.

        Raises:
            FrameError: oversized length prefix or malformed body — the
                stream cannot be trusted afterwards.
        """
        self._buffer.extend(data)
        docs: list[dict] = []
        while True:
            if len(self._buffer) < _LEN_BYTES:
                return docs
            length = int.from_bytes(self._buffer[:_LEN_BYTES], "big")
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"declared frame length {length} exceeds "
                    f"{MAX_FRAME_BYTES}"
                )
            end = _LEN_BYTES + length
            if len(self._buffer) < end:
                return docs
            body = bytes(self._buffer[_LEN_BYTES:end])
            del self._buffer[:end]
            docs.append(_decode_body(body))

"""Wire protocol of the DPS server/client pair (paper §6.5).

The paper reports that "only 3 bytes are exchanged per request with each
node"; this module defines that 3-byte encoding so the overhead analysis is
grounded in a real serializer rather than a constant:

* 2 bits of message type (power reading / cap command),
* 10 bits of node-local unit index (a node has few sockets; the node is
  addressed at the transport layer),
* 12 bits of value in 0.1 W steps (0 - 409.5 W, comfortably above any TDP).

Values are round-tripped to within the 0.1 W quantum; out-of-range values
are rejected rather than silently wrapped.
"""

from __future__ import annotations

import math
from typing import NamedTuple

__all__ = [
    "MSG_READING",
    "MSG_CAP",
    "MESSAGE_SIZE_BYTES",
    "Message",
    "encode",
    "decode",
    "quantize_w",
]

#: Message type tags.
MSG_READING = 0
MSG_CAP = 1

#: Exactly the 3 bytes/request of §6.5.
MESSAGE_SIZE_BYTES = 3

_MAX_UNIT = (1 << 10) - 1
_MAX_VALUE_W = ((1 << 12) - 1) / 10.0


def quantize_w(value_w: float) -> float:
    """The wire value (W) a power value serializes to: 0.1 W steps,
    ties rounded half-up.

    Python's built-in ``round`` uses banker's rounding, so a value whose
    float product lands exactly on the 0.05 W boundary (e.g. 0.25 W ->
    2.5 decis) would round to the *even* neighbour — 0.25 W and 0.35 W
    would both decode as 0.2/0.4 W while 0.15 W decodes as 0.2 W.
    Explicit half-up keeps quantization monotone and direction-stable at
    every boundary; anything a peer decodes equals ``quantize_w`` of what
    was sent.
    """
    return math.floor(value_w * 10.0 + 0.5) / 10.0


class Message(NamedTuple):
    """A decoded protocol message.

    Attributes:
        kind: :data:`MSG_READING` or :data:`MSG_CAP`.
        unit: node-local unit index (0-1023).
        value_w: power value in watts, 0.1 W resolution.
    """

    kind: int
    unit: int
    value_w: float


def encode(kind: int, unit: int, value_w: float) -> bytes:
    """Pack one message into 3 bytes.

    Args:
        kind: message type tag.
        unit: node-local unit index.
        value_w: power value (W).

    Raises:
        ValueError: unknown kind, unit out of range, or value outside
            ``[0, 409.5]`` W.
    """
    if kind not in (MSG_READING, MSG_CAP):
        raise ValueError(f"unknown message kind {kind}")
    if not 0 <= unit <= _MAX_UNIT:
        raise ValueError(f"unit must be in [0, {_MAX_UNIT}], got {unit}")
    if not 0.0 <= value_w <= _MAX_VALUE_W:
        raise ValueError(
            f"value_w must be in [0, {_MAX_VALUE_W}], got {value_w}"
        )
    # Half-up, not round(): banker's rounding would turn exact 0.05 W
    # boundaries into round-to-even (see quantize_w).
    quantized = math.floor(value_w * 10.0 + 0.5)
    word = (kind << 22) | (unit << 12) | quantized
    return word.to_bytes(MESSAGE_SIZE_BYTES, "big")


def decode(payload: bytes) -> Message:
    """Unpack 3 bytes into a :class:`Message`.

    Raises:
        ValueError: wrong payload length.
    """
    if len(payload) != MESSAGE_SIZE_BYTES:
        raise ValueError(
            f"expected {MESSAGE_SIZE_BYTES} bytes, got {len(payload)}"
        )
    word = int.from_bytes(payload, "big")
    kind = (word >> 22) & 0x3
    unit = (word >> 12) & 0x3FF
    value = (word & 0xFFF) / 10.0
    if kind not in (MSG_READING, MSG_CAP):
        raise ValueError(f"corrupt message kind {kind}")
    return Message(kind=kind, unit=unit, value_w=value)

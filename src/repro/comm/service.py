"""Server/client control plane over the simulated network (paper §4.3, §6.5).

DPS "consists of a server on a central node and clients on each computing
node": clients read power and set caps for their sockets; the server runs
the control system.  :class:`PowerClient` and :class:`PowerServer` implement
that split over the 3-byte protocol and the latency-modelled network, so the
overhead analysis measures an actual message exchange:

* one *reading* message per unit, client → server;
* one *cap* message per unit, server → client;
* the server's decision compute time measured with a monotonic clock.

Clients are polled concurrently (asynchronous BSD sockets): propagation
latency overlaps and is paid once per direction, while the controller's
per-message handling and the wire bytes serialize — so a cycle's network
turnaround grows linearly in unit count with a microsecond-scale constant,
which is exactly the §6.5 scaling argument.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.node import Node
from repro.comm.network import NetworkModel
from repro.comm.protocol import MSG_CAP, MSG_READING, decode, encode
from repro.core.managers import PowerManager

__all__ = ["PowerClient", "PowerServer", "CycleReport"]


class PowerClient:
    """Per-node daemon: meters its sockets and programs their caps.

    Args:
        node: the node this client manages.
    """

    def __init__(self, node: Node) -> None:
        self.node = node

    def poll(self, dt_s: float) -> list[bytes]:
        """Read every socket's meter and encode one reading message each."""
        messages = []
        for local, sock in enumerate(self.node.sockets):
            power = sock.meter.read_power_w(dt_s)
            messages.append(encode(MSG_READING, local, min(power, 409.5)))
        return messages

    def apply(self, messages: list[bytes]) -> None:
        """Decode cap commands and program the named sockets.

        Raises:
            ValueError: a non-cap message or an unknown local unit index.
        """
        for payload in messages:
            msg = decode(payload)
            if msg.kind != MSG_CAP:
                raise ValueError(f"client received non-cap message {msg}")
            if msg.unit >= len(self.node.sockets):
                raise ValueError(
                    f"cap for unknown local unit {msg.unit} on node "
                    f"{self.node.node_id}"
                )
            self.node.sockets[msg.unit].domain.set_cap_w(msg.value_w)


@dataclass(frozen=True)
class CycleReport:
    """Cost breakdown of one control cycle.

    Attributes:
        network_s: cycle network latency — one overlapped propagation per
            direction plus the serialized per-message/wire costs.
        compute_s: wall time of the manager's decision.
        bytes_up / bytes_down: readings / cap traffic this cycle.
    """

    network_s: float
    compute_s: float
    bytes_up: int
    bytes_down: int

    @property
    def turnaround_s(self) -> float:
        """End-to-end cycle latency (network + decision)."""
        return self.network_s + self.compute_s


class PowerServer:
    """Central controller: collects readings, decides, pushes caps.

    Args:
        manager: the (already bound) power manager making decisions.
        clients: one client per node, in node order; the concatenation of
            their sockets must cover the manager's unit range in order.
        network: shared latency/traffic model.
    """

    def __init__(
        self,
        manager: PowerManager,
        clients: list[PowerClient],
        network: NetworkModel,
    ) -> None:
        if not clients:
            raise ValueError("at least one client is required")
        n_units = sum(len(c.node.sockets) for c in clients)
        if n_units != manager.n_units:
            raise ValueError(
                f"clients expose {n_units} units but the manager is bound "
                f"to {manager.n_units}"
            )
        self.manager = manager
        self.clients = clients
        self.network = network
        #: Readings decoded in the most recent cycle (for telemetry).
        self.last_readings: np.ndarray = np.zeros(
            manager.n_units, dtype=np.float64
        )

    def control_cycle(self, dt_s: float) -> CycleReport:
        """Run one full poll → decide → cap cycle.

        Args:
            dt_s: interval since the previous cycle (meter window).

        Returns:
            A :class:`CycleReport` with the cycle's cost breakdown.
        """
        readings = np.empty(self.manager.n_units, dtype=np.float64)
        serialized_s = 0.0
        bytes_up = 0

        offset = 0
        uplinks: list[tuple[PowerClient, int, list[bytes]]] = []
        for client in self.clients:
            messages = client.poll(dt_s)
            for payload in messages:
                serialized_s += self.network.transfer(len(payload))
                bytes_up += len(payload)
            uplinks.append((client, offset, messages))
            offset += len(messages)

        for _, base, messages in uplinks:
            for payload in messages:
                msg = decode(payload)
                readings[base + msg.unit] = msg.value_w
        self.last_readings = readings.copy()

        started = time.perf_counter()
        caps = self.manager.step(readings)
        compute_s = time.perf_counter() - started

        bytes_down = 0
        for client, base, messages in uplinks:
            down = []
            for local in range(len(messages)):
                down.append(
                    encode(MSG_CAP, local, min(float(caps[base + local]), 409.5))
                )
            for payload in down:
                serialized_s += self.network.transfer(len(payload))
                bytes_down += len(payload)
            client.apply(down)

        return CycleReport(
            network_s=2 * self.network.propagation_s() + serialized_s,
            compute_s=compute_s,
            bytes_up=bytes_up,
            bytes_down=bytes_down,
        )

"""Simulated server/client control plane and its 3-byte wire protocol."""

from repro.comm.net import bind_listener
from repro.comm.network import LinkStats, NetworkModel
from repro.comm.protocol import (
    MESSAGE_SIZE_BYTES,
    MSG_CAP,
    MSG_READING,
    Message,
    decode,
    encode,
)
from repro.comm.service import CycleReport, PowerClient, PowerServer
from repro.comm.shardlink import TcpShardLink
from repro.comm.wire import (
    MAX_FRAME_BYTES,
    FrameAssembler,
    FrameError,
    encode_frame,
    recv_doc,
    send_doc,
)

__all__ = [
    "CycleReport",
    "FrameAssembler",
    "FrameError",
    "LinkStats",
    "MAX_FRAME_BYTES",
    "MESSAGE_SIZE_BYTES",
    "MSG_CAP",
    "MSG_READING",
    "Message",
    "NetworkModel",
    "PowerClient",
    "PowerServer",
    "TcpShardLink",
    "bind_listener",
    "decode",
    "encode",
    "encode_frame",
    "recv_doc",
    "send_doc",
]

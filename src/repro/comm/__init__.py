"""Simulated server/client control plane and its 3-byte wire protocol."""

from repro.comm.network import LinkStats, NetworkModel
from repro.comm.protocol import (
    MESSAGE_SIZE_BYTES,
    MSG_CAP,
    MSG_READING,
    Message,
    decode,
    encode,
)
from repro.comm.service import CycleReport, PowerClient, PowerServer

__all__ = [
    "CycleReport",
    "LinkStats",
    "MESSAGE_SIZE_BYTES",
    "MSG_CAP",
    "MSG_READING",
    "Message",
    "NetworkModel",
    "PowerClient",
    "PowerServer",
    "decode",
    "encode",
]

"""Listener-socket helpers shared by every TCP-serving component.

Both control planes — the deploy server's 3-byte protocol and the
experiment plane's framed-document workers — open listener sockets the
same way, and both used to do it inline.  This module centralizes the
one operation that has bitten multi-server tests: *binding*.

Two rules make multi-server harnesses collision-proof:

1. **Bind port 0 unless a caller explicitly pins a port.**  The kernel
   picks a free ephemeral port and the chosen address is plumbed through
   (``sock.getsockname()``), so two servers in one process can never
   race for the same port.
2. **Bounded retry on transient ``EADDRINUSE``.**  Even a pinned port
   can transiently collide (a just-closed listener lingering before
   ``SO_REUSEADDR`` takes effect, a parallel test worker releasing the
   port a beat late).  :func:`bind_listener` retries a bounded number of
   times with a short delay before giving up loudly.
"""

from __future__ import annotations

import errno
import socket
import time

__all__ = ["bind_listener"]

#: Bounded retry policy for transient EADDRINUSE on pinned ports.
_BIND_RETRIES = 5
_BIND_DELAY_S = 0.05


def bind_listener(
    host: str,
    port: int,
    backlog: int = 128,
    timeout_s: float | None = None,
    retries: int = _BIND_RETRIES,
    delay_s: float = _BIND_DELAY_S,
) -> socket.socket:
    """Create, bind, and listen a TCP server socket.

    Args:
        host: interface to bind.
        port: port to bind; 0 (the recommended default for harnesses and
            tests) lets the kernel pick a free port — read it back from
            ``sock.getsockname()``.
        backlog: listen queue depth.
        timeout_s: optional socket timeout applied after listen.
        retries: additional bind attempts on transient ``EADDRINUSE``.
        delay_s: sleep between attempts.

    Returns:
        The listening socket.

    Raises:
        OSError: the bind failed for any non-transient reason, or the
            port stayed busy through every retry.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    attempt = 0
    while True:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
            sock.listen(backlog)
        except OSError as exc:
            sock.close()
            transient = exc.errno == errno.EADDRINUSE and port != 0
            if transient and attempt < retries:
                attempt += 1
                time.sleep(delay_s)
                continue
            raise
        if timeout_s is not None:
            sock.settimeout(timeout_s)
        return sock

"""The arbiter's edge of a real TCP shard link.

:class:`TcpShardLink` implements the :class:`~repro.shard.lease.ShardLink`
contract over a nonblocking socket dialed at a shard-server's listener
(:mod:`repro.shard.process`).  Where the in-process loopback link fakes a
partition with a boolean, this one gets the real failure modes for free —
connection refused while the shard restarts, RST on a SIGKILLed peer,
buffered bytes delivered after the peer exited — and adds the two
behaviours a long-lived dialer needs:

* **reconnect with jittered exponential backoff**: a send or drain that
  finds the link down schedules the next dial attempt instead of
  blocking; attempts decorrelate across links so a restarted shard is
  not hit by a thundering herd;
* **assembler reset on reconnect**: a frame torn by a dead connection is
  discarded (:meth:`~repro.comm.wire.FrameAssembler.reset`) so it cannot
  prefix — and thereby corrupt — the first frame of the next session.

On every successful connect the link identifies itself with a
``{"type": "hello", "role": "arbiter"}`` document; the shard-server
answers with its own shard HELLO, which the arbiter's admission path
consumes (:meth:`repro.shard.arbiter.BudgetArbiter.admit`).

The link is symmetric on the wire — frames out, frames in — so both
edge pairs of the contract (``send_grant``/``take_summaries`` for the
arbiter, ``send_summary``/``take_grants`` for a dial-out shard) map onto
one send and one drain primitive.  Like the loopback link's arbiter
edge, it is meant to be driven from one thread (the arbiter's); the
internal lock only guards against an observer calling
:meth:`partition`/:meth:`heal` from a harness thread.
"""

from __future__ import annotations

import random
import select
import socket
import threading
import time
from typing import Callable

from repro.comm.wire import FrameAssembler, FrameError, encode_frame
from repro.telemetry.log import ResilienceEventLog

__all__ = ["TcpShardLink"]

#: Per-drain receive chunk.
_RECV_BYTES = 65536


class TcpShardLink:
    """Dialing edge of the arbiter↔shard channel over real TCP.

    Args:
        address: ``(host, port)`` of the shard-server's listener.
        shard_id: shard index stamped on ``link_reconnect`` events.
        connect_timeout_s: dial timeout per attempt.
        send_timeout_s: bound on one blocking ``sendall``.
        backoff_base_s / backoff_max_s: reconnect backoff window; the
            delay after ``k`` failures is
            ``min(max, base * 2**k) * uniform(0.5, 1.5)``.
        seed: jitter stream seed (deterministic chaos drills).
        events: optional structured event sink for ``link_reconnect``.
        clock: event-timestamp source (the harness passes its cycle
            clock; wall time is meaningless inside a simulated drill).
    """

    def __init__(
        self,
        address: tuple[str, int],
        shard_id: int | None = None,
        connect_timeout_s: float = 2.0,
        send_timeout_s: float = 2.0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 1.0,
        seed: int = 0,
        events: ResilienceEventLog | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self.shard_id = shard_id
        self.connect_timeout_s = float(connect_timeout_s)
        self.send_timeout_s = float(send_timeout_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.events = events
        self.clock = clock if clock is not None else (lambda: 0.0)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._assembler = FrameAssembler()
        self._suppressed = False
        self._attempts = 0
        self._next_attempt_at = 0.0
        self._ever_connected = False
        #: Successful re-establishments after a drop.
        self.reconnects = 0
        #: Frame bytes accepted in both directions.
        self.bytes_total = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def partitioned(self) -> bool:
        """True while dialing is administratively suppressed."""
        with self._lock:
            return self._suppressed

    @property
    def connected(self) -> bool:
        with self._lock:
            return self._sock is not None

    def partition(self) -> None:
        """Sever the link and refuse to redial until :meth:`heal`."""
        with self._lock:
            self._suppressed = True
            self._close_locked()

    def heal(self) -> None:
        """Allow dialing again (the next send/drain reconnects)."""
        with self._lock:
            self._suppressed = False
            self._attempts = 0
            self._next_attempt_at = 0.0

    def close(self) -> None:
        """Drop the connection without suppressing future redials."""
        with self._lock:
            self._close_locked()

    def wait_readable(self, timeout_s: float) -> bool:
        """Block (bounded) until the peer's next frame starts arriving.

        The lock-step harness uses this to close the cross-socket race
        between a shard's summary (on this link) and its cycle ack (on
        the clock connection): the ack's arrival does not imply the
        summary already reached this socket's buffer.  Returns False
        when the link is down, suppressed, or stays quiet through the
        timeout — all cases the lease protocol already tolerates.
        """
        with self._lock:
            sock = self._sock
            if self._suppressed or sock is None:
                return False
        try:
            readable, _, _ = select.select([sock], [], [], timeout_s)
        except (OSError, ValueError):
            return False
        return bool(readable)

    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure_connected_locked(self) -> bool:
        """Dial if down and due; returns True when a socket is live."""
        if self._suppressed:
            return False
        if self._sock is not None:
            return True
        now = time.monotonic()
        if now < self._next_attempt_at:
            return False
        try:
            sock = socket.create_connection(
                self.address, timeout=self.connect_timeout_s
            )
        except OSError:
            self._attempts += 1
            delay = min(
                self.backoff_max_s,
                self.backoff_base_s * (2 ** min(self._attempts, 6)),
            )
            self._next_attempt_at = now + delay * (
                0.5 + self._rng.random()
            )
            return False
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # A torn frame from the previous session must not corrupt this
        # one: the stream restarts at a frame boundary.
        self._assembler.reset()
        hello = encode_frame({"type": "hello", "role": "arbiter"})
        try:
            sock.settimeout(self.send_timeout_s)
            sock.sendall(hello)
        except OSError:
            sock.close()
            self._attempts += 1
            self._next_attempt_at = now + self.backoff_base_s
            return False
        sock.setblocking(False)
        self._sock = sock
        self._attempts = 0
        self._next_attempt_at = 0.0
        self.bytes_total += len(hello)
        if self._ever_connected:
            self.reconnects += 1
            if self.events is not None:
                self.events.emit(
                    self.clock(),
                    "link_reconnect",
                    node_id=self.shard_id,
                    detail=(
                        f"reconnected to {self.address[0]}:"
                        f"{self.address[1]} (drop #{self.reconnects})"
                    ),
                )
        self._ever_connected = True
        return True

    # -- send / drain primitives ---------------------------------------

    def _send(self, doc: dict) -> bool:
        """Frame and send one document; False when it never hit the wire."""
        frame = encode_frame(doc)
        with self._lock:
            if not self._ensure_connected_locked():
                return False
            sock = self._sock
            try:
                sock.settimeout(self.send_timeout_s)
                sock.sendall(frame)
            except OSError:
                self._close_locked()
                return False
            finally:
                if self._sock is not None:
                    self._sock.setblocking(False)
            self.bytes_total += len(frame)
        return True

    def _take(self) -> list[dict]:
        """Drain everything the socket has ready and decode it.

        Bytes are drained under the lock; frames decode outside it (the
        same discipline as the loopback link).  EOF and resets close the
        connection but still deliver the bytes that preceded them — a
        drained shard's final summary survives its process exit.
        """
        chunks: list[bytes] = []
        with self._lock:
            if not self._ensure_connected_locked():
                return []
            while True:
                try:
                    data = self._sock.recv(_RECV_BYTES)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError:
                    self._close_locked()
                    break
                if not data:
                    self._close_locked()
                    break
                chunks.append(data)
            assembler = self._assembler
        docs: list[dict] = []
        for data in chunks:
            self.bytes_total += len(data)
            try:
                docs.extend(assembler.feed(data))
            except FrameError:
                # The stream cannot be trusted past this point; drop the
                # connection and let the reconnect reset the assembler.
                with self._lock:
                    self._close_locked()
                break
        return docs

    # -- ShardLink contract: arbiter edge ------------------------------

    def send_grant(self, doc: dict) -> bool:
        return self._send(doc)

    def take_summaries(self) -> list[dict]:
        return self._take()

    # -- ShardLink contract: shard edge (a dial-out shard) -------------

    def send_summary(self, doc: dict) -> bool:
        return self._send(doc)

    def take_grants(self) -> list[dict]:
        return self._take()

"""Simulated cluster network with latency and byte accounting (§6.5).

The paper measures tens of microseconds of BSD-socket latency per request
and argues scaling: "scaling to 1,000 nodes would only incur a several
millisecond latency ... scaling to even 1M nodes, requiring a network
traffic size of 3MB, would put little burden on a network bandwidth in
GB/s".  :class:`NetworkModel` encodes that cost model — a fixed per-message
latency plus a bandwidth term — and :class:`LinkStats` counts what actually
crossed the wire so the overhead bench reports measured, not assumed,
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NetworkModel", "LinkStats"]


@dataclass
class LinkStats:
    """Running totals of one direction of traffic.

    Attributes:
        messages: messages transferred.
        bytes: payload bytes transferred.
        busy_s: cumulative transfer latency.
    """

    messages: int = 0
    bytes: int = 0
    busy_s: float = 0.0


@dataclass
class NetworkModel:
    """Latency/bandwidth model of the management network.

    The cost structure follows the paper's scaling argument: message
    *propagation* (tens of microseconds on a LAN) overlaps across clients,
    so a control cycle pays it roughly once per direction; what serializes
    at the controller is the per-message handling cost (socket syscall +
    dispatch, a few microseconds) and the wire bytes against the link
    bandwidth.  With these constants, 1,000 nodes cost several milliseconds
    per cycle and 1M nodes' 3-byte requests are ~MBs of traffic — exactly
    the §6.5 numbers.

    Attributes:
        base_latency_s: one-way propagation latency (default 50 µs),
            overlapped across concurrent clients.
        server_per_message_s: serialized controller-side cost per message
            (default 3 µs).
        bandwidth_bytes_per_s: link bandwidth (default 1.25 GB/s = 10 GbE).
        stats: accumulated traffic totals.
    """

    base_latency_s: float = 50e-6
    server_per_message_s: float = 3e-6
    bandwidth_bytes_per_s: float = 1.25e9
    stats: LinkStats = field(default_factory=LinkStats)

    def __post_init__(self) -> None:
        if self.base_latency_s < 0:
            raise ValueError(
                f"base_latency_s must be >= 0, got {self.base_latency_s}"
            )
        if self.server_per_message_s < 0:
            raise ValueError(
                "server_per_message_s must be >= 0, got "
                f"{self.server_per_message_s}"
            )
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                "bandwidth_bytes_per_s must be > 0, got "
                f"{self.bandwidth_bytes_per_s}"
            )

    def transfer(self, n_bytes: int) -> float:
        """Account one message and return its *serialized* cost (s).

        The returned latency covers only the components that do not
        overlap across clients: controller-side handling plus wire time.
        Propagation is charged once per cycle direction via
        :meth:`propagation_s`.
        """
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        latency = (
            self.server_per_message_s + n_bytes / self.bandwidth_bytes_per_s
        )
        self.stats.messages += 1
        self.stats.bytes += n_bytes
        self.stats.busy_s += latency
        return latency

    def propagation_s(self) -> float:
        """One direction's overlapped propagation latency (paid per cycle)."""
        return self.base_latency_s

    def reset_stats(self) -> None:
        """Zero the traffic totals."""
        self.stats = LinkStats()

"""Reproduction of *DPS: Adaptive Power Management for Overprovisioned
Systems* (Ding & Hoffmann, SC '23).

The public API re-exports the pieces a downstream user needs:

* the four power managers (``DPSManager``, ``SlurmManager``,
  ``ConstantManager``, ``OracleManager``) and their configs;
* the simulated substrate (``Cluster``, ``Simulation``, RAPL domains,
  workload suites);
* the evaluation metrics (satisfaction, fairness, speedups);
* the experiment harness that regenerates every table and figure.

Quick start::

    from repro import ExperimentConfig, ExperimentHarness, SimulationConfig

    cfg = ExperimentConfig(sim=SimulationConfig(time_scale=0.1), repeats=2)
    harness = ExperimentHarness(cfg)
    result = harness.evaluate_managers("kmeans", "gmm")
    print(result["dps"].hmean_speedup, result["slurm"].hmean_speedup)
"""

from repro.cluster import (
    Assignment,
    Cluster,
    Simulation,
    SimulationResult,
    progress_rate,
)
from repro.core import (
    ClusterSpec,
    ConstantManager,
    DPSConfig,
    DPSManager,
    DPSPlusManager,
    DemandEstimator,
    DemandEstimatorConfig,
    HierarchicalManager,
    KalmanBank,
    KalmanConfig,
    OracleManager,
    PerfModelConfig,
    PowerManager,
    PriorityConfig,
    PriorityModule,
    RaplConfig,
    ReadjustConfig,
    SimulationConfig,
    SlurmManager,
    StatelessConfig,
    available_managers,
    create_manager,
)
from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentHarness,
    PairEvaluation,
    PairOutcome,
    ReferenceStats,
)
from repro.metrics import fairness, hmean, satisfaction, speedup
from repro.workloads import (
    PhaseProgram,
    WorkloadSpec,
    all_workloads,
    get_workload,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "Assignment",
    "Cluster",
    "ClusterSpec",
    "ConstantManager",
    "DPSConfig",
    "DPSManager",
    "DPSPlusManager",
    "DemandEstimator",
    "DemandEstimatorConfig",
    "ExperimentConfig",
    "HierarchicalManager",
    "ExperimentHarness",
    "KalmanBank",
    "KalmanConfig",
    "OracleManager",
    "PairEvaluation",
    "PairOutcome",
    "PerfModelConfig",
    "PhaseProgram",
    "PowerManager",
    "PriorityConfig",
    "PriorityModule",
    "RaplConfig",
    "ReadjustConfig",
    "ReferenceStats",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "SlurmManager",
    "StatelessConfig",
    "WorkloadSpec",
    "all_workloads",
    "available_managers",
    "create_manager",
    "fairness",
    "get_workload",
    "hmean",
    "progress_rate",
    "satisfaction",
    "speedup",
    "workload_names",
    "__version__",
]

#!/usr/bin/env bash
# Reproduce every result in this repository (the artifact's
# run_experiment.sh equivalent).
#
# Usage:
#   ./scripts/reproduce_all.sh           # scaled-down, ~5 minutes
#   FULL=1 ./scripts/reproduce_all.sh    # paper-proportioned, hours
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${FULL:-0}" == "1" ]]; then
    export REPRO_BENCH_TIME_SCALE=1.0
    export REPRO_BENCH_REPEATS=10
    echo "== paper-scale configuration (this will take hours) =="
else
    echo "== scaled-down configuration (REPRO_BENCH_TIME_SCALE=0.2) =="
fi

echo "== test suite =="
python -m pytest tests/

echo "== every table and figure =="
python -m pytest benchmarks/ --benchmark-only -s

echo "== persisted campaign + report =="
python -m repro.cli --time-scale "${REPRO_BENCH_TIME_SCALE:-0.2}" \
    --repeats "${REPRO_BENCH_REPEATS:-2}" \
    campaign --out campaign.json
python -m repro.cli report campaign.json > campaign_report.md
echo "wrote campaign.json and campaign_report.md"

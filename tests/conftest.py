"""Shared fixtures for the test suite.

Tests run on a deliberately small, fast configuration: a 4-node cluster and
heavily time-scaled workloads.  The full-scale paper configuration is only
exercised by the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import (
    ClusterSpec,
    DPSConfig,
    PerfModelConfig,
    RaplConfig,
    SimulationConfig,
)
from repro.experiments.harness import ExperimentConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic randomness for a test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_cluster_spec() -> ClusterSpec:
    """A 4-node / 8-socket cluster with the paper's per-socket numbers."""
    return ClusterSpec(n_nodes=4, sockets_per_node=2)


@pytest.fixture
def fast_config(small_cluster_spec: ClusterSpec) -> ExperimentConfig:
    """A harness configuration that keeps pair simulations under ~1 s."""
    return ExperimentConfig(
        cluster=small_cluster_spec,
        sim=SimulationConfig(time_scale=0.05, max_steps=60_000,
                             inter_run_gap_s=2.0),
        perf=PerfModelConfig(),
        rapl=RaplConfig(),
        dps=DPSConfig(),
        repeats=1,
        seed=99,
    )

"""End-to-end shape tests: the paper's qualitative results must emerge.

These run the full stack (workloads → RAPL physics → manager → metrics) on
a 4-node cluster at 0.25 time scale and assert the *orderings* the paper
reports — who wins, and on which side of the constant-allocation baseline
each manager lands.  Margins are deliberately loose; exact magnitudes are
the benchmarks' job.
"""

import numpy as np
import pytest

from repro.core.config import ClusterSpec, SimulationConfig
from repro.experiments.harness import ExperimentConfig, ExperimentHarness


@pytest.fixture(scope="module")
def harness():
    cfg = ExperimentConfig(
        cluster=ClusterSpec(n_nodes=4, sockets_per_node=2),
        sim=SimulationConfig(time_scale=0.25, max_steps=200_000),
        repeats=1,
        seed=3,
    )
    return ExperimentHarness(cfg)


class TestHighUtilityShapes:
    """Paper §6.2: phased Spark paired with the always-hungry GMM."""

    def test_slurm_starves_phased_workload(self, harness):
        ev = harness.evaluate_pair("kmeans", "gmm", "slurm")
        assert ev.speedup_a < 0.96

    def test_dps_beats_slurm_on_phased_workload(self, harness):
        slurm = harness.evaluate_pair("kmeans", "gmm", "slurm")
        dps = harness.evaluate_pair("kmeans", "gmm", "dps")
        assert dps.speedup_a > slurm.speedup_a + 0.02
        assert dps.hmean_speedup > slurm.hmean_speedup

    def test_dps_hmean_at_least_constant(self, harness):
        dps = harness.evaluate_pair("kmeans", "gmm", "dps")
        assert dps.hmean_speedup > 0.99

    def test_dps_fairness_exceeds_slurm(self, harness):
        slurm = harness.evaluate_pair("kmeans", "gmm", "slurm")
        dps = harness.evaluate_pair("kmeans", "gmm", "dps")
        assert dps.fairness > slurm.fairness + 0.05


class TestSparkNpbShapes:
    """Paper §6.3: Spark against sustained-high NPB kernels."""

    def test_slurm_hmean_below_constant(self, harness):
        ev = harness.evaluate_pair("bayes", "cg", "slurm")
        assert ev.hmean_speedup < 0.99
        assert ev.speedup_a < 0.9      # Spark side starved...
        assert ev.speedup_b > 1.05     # ...NPB side boosted.

    def test_dps_hmean_above_constant(self, harness):
        ev = harness.evaluate_pair("bayes", "cg", "dps")
        assert ev.hmean_speedup > 1.0

    def test_dps_beats_slurm(self, harness):
        slurm = harness.evaluate_pair("bayes", "cg", "slurm")
        dps = harness.evaluate_pair("bayes", "cg", "dps")
        assert dps.hmean_speedup > slurm.hmean_speedup + 0.02
        assert dps.fairness > slurm.fairness + 0.1


class TestHighFrequencyShapes:
    """Paper §6.1: SLURM loses on the high-frequency LR; DPS holds the
    constant-allocation lower bound."""

    def test_slurm_below_constant(self, harness):
        ev = harness.evaluate_pair("lr", "wordcount", "slurm")
        assert ev.hmean_speedup < 0.97

    def test_dps_holds_lower_bound(self, harness):
        ev = harness.evaluate_pair("lr", "wordcount", "dps")
        assert ev.speedup_a > 0.97
        assert ev.speedup_b > 0.97


class TestLowUtilityShapes:
    """Paper §6.1: with a low-power partner, DPS tracks the oracle."""

    def test_dps_close_to_oracle(self, harness):
        oracle = harness.evaluate_pair("bayes", "sort", "oracle")
        dps = harness.evaluate_pair("bayes", "sort", "dps")
        assert dps.speedup_a > 1.0  # Both beat constant allocation...
        assert oracle.speedup_a > 1.0
        # ...and DPS lands within a few points of the oracle.
        assert abs(dps.speedup_a - oracle.speedup_a) < 0.06


class TestInvariants:
    @pytest.mark.parametrize("manager", ["constant", "slurm", "dps", "oracle"])
    def test_budget_respected(self, harness, manager):
        ev = harness.evaluate_pair("bayes", "sort", manager)
        budget = harness.config.cluster.budget_w
        assert ev.outcome.max_caps_sum_w <= budget * (1 + 1e-6)

    def test_reproducible_across_harnesses(self, harness):
        other = ExperimentHarness(harness.config)
        a = harness.evaluate_pair("kmeans", "gmm", "dps")
        b = other.evaluate_pair("kmeans", "gmm", "dps")
        assert a.speedup_a == pytest.approx(b.speedup_a)
        assert a.fairness == pytest.approx(b.fairness)


class TestAblations:
    def test_frequency_detection_matters_for_lr(self, harness):
        """Disabling the high-frequency detector must not beat full DPS on
        the high-frequency workload (DESIGN.md ablation 2)."""
        from repro.core.config import DPSConfig
        import dataclasses

        no_freq_cfg = dataclasses.replace(
            harness.config, dps=DPSConfig(use_frequency=False)
        )
        no_freq = ExperimentHarness(no_freq_cfg)
        full = harness.evaluate_pair("lr", "gmm", "dps")
        ablated = no_freq.evaluate_pair("lr", "gmm", "dps")
        assert full.speedup_a >= ablated.speedup_a - 0.03

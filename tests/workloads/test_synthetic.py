"""Synthetic workload composer."""

import pytest

from repro.workloads.synthetic import random_program, random_workload


class TestRandomProgram:
    def test_deterministic(self):
        a = random_program(42)
        b = random_program(42)
        assert a.duration_s == b.duration_s
        assert len(a.phases) == len(b.phases)

    def test_different_seeds_differ(self):
        assert random_program(1).duration_s != random_program(2).duration_s

    def test_requested_phase_count(self):
        assert len(random_program(5, n_phases=7).phases) == 7

    def test_rejects_zero_phases(self):
        with pytest.raises(ValueError, match="n_phases"):
            random_program(1, n_phases=0)

    def test_rejects_inverted_band(self):
        with pytest.raises(ValueError, match="max_power_w"):
            random_program(1, min_power_w=100.0, max_power_w=50.0)


class TestRandomWorkload:
    def test_wraps_in_spec(self):
        w = random_workload(9)
        assert w.name == "synthetic-9"
        assert w.program.duration_s > 0
        assert 0 <= w.paper_above_110_pct <= 100

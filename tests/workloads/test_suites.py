"""Spark/NPB suite calibration against the paper's Tables 2-4."""

import pytest

from repro.workloads.npb import NPB_WORKLOADS, npb_names, npb_workload
from repro.workloads.registry import (
    all_workloads,
    executor_config,
    get_workload,
    workload_names,
)
from repro.workloads.spark import SPARK_WORKLOADS, spark_names, spark_workload


class TestSparkSuite:
    def test_eleven_workloads(self):
        assert len(SPARK_WORKLOADS) == 11

    def test_power_classes_match_table2(self):
        assert spark_names("low") == [
            "wordcount", "sort", "terasort", "repartition",
        ]
        assert spark_names("high") == ["gmm"]
        assert len(spark_names("mid")) == 6

    @pytest.mark.parametrize("name", list(SPARK_WORKLOADS))
    def test_above_110_matches_paper(self, name):
        """The measured >110 W fraction tracks Table 2 within 5 points."""
        spec = spark_workload(name)
        measured = spec.program.fraction_above(110.0) * 100
        assert measured == pytest.approx(spec.paper_above_110_pct, abs=5.0)

    @pytest.mark.parametrize("name", list(SPARK_WORKLOADS))
    def test_class_thresholds_hold(self, name):
        """The paper's labeling rule (§5.2) holds for the programs."""
        spec = spark_workload(name)
        frac = spec.program.fraction_above(110.0)
        if spec.power_class == "low":
            assert frac < 0.10
        elif spec.power_class == "mid":
            assert 0.10 <= frac < 2 / 3
        else:
            assert frac >= 2 / 3

    def test_uncapped_durations_below_paper_capped(self):
        """Uncapped programs must be faster than the capped Table 2 runs."""
        for spec in SPARK_WORKLOADS.values():
            assert spec.program.duration_s < spec.paper_duration_s

    def test_lda_has_long_phases(self):
        """Figure 2a: LDA holds > 100 s phases."""
        from repro.workloads.phases import Hold

        holds = [
            p for p in spark_workload("lda").program.phases
            if isinstance(p, Hold) and p.power_w > 110
        ]
        assert any(h.duration_s >= 100 for h in holds)

    def test_lr_is_high_frequency(self):
        """Figure 2c: LR has sub-10 s bursts."""
        from repro.workloads.phases import Oscillate

        oscs = [
            p for p in spark_workload("lr").program.phases
            if isinstance(p, Oscillate)
        ]
        assert oscs and all(o.period_s < 10 for o in oscs)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="available"):
            spark_workload("nope")

    def test_lookup_case_insensitive(self):
        assert spark_workload("KMeans").name == "kmeans"

    def test_low_power_single_active_unit(self):
        for name in spark_names("low"):
            assert spark_workload(name).active_units == 1


class TestNpbSuite:
    def test_eight_workloads(self):
        assert len(NPB_WORKLOADS) == 8
        assert npb_names() == ["bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"]

    @pytest.mark.parametrize("name", list(NPB_WORKLOADS))
    def test_sustained_high_power(self, name):
        """§5.2: over 99 % of time above 110 W (tolerance for the ramps)."""
        spec = npb_workload(name)
        assert spec.program.fraction_above(110.0) > 0.93

    @pytest.mark.parametrize("name", list(NPB_WORKLOADS))
    def test_durations_track_table4(self, name):
        spec = npb_workload(name)
        assert spec.program.duration_s < spec.paper_duration_s
        assert spec.program.duration_s > 0.6 * spec.paper_duration_s

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="available"):
            npb_workload("zz")


class TestRegistry:
    def test_all_nineteen(self):
        assert len(all_workloads()) == 19

    def test_get_spans_suites(self):
        assert get_workload("gmm").suite == "spark"
        assert get_workload("EP").suite == "npb"

    def test_filtering(self):
        assert len(workload_names(suite="spark")) == 11
        assert len(workload_names(suite="npb")) == 8
        assert len(workload_names(power_class="mid")) == 6

    def test_executor_config_table3(self):
        assert executor_config("low") == (1, 8)
        assert executor_config("mid") == (48, 8)
        assert executor_config("high") == (48, 8)
        with pytest.raises(KeyError, match="Spark"):
            executor_config("npb")

    def test_unknown_workload_lists_names(self):
        with pytest.raises(KeyError, match="kmeans"):
            get_workload("missing")

"""WorkloadExecution: progress, repeats, gaps, accounting."""

import numpy as np
import pytest

from repro.workloads.phases import Hold, PhaseProgram
from repro.workloads.runtime import WorkloadExecution
from repro.workloads.spec import WorkloadSpec


def spec(duration=10.0, level=100.0, active_units=None):
    return WorkloadSpec(
        name="w",
        suite="spark",
        power_class="mid",
        program=PhaseProgram([Hold(duration, level)]),
        active_units=active_units,
        paper_duration_s=duration,
        paper_above_110_pct=0.0,
        data_size="test",
    )


def execution(duration=10.0, n_units=4, active=None, gap=2.0, noise=0.0,
              jitter=0.0, seed=0, time_scale=1.0):
    return WorkloadExecution(
        spec=spec(duration, active_units=active),
        unit_ids=np.arange(n_units),
        rng=np.random.default_rng(seed),
        time_scale=time_scale,
        inter_run_gap_s=gap,
        socket_jitter_std=jitter,
        demand_noise_std_w=noise,
    )


def advance_full_speed(e, steps, dt=1.0):
    now = 0.0
    for _ in range(steps):
        now += dt
        e.advance(np.ones(e.n_units), np.full(e.n_units, 100.0), dt, now)
    return now


class TestDemand:
    def test_active_units_follow_program(self):
        e = execution()
        np.testing.assert_allclose(e.demand(), 100.0)

    def test_inactive_units_idle(self):
        e = execution(active=2)
        d = e.demand()
        np.testing.assert_allclose(d[:2], 100.0)
        np.testing.assert_allclose(d[2:], 12.0)

    def test_gap_demand_idle(self):
        e = execution(duration=3.0, gap=5.0)
        advance_full_speed(e, 4)
        assert e.in_gap
        np.testing.assert_allclose(e.demand(), 12.0)

    def test_demand_clamped_at_tdp(self):
        e = WorkloadExecution(
            spec=spec(level=100.0),
            unit_ids=np.arange(2),
            rng=np.random.default_rng(0),
            max_demand_w=165.0,
            demand_noise_std_w=500.0,
        )
        assert np.all(e.demand() <= 165.0)

    def test_jitter_varies_per_socket(self):
        e = execution(jitter=0.05, n_units=8, seed=3)
        d = e.demand()
        assert np.std(d) > 0.0


class TestProgress:
    def test_completes_at_duration(self):
        e = execution(duration=10.0)
        advance_full_speed(e, 10)
        assert e.runs_completed == 1

    def test_half_rate_doubles_time(self):
        e = execution(duration=10.0, gap=0.0)
        now = 0.0
        while e.runs_completed == 0:
            now += 1.0
            e.advance(np.full(4, 0.5), np.full(4, 50.0), 1.0, now)
        assert e.records[0].duration_s == pytest.approx(20.0)

    def test_rate_uses_active_sockets_only(self):
        e = execution(duration=10.0, active=2)
        now = 0.0
        rates = np.array([1.0, 1.0, 0.0, 0.0])  # Idle sockets don't matter.
        for _ in range(10):
            now += 1.0
            e.advance(rates, np.full(4, 50.0), 1.0, now)
        assert e.runs_completed == 1

    def test_time_scale_shrinks_duration(self):
        e = execution(duration=10.0, time_scale=0.5)
        advance_full_speed(e, 5)
        assert e.runs_completed == 1


class TestRepeats:
    def test_gap_between_runs(self):
        e = execution(duration=3.0, gap=2.0)
        advance_full_speed(e, 3)
        assert e.runs_completed == 1 and e.in_gap
        advance_full_speed(e, 2)
        assert not e.in_gap

    def test_back_to_back_without_gap(self):
        e = execution(duration=3.0, gap=0.0)
        advance_full_speed(e, 9)
        assert e.runs_completed == 3

    def test_record_times_exclude_gap(self):
        e = execution(duration=3.0, gap=4.0)
        now = advance_full_speed(e, 3)          # Run 1 done at t=3.
        now = 3.0 + 4.0                          # Gap until t=7.
        advance_full_speed(e, 4)
        e2 = execution(duration=3.0, gap=4.0)
        for t in range(1, 15):
            e2.advance(np.ones(4), np.full(4, 100.0), 1.0, float(t))
            if e2.runs_completed == 2:
                break
        second = e2.records[1]
        assert second.duration_s == pytest.approx(3.0, abs=1.01)


class TestSynchronization:
    def test_min_sync_gated_by_slowest(self):
        from dataclasses import replace

        min_spec = replace(spec(duration=10.0), sync="min")
        e = WorkloadExecution(
            spec=min_spec,
            unit_ids=np.arange(4),
            rng=np.random.default_rng(0),
            inter_run_gap_s=0.0,
        )
        rates = np.array([1.0, 1.0, 1.0, 0.5])  # One straggler.
        now = 0.0
        while e.runs_completed == 0:
            now += 1.0
            e.advance(rates, np.full(4, 100.0), 1.0, now)
        assert e.records[0].duration_s == pytest.approx(20.0)

    def test_mean_sync_amortizes_straggler(self):
        e = execution(duration=10.0, gap=0.0)
        rates = np.array([1.0, 1.0, 1.0, 0.5])
        now = 0.0
        while e.runs_completed == 0:
            now += 1.0
            e.advance(rates, np.full(4, 100.0), 1.0, now)
        assert e.records[0].duration_s < 13.0

    def test_npb_specs_default_mean_sync(self):
        """Strict barrier gating is a sensitivity mode, not the default
        (see the rationale in workloads/npb.py)."""
        from repro.workloads.npb import NPB_WORKLOADS

        assert all(s.sync == "mean" for s in NPB_WORKLOADS.values())

    def test_spark_specs_mean_synced(self):
        from repro.workloads.spark import SPARK_WORKLOADS

        assert all(s.sync == "mean" for s in SPARK_WORKLOADS.values())

    def test_spec_rejects_unknown_sync(self):
        from dataclasses import replace

        with pytest.raises(ValueError, match="sync"):
            replace(spec(), sync="median")


class TestDurationJitter:
    def _run_duration(self, jitter, seed, runs=3):
        e = WorkloadExecution(
            spec=spec(duration=20.0),
            unit_ids=np.arange(2),
            rng=np.random.default_rng(seed),
            inter_run_gap_s=0.0,
            socket_jitter_std=0.0,
            demand_noise_std_w=0.0,
            duration_jitter_std=jitter,
        )
        now = 0.0
        while e.runs_completed < runs:
            now += 1.0
            e.advance(np.ones(2), np.full(2, 100.0), 1.0, now)
        return [r.duration_s for r in e.records]

    def test_zero_jitter_deterministic(self):
        durations = self._run_duration(0.0, seed=1)
        assert max(durations) - min(durations) <= 1.0  # Step quantization.

    def test_jitter_varies_runs(self):
        durations = self._run_duration(0.20, seed=1, runs=5)
        assert max(durations) - min(durations) > 1.0

    def test_jitter_centered(self):
        durations = self._run_duration(0.05, seed=2)
        assert np.mean(durations) == pytest.approx(20.0, rel=0.2)

    def test_config_rejects_negative(self):
        from repro.core.config import SimulationConfig

        with pytest.raises(ValueError, match="duration_jitter_std"):
            SimulationConfig(duration_jitter_std=-0.1)


class TestAccounting:
    def test_avg_power_recorded(self):
        e = execution(duration=5.0)
        now = 0.0
        for _ in range(5):
            now += 1.0
            e.advance(np.ones(4), np.full(4, 120.0), 1.0, now)
        assert e.records[0].avg_power_w == pytest.approx(120.0)

    def test_mean_duration_requires_runs(self):
        with pytest.raises(ValueError, match="no completed runs"):
            execution().mean_duration_s()

    def test_mean_power_requires_runs(self):
        with pytest.raises(ValueError, match="no completed runs"):
            execution().mean_power_w()


class TestValidation:
    def test_rejects_empty_units(self):
        with pytest.raises(ValueError, match="non-empty"):
            execution(n_units=0)

    def test_rejects_more_active_than_assigned(self):
        with pytest.raises(ValueError, match="active"):
            WorkloadExecution(
                spec=spec(active_units=8),
                unit_ids=np.arange(4),
                rng=np.random.default_rng(0),
            )

    def test_rejects_nonpositive_dt(self):
        e = execution()
        with pytest.raises(ValueError, match="dt_s"):
            e.advance(np.ones(4), np.full(4, 50.0), 0.0, 1.0)

"""Phase primitives and programs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.phases import Hold, Oscillate, PhaseProgram, Ramp, repeat
from repro.workloads.synthetic import random_program


class TestHold:
    def test_constant_demand(self):
        p = Hold(10.0, 120.0)
        assert p.demand_at(0.0) == 120.0
        assert p.demand_at(9.9) == 120.0

    def test_scaled(self):
        assert Hold(10.0, 120.0).scaled(0.5).duration_s == 5.0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            Hold(0.0, 120.0)
        with pytest.raises(ValueError):
            Hold(10.0, -1.0)


class TestRamp:
    def test_linear_interpolation(self):
        p = Ramp(10.0, 50.0, 150.0)
        assert p.demand_at(0.0) == pytest.approx(50.0)
        assert p.demand_at(5.0) == pytest.approx(100.0)
        assert p.demand_at(10.0) == pytest.approx(150.0)

    def test_downward(self):
        p = Ramp(4.0, 150.0, 50.0)
        assert p.demand_at(2.0) == pytest.approx(100.0)

    def test_clamps_outside_duration(self):
        p = Ramp(10.0, 50.0, 150.0)
        assert p.demand_at(20.0) == pytest.approx(150.0)

    def test_scaled_preserves_endpoints(self):
        s = Ramp(10.0, 50.0, 150.0).scaled(2.0)
        assert s.duration_s == 20.0
        assert s.demand_at(20.0) == pytest.approx(150.0)


class TestOscillate:
    def test_duty_cycle(self):
        p = Oscillate(100.0, 60.0, 140.0, period_s=10.0, duty=0.3)
        assert p.demand_at(0.0) == 140.0
        assert p.demand_at(2.9) == 140.0
        assert p.demand_at(3.1) == 60.0
        assert p.demand_at(9.9) == 60.0
        assert p.demand_at(10.5) == 140.0  # Next period.

    def test_scaled_scales_period_with_floor(self):
        s = Oscillate(100.0, 60.0, 140.0, period_s=8.0).scaled(0.25)
        assert s.duration_s == 25.0
        # 8 * 0.25 = 2 would be unresolvable at dt = 1 s; floored at 4.
        assert s.period_s == 4.0
        up = Oscillate(100.0, 60.0, 140.0, period_s=8.0).scaled(2.0)
        assert up.period_s == 16.0

    def test_rejects_high_below_low(self):
        with pytest.raises(ValueError, match="high_w"):
            Oscillate(10.0, 100.0, 50.0, period_s=5.0)

    def test_rejects_bad_duty(self):
        with pytest.raises(ValueError, match="duty"):
            Oscillate(10.0, 50.0, 100.0, period_s=5.0, duty=1.0)


class TestRepeat:
    def test_concatenates(self):
        block = [Hold(1.0, 10.0), Hold(2.0, 20.0)]
        assert len(repeat(block, 3)) == 6

    def test_rejects_zero_times(self):
        with pytest.raises(ValueError, match="times"):
            repeat([Hold(1.0, 10.0)], 0)


class TestPhaseProgram:
    def program(self):
        return PhaseProgram(
            [Hold(10.0, 50.0), Ramp(10.0, 50.0, 150.0), Hold(10.0, 150.0)]
        )

    def test_duration(self):
        assert self.program().duration_s == pytest.approx(30.0)

    def test_demand_crosses_phases(self):
        p = self.program()
        assert p.demand_at(5.0) == pytest.approx(50.0)
        assert p.demand_at(15.0) == pytest.approx(100.0)
        assert p.demand_at(25.0) == pytest.approx(150.0)

    def test_demand_clamped_at_ends(self):
        p = self.program()
        assert p.demand_at(-5.0) == pytest.approx(50.0)
        assert p.demand_at(100.0) == pytest.approx(150.0)

    def test_sample_length(self):
        trace = self.program().sample(1.0)
        assert trace.shape == (30,)

    def test_fraction_above(self):
        p = self.program()
        # Above 110 W: half of the ramp (~4/30) plus the last hold (10/30).
        assert p.fraction_above(110.0) == pytest.approx(14 / 30, abs=0.05)

    def test_scaled_preserves_fraction(self):
        p = self.program()
        assert p.scaled(0.5).fraction_above(110.0, dt_s=0.25) == pytest.approx(
            p.fraction_above(110.0, dt_s=0.5), abs=0.05
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            PhaseProgram([])

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="factor"):
            self.program().scaled(0.0)

    def test_sample_rejects_bad_dt(self):
        with pytest.raises(ValueError, match="dt_s"):
            self.program().sample(0.0)


class TestProgramProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_demand_always_in_band(self, seed):
        program = random_program(seed, min_power_w=15.0, max_power_w=165.0)
        trace = program.sample(2.0)
        assert np.all(trace >= 0.0)
        assert np.all(trace <= 165.0 + 1e-9)

    @given(st.integers(0, 2**31 - 1), st.floats(0.1, 3.0))
    @settings(max_examples=50, deadline=None)
    def test_scaling_scales_duration(self, seed, factor):
        program = random_program(seed)
        scaled = program.scaled(factor)
        assert scaled.duration_s == pytest.approx(
            program.duration_s * factor, rel=1e-9
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_demand_at_matches_sample(self, seed):
        program = random_program(seed, n_phases=4)
        trace = program.sample(1.0)
        for i in (0, len(trace) // 2, len(trace) - 1):
            assert trace[i] == pytest.approx(program.demand_at(float(i)))
